#!/usr/bin/env python3
"""Discovering quantified graph association rules (the paper's Exp-3 procedure).

The paper does not ship a full mining algorithm; its effectiveness study mines
top GPARs (quantifier-free rules with single-edge consequents) and then
*extends* them into QGARs by strengthening the counting quantifiers while the
confidence stays above a threshold.  This example runs that two-phase
procedure on the Pokec-like social graph and prints the discovered rules with
their support and confidence — the same shape of report as rules R5–R7 in the
paper.

Run with ``python examples/rule_mining.py``.
"""

from __future__ import annotations

from repro.datasets import PokecConfig, pokec_like_graph
from repro.rules import MiningConfig, mine_gpars, mine_qgars
from repro.utils import render_table


def describe_rule(record) -> str:
    """One-line summary of a discovered rule's antecedent quantifiers."""
    quantified = [
        f"{edge.label}[{edge.quantifier}]"
        for edge in record.rule.antecedent.edges()
        if not edge.quantifier.is_existential
    ]
    consequent = ", ".join(edge.label for edge in record.rule.consequent.edges())
    left = ", ".join(quantified) if quantified else "(no quantifiers)"
    return f"{left}  =>  {consequent}"


def main() -> None:
    graph = pokec_like_graph(PokecConfig(num_users=300, seed=7))
    print(f"mining graph: {graph}")

    config = MiningConfig(
        focus_label="person",
        min_support=3,
        min_confidence=0.4,
        max_antecedent_edges=2,
        max_rules=6,
        quantifier_step_percent=10.0,
        max_extension_rounds=3,
    )

    print("\nPhase 1: GPAR seeds (no counting quantifiers)")
    seeds = mine_gpars(graph, config=config, seed=1)
    rows = [[r.rule.name, describe_rule(r), r.support, round(r.confidence, 2)] for r in seeds]
    print(render_table(["rule", "shape", "support", "confidence"], rows))

    print("\nPhase 2: extended QGARs (quantifiers raised while confidence >= 0.4)")
    qgars = mine_qgars(graph, eta=0.4, config=config, seed=1)
    rows = [[r.rule.name, describe_rule(r), r.support, round(r.confidence, 2)] for r in qgars]
    print(render_table(["rule", "shape", "support", "confidence"], rows))

    print(
        "\nEach extended rule constrains *how many* of a user's neighbours "
        "exhibit the behaviour, which conventional association rules and "
        "GPARs cannot express."
    )


if __name__ == "__main__":
    main()
