#!/usr/bin/env python3
"""Quickstart: define a quantified graph pattern and match it.

This example builds the running example of the paper (Example 1 / Figure 1):
a tiny social graph of phone reviewers, and the quantified patterns

* ``Q2`` — "everyone xo follows recommends the Redmi 2A"  (universal quantifier),
* ``Q3`` — "at least two of xo's followees recommend the phone and none of
  them gave it a bad rating"                               (count + negation).

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import PatternBuilder, PropertyGraph, QMatch
from repro.matching import EnumMatcher


def build_graph() -> PropertyGraph:
    """The graph G1 of Figure 2: three users following five phone reviewers."""
    graph = PropertyGraph("quickstart")
    for person in ("ann", "bob", "cat", "rev0", "rev1", "rev2", "rev3", "troll"):
        graph.add_node(person, "person")
    graph.add_node("redmi", "phone")

    # ann follows one reviewer, bob two, cat three (one of them a troll).
    graph.add_edge("ann", "rev0", "follow")
    graph.add_edge("bob", "rev1", "follow")
    graph.add_edge("bob", "rev2", "follow")
    graph.add_edge("cat", "rev2", "follow")
    graph.add_edge("cat", "rev3", "follow")
    graph.add_edge("cat", "troll", "follow")

    for reviewer in ("rev0", "rev1", "rev2", "rev3"):
        graph.add_edge(reviewer, "redmi", "recom")
    graph.add_edge("troll", "redmi", "bad_rating")
    return graph


def build_q2():
    """Universal quantification: 100% of the followees recommend the phone."""
    return (
        PatternBuilder("Q2")
        .focus("xo", "person")
        .node("z", "person")
        .node("phone", "phone")
        .edge("xo", "z", "follow", universal=True)
        .edge("z", "phone", "recom")
        .build()
    )


def build_q3(p: int = 2):
    """Numeric aggregate plus negation: ≥ p recommenders, no bad-rating followee."""
    return (
        PatternBuilder("Q3")
        .focus("xo", "person")
        .node("z1", "person")
        .node("z2", "person")
        .node("phone", "phone")
        .edge("xo", "z1", "follow", at_least=p)
        .edge("z1", "phone", "recom")
        .edge("xo", "z2", "follow", negated=True)
        .edge("z2", "phone", "bad_rating")
        .build()
    )


def main() -> None:
    graph = build_graph()
    print(f"graph: {graph}")

    engine = QMatch()
    reference = EnumMatcher()

    for pattern in (build_q2(), build_q3(p=2)):
        print()
        print(pattern.describe())
        result = engine.evaluate(pattern, graph)
        print(f"  answer Q(xo, G)        : {sorted(result.answer)}")
        print(f"  positive part Π(Q)     : {sorted(result.positive_answer)}")
        print(f"  verifications performed: {result.counter.verifications}")
        # The optimized engine and the enumerate-then-verify reference agree.
        assert result.answer == reference.evaluate_answer(pattern, graph)

    print("\nQMatch and the reference semantics agree on every pattern. Done.")


if __name__ == "__main__":
    main()
