#!/usr/bin/env python3
"""Parallel quantified matching with a d-hop preserving partition (PQMatch).

This example walks through Section 5 of the paper on a synthetic small-world
graph:

1. partition the graph once with ``DPar`` (balanced, d-hop preserving) and
   inspect the partition quality (skew, replication factor, coverage);
2. evaluate a workload of generated QGPs with the parallel coordinator
   ``PQMatch`` for an increasing number of workers, and report the
   work-distribution speedup (total work / makespan work) — the quantity whose
   growth with ``n`` is the parallel-scalability claim of Theorem 7;
3. cross-check every parallel answer against the sequential ``QMatch``.

Run with ``python examples/parallel_matching.py``.
"""

from __future__ import annotations

from repro import QMatch
from repro.datasets import benchmark_graph, paper_pattern
from repro.parallel import DPar, pqmatch_engine
from repro.utils import render_table


def main() -> None:
    graph = benchmark_graph("pokec", scale=2.0, seed=3)
    print(f"graph: {graph}")

    # --- one-off partitioning --------------------------------------------
    partitioner = DPar(d=2, seed=0)
    partition = partitioner.partition(graph, 4)
    stats = partition.statistics()
    print("\nDPar partition (d=2, 4 fragments):")
    for key, value in stats.items():
        print(f"  {key:12s}: {value:.3f}")
    print(f"  covering: {partition.is_covering()}, complete: {partition.is_complete()}")

    # --- the paper's example patterns as the workload ---------------------
    workload = [paper_pattern("Q1"), paper_pattern("Q2"), paper_pattern("Q3", p=2)]
    sequential = QMatch()
    baseline_answers = {q.name: sequential.evaluate_answer(q, graph) for q in workload}

    rows = []
    for workers in (2, 4, 8):
        engine = pqmatch_engine(num_workers=workers, d=2)
        total_speedup = 0.0
        total_skew = 0.0
        for pattern in workload:
            result = engine.evaluate(pattern, graph)
            assert result.answer == baseline_answers[pattern.name]
            total_speedup += result.work_speedup
            total_skew += result.work_skew
        rows.append(
            [
                workers,
                round(total_speedup / len(workload), 2),
                round(total_skew / len(workload), 2),
            ]
        )

    print("\nParallel scalability (work model):")
    print(render_table(["workers", "avg work speedup", "avg work skew"], rows))
    print(
        "\nThe speedup grows with the number of workers and every parallel "
        "answer matched the sequential QMatch."
    )


if __name__ == "__main__":
    main()
