#!/usr/bin/env python3
"""Serve repeated quantified-pattern traffic through the query-serving layer.

The scenario: a small social platform answers the same handful of marketing
queries thousands of times a day, spelled slightly differently by different
callers, against a graph that occasionally changes.  Instead of walking the
full PQMatch pipeline per request, a :class:`repro.service.QueryService`

1. canonicalizes every request (renamed variables, reordered edges and
   ``> p`` vs ``≥ p+1`` spellings collapse to one fingerprint),
2. serves repeats from a version-aware LRU cache,
3. deduplicates the misses of each batch and ships them to the parallel
   executor in a single round,
4. recomputes automatically once the graph structurally changes — and keeps
   the cache warm across attribute-only updates.

Run it with ``python examples/query_service.py``.
"""

from __future__ import annotations

from repro import PQMatch, QueryService
from repro.datasets import benchmark_graph, paper_pattern, zipf_workload


def respell(pattern, tag):
    """The same query as another caller would write it (fresh variable names)."""
    renamed = pattern.relabel_nodes({node: f"{tag}_{node}" for node in pattern.nodes()})
    renamed.name = f"{pattern.name}@{tag}"
    return renamed


def main() -> None:
    graph = benchmark_graph("pokec", scale=1.0, seed=1)
    print(f"serving graph: {graph.name} ({graph.num_nodes} nodes, {graph.num_edges} edges)")

    hot = paper_pattern("Q1")           # the hot marketing query
    warm = paper_pattern("Q3", p=2)     # occasionally asked, with negation
    traffic = zipf_workload([hot, warm], length=20, seed=4)
    # a third of the requests arrive re-spelled by a different client
    traffic = [
        respell(pattern, "client2") if position % 3 == 2 else pattern
        for position, pattern in enumerate(traffic)
    ]

    with QueryService(graph, PQMatch(num_workers=4, d=2)) as service:
        # --- a batch of requests: misses are deduplicated and shipped once
        batch = service.evaluate_many(traffic[:8])
        for result in batch[:4]:
            print(f"  {result.pattern:<16} cached={result.cached!s:<5} |answer|={len(result)}")
        print(f"batch of 8 -> dispatch rounds: {service.stats.dispatch_rounds}, "
              f"computed: {service.stats.computed}")

        # --- the rest of the stream rides the cache
        for pattern in traffic[8:]:
            service.evaluate(pattern)
        stats = service.stats_snapshot()
        print(f"after {stats['served']:.0f} requests: "
              f"{stats['cache_hits']:.0f} hits / {stats['cache_misses']:.0f} misses "
              f"(hit rate {stats['cache_hit_rate']:.0%}), "
              f"unique computations: {stats['computed']:.0f}")

        # --- structural mutation: stale answers become unreachable
        graph.add_node("new-user", "person")
        refreshed = service.evaluate(hot)
        print(f"after adding a node: cached={refreshed.cached} (recomputed)")

        # --- attribute updates keep the cache warm
        graph.set_node_attr("new-user", "city", "Edinburgh")
        print(f"after an attribute update: cached={service.evaluate(hot).cached}")

        # concurrent callers would use service.submit(pattern) -> Future;
        # queued submissions coalesce into one deduplicated batch.


if __name__ == "__main__":
    main()
