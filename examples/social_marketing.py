#!/usr/bin/env python3
"""Social media marketing with quantified graph association rules (QGARs).

This example reproduces the motivating scenario of the paper's introduction:
identify *potential customers* in a social network.

1. Generate a Pokec-like social graph (users, albums, products, music clubs,
   follow/like/recom/buy edges) with planted behaviour cohorts.
2. Express rule ``R1`` of the paper: *if xo is in a music club and at least
   80% of the people xo follows like an album, then xo will likely buy it* —
   the antecedent is a QGP with a ratio quantifier, the consequent a buy edge.
3. Evaluate the rule's support and LCWA confidence, and run quantified entity
   identification (QEI) to produce the list of users to target.
4. Compare with the quantifier-free GPAR baseline, which cannot express the
   80% condition and therefore targets a much less specific audience.

Run with ``python examples/social_marketing.py``.
"""

from __future__ import annotations

from repro import QMatch
from repro.datasets import PokecConfig, pokec_like_graph
from repro.patterns import PatternBuilder
from repro.rules import GPAR, QGAR, gar_match


def build_rule_r1(ratio: float = 80.0) -> QGAR:
    """R1: club member whose followees mostly like an album ⇒ buys the album."""
    antecedent = (
        PatternBuilder("R1-antecedent")
        .focus("xo", "person")
        .node("club", "music_club")
        .node("z", "person")
        .node("y", "album")
        .edge("xo", "club", "in")
        .edge("xo", "z", "follow", at_least_percent=ratio)
        .edge("z", "y", "like")
        .build()
    )
    consequent = (
        PatternBuilder("R1-consequent")
        .focus("xo", "person")
        .node("bought", "album")
        .edge("xo", "bought", "buy")
        .build()
    )
    return QGAR(antecedent, consequent, name="R1")


def build_gpar_baseline() -> QGAR:
    """The closest GPAR: club membership plus *some* followee liking *some* album."""
    antecedent = (
        PatternBuilder("GPAR-antecedent")
        .focus("xo", "person")
        .node("club", "music_club")
        .node("z", "person")
        .node("y", "album")
        .edge("xo", "club", "in")
        .edge("xo", "z", "follow")
        .edge("z", "y", "like")
        .build()
    )
    return GPAR(antecedent, consequent_label="buy", consequent_target_label="album",
                name="GPAR-baseline").as_qgar()


def main() -> None:
    graph = pokec_like_graph(PokecConfig(num_users=400, seed=7))
    print(f"social graph: {graph}")

    engine = QMatch()

    rule = build_rule_r1(ratio=80.0)
    evaluation = rule.evaluate(graph, engine=engine)
    print("\n== QGAR R1 (ratio quantifier >= 80%) ==")
    print(f"  antecedent matches Q1(xo, G): {len(evaluation.antecedent_matches)}")
    print(f"  rule matches R(xo, G)       : {evaluation.support}")
    print(f"  LCWA confidence             : {evaluation.confidence:.2f}")

    eta = 0.5
    targets = gar_match(rule, graph, eta=eta)
    print(f"  QEI with eta={eta}: {len(targets)} users to target")
    print(f"  sample: {sorted(targets)[:10]}")

    baseline = build_gpar_baseline()
    baseline_eval = baseline.evaluate(graph, engine=engine)
    print("\n== GPAR baseline (no counting quantifier) ==")
    print(f"  antecedent matches: {len(baseline_eval.antecedent_matches)}")
    print(f"  confidence        : {baseline_eval.confidence:.2f}")

    print(
        "\nThe quantified rule targets "
        f"{len(evaluation.antecedent_matches)} users instead of "
        f"{len(baseline_eval.antecedent_matches)}: the 80% ratio condition "
        "identifies the audience whose feed is actually dominated by the album."
    )


if __name__ == "__main__":
    main()
