#!/usr/bin/env python3
"""Knowledge discovery on a YAGO2-like knowledge graph with negated patterns.

This example mirrors the paper's knowledge-graph use cases:

* pattern ``Q4`` — UK professors *without* a PhD who advised at least ``p``
  students that are UK professors themselves (negation + numeric aggregate);
* pattern ``Q5`` — non-UK professors whose advisees are professors without a
  doctorate (two negated edges on different branches);
* rule ``R7`` — US professors with at least two prizes and four graduated
  students are likely to have advised a non-US citizen.

It also demonstrates the incremental handling of negated edges: QMatch reports
how many candidates the IncQMatch step had to re-verify versus the affected
area bound of Proposition 6.

Run with ``python examples/knowledge_discovery.py``.
"""

from __future__ import annotations

from repro import QMatch
from repro.datasets import YagoConfig, paper_pattern, paper_rule, yago_like_graph


def main() -> None:
    graph = yago_like_graph(YagoConfig(num_persons=400, seed=11))
    print(f"knowledge graph: {graph}")

    engine = QMatch()

    for name, p in (("Q4", 2), ("Q5", 1)):
        pattern = paper_pattern(name, p=p)
        result = engine.evaluate(pattern, graph)
        print(f"\n== pattern {name} ==")
        print(pattern.describe())
        print(f"  positive part Π(Q) matches : {len(result.positive_answer)}")
        print(f"  final answer Q(xo, G)      : {len(result.answer)}")
        for stats in result.incremental:
            print(
                f"  negated edge {stats.edge}: re-verified {stats.verifications} "
                f"candidates (affected area {stats.aff_size}), removed {len(stats.removed)}"
            )

    rule = paper_rule("R7")
    evaluation = rule.evaluate(graph, engine=engine)
    print("\n== rule R7 (prize-winning US professors) ==")
    print(f"  support    : {evaluation.support}")
    print(f"  confidence : {evaluation.confidence:.2f}")
    identified = evaluation.identified_entities(eta=0.5)
    print(f"  entities identified with eta=0.5: {sorted(identified)[:10]}")


if __name__ == "__main__":
    main()
