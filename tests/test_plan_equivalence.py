"""Compiled ≡ interpreted: the byte-identity contract of the plan layer.

A :class:`~repro.plan.CompiledPlan` removes *uncounted* interpretation
overhead only, so on every (graph, pattern, options) triple the planned
evaluation must return the same answer **and** the same
:class:`~repro.utils.WorkCounter` field-for-field — the same contract the
index layer honours under ``use_index=False``.  The hypothesis property here
drives that over random graphs and random quantified patterns (negated edges
and every quantifier spelling included), pinned across the engine option
combinations the rest of the suite exercises.
"""

from __future__ import annotations

import random

from hypothesis import given, settings

from test_property_based import SETTINGS, labeled_graphs, quantified_patterns

from repro.graph import PropertyGraph
from repro.matching import DMatchOptions, QMatch
from repro.patterns import CountingQuantifier, QuantifiedGraphPattern
from repro.plan import compile_plan
from repro.service.patterns import canonicalize

OPTION_COMBOS = [
    DMatchOptions(),
    DMatchOptions(use_simulation=False, use_potential=False),
    DMatchOptions(use_simulation=False, use_potential=False, early_exit=False,
                  use_locality=False),
    DMatchOptions(use_index=False, use_index_enumeration=False),
]


def assert_byte_identical(pattern, graph, options, plan=None, binding=None):
    """Planned and interpreted runs must agree on answer AND work counters."""
    if plan is None:
        form = canonicalize(pattern)
        plan = compile_plan(pattern, fingerprint=form.fingerprint, form=form)
        binding = form.order
    engine = QMatch(options=options)
    interpreted = engine.evaluate(pattern, graph)
    planned = engine.evaluate(pattern, graph, plan=plan, plan_binding=binding)
    assert planned.answer == interpreted.answer
    assert planned.counter.__dict__ == interpreted.counter.__dict__
    return planned


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_planned_qmatch_is_byte_identical(graph, pattern):
    form = canonicalize(pattern)
    plan = compile_plan(pattern, fingerprint=form.fingerprint, form=form)
    for options in OPTION_COMBOS:
        assert_byte_identical(pattern, graph, options, plan=plan, binding=form.order)


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_plan_compiled_from_respelled_pattern_is_byte_identical(graph, pattern):
    # One fingerprint, two spellings: the plan compiled from the renamed
    # spelling must serve the original byte-identically through the
    # original's own canonical binding.
    respelled = pattern.relabel_nodes(
        {node: f"ren_{node}" for node in pattern.nodes()}
    )
    respelled.name = f"{pattern.name}#respelled"
    respelled_form = canonicalize(respelled)
    plan = compile_plan(
        respelled, fingerprint=respelled_form.fingerprint, form=respelled_form
    )
    form = canonicalize(pattern)
    assert form.fingerprint == respelled_form.fingerprint
    assert_byte_identical(
        pattern, graph, DMatchOptions(), plan=plan, binding=form.order
    )


def dense_graph(seed: int = 11, nodes: int = 60) -> PropertyGraph:
    rng = random.Random(seed)
    graph = PropertyGraph(f"dense-{seed}")
    for node in range(nodes):
        graph.add_node(node, "person" if rng.random() < 0.75 else "product")
    for _ in range(nodes * 6):
        source, target = rng.randrange(nodes), rng.randrange(nodes)
        if source != target:
            graph.add_edge(source, target, rng.choice(["follow", "recom"]))
    return graph


def spelled_pattern() -> QuantifiedGraphPattern:
    """One edge per quantifier spelling, plus a negated edge."""
    pattern = QuantifiedGraphPattern(name="all-spellings")
    pattern.add_node("x", "person")
    pattern.set_focus("x")
    spellings = {
        "a": CountingQuantifier.existential(),
        "b": CountingQuantifier.at_least(2),
        "c": CountingQuantifier.exactly(1),
        "d": CountingQuantifier.more_than(1),
        "e": CountingQuantifier.ratio_at_least(30.0),
        "f": CountingQuantifier.universal(),
    }
    for child, quantifier in spellings.items():
        pattern.add_node(child, "person")
        pattern.add_edge("x", child, "follow", quantifier)
    pattern.add_node("neg", "product")
    pattern.add_edge("x", "neg", "recom", CountingQuantifier.negation())
    pattern.validate()
    return pattern


def test_all_quantifier_spellings_byte_identical_on_dense_graph():
    graph = dense_graph()
    pattern = spelled_pattern()
    for options in OPTION_COMBOS:
        result = assert_byte_identical(pattern, graph, options)
    # The pattern must actually exercise the lowered checks.
    assert result.counter.quantifier_checks > 0


def test_ratio_exactly_spelling_byte_identical():
    graph = dense_graph(seed=23)
    pattern = QuantifiedGraphPattern(name="ratio-exact")
    pattern.add_node("x", "person")
    pattern.add_node("y", "person")
    pattern.set_focus("x")
    pattern.add_edge("x", "y", "follow", CountingQuantifier.ratio_exactly(50.0))
    for options in OPTION_COMBOS:
        assert_byte_identical(pattern, graph, options)


def test_plan_survives_graph_mutation():
    # A version bump invalidates the resolution, not the program: the same
    # plan object must serve the mutated graph byte-identically.
    graph = dense_graph(seed=5, nodes=30)
    pattern = spelled_pattern()
    form = canonicalize(pattern)
    plan = compile_plan(pattern, fingerprint=form.fingerprint, form=form)
    assert_byte_identical(pattern, graph, DMatchOptions(), plan=plan,
                          binding=form.order)
    first_resolution = plan.resolution_for(graph)
    graph.add_edge(0, 1, "follow")
    graph.add_edge(1, 0, "recom")
    assert_byte_identical(pattern, graph, DMatchOptions(), plan=plan,
                          binding=form.order)
    assert plan.resolution_for(graph) is not first_resolution
