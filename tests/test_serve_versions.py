"""VersionVector semantics and the scalar-collapse stale-read regression.

The regression test at the bottom is the reason the class exists: it builds
the exact fleet history under which keying a cache on any scalar collapse of
the per-shard versions serves a **stale answer**, and shows the vector key
refusing it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.graph import PropertyGraph
from repro.serve import VersionVector
from repro.service import ResultCache
from repro.utils.errors import ReproError


# ---------------------------------------------------------------------------
# Value-type basics
# ---------------------------------------------------------------------------


def test_construction_and_equality():
    v = VersionVector((3, 1, 4))
    assert v == VersionVector.of(3, 1, 4)
    assert v != VersionVector.of(3, 1)
    assert len(v) == 3 and v[1] == 1 and list(v) == [3, 1, 4]
    assert hash(v) == hash(VersionVector.of(3, 1, 4))


def test_coercion_and_validation():
    assert VersionVector([1, 2]).versions == (1, 2)
    with pytest.raises(ReproError):
        VersionVector(("a", 1))


def test_from_graphs_reads_mutation_counters():
    a, b = PropertyGraph("a"), PropertyGraph("b")
    a.add_node("x", "person")
    base = VersionVector.from_graphs([a, b])
    a.add_node("y", "person")
    bumped = VersionVector.from_graphs([a, b])
    assert bumped[0] == base[0] + 1 and bumped[1] == base[1]


def test_bump_and_replace_are_pure():
    v = VersionVector.of(1, 1)
    assert v.bump(0) == VersionVector.of(2, 1)
    assert v.replace(1, 9) == VersionVector.of(1, 9)
    assert v == VersionVector.of(1, 1)  # unchanged
    with pytest.raises(ReproError):
        v.bump(2)
    with pytest.raises(ReproError):
        v.replace(-1, 0)


def test_dominates_is_componentwise():
    assert VersionVector.of(2, 3).dominates(VersionVector.of(2, 2))
    assert not VersionVector.of(2, 1).dominates(VersionVector.of(1, 2))
    with pytest.raises(ReproError):
        VersionVector.of(1).dominates(VersionVector.of(1, 2))


def test_key_text_is_stable_and_distinct():
    assert VersionVector.of(3, 1, 4).key_text() == "3:1:4"
    assert VersionVector.of(31, 4).key_text() != VersionVector.of(3, 14).key_text()


def test_pickle_round_trip():
    v = VersionVector.of(7, 0, 2)
    assert pickle.loads(pickle.dumps(v)) == v


# ---------------------------------------------------------------------------
# The regression: a collapsed scalar aliases distinct fleet states
# ---------------------------------------------------------------------------


class _Token:
    """A fleet stand-in whose ``.version`` the test moves by hand."""

    def __init__(self, version):
        self.version = version


def test_collapsed_scalar_aliases_distinct_fleet_states():
    """The arithmetic core of the bug: two different fleet histories, one sum."""
    start = VersionVector.of(1, 1)
    # History A: shard 0 bumps (delta), then un-bumps are impossible — but a
    # *different* fleet where shard 1 bumped instead lands on the same sum.
    via_shard_0 = start.bump(0)
    via_shard_1 = start.bump(1)
    assert via_shard_0 != via_shard_1
    assert via_shard_0.collapsed() == via_shard_1.collapsed()


def test_scalar_version_key_serves_stale_answer_vector_key_refuses():
    """The stale read itself, played out against the real ResultCache.

    A fleet at vector (2, 1) caches an answer.  A delta stream then moves the
    fleet to (1, 2) — e.g. shard 0 rolled back one batch via its inverse
    while shard 1 absorbed one.  The graph state is **different**, so the
    cached answer is stale.  A cache keyed on the collapsed scalar (sum = 3
    both times) happily serves it; the vector key makes it unreachable.
    """
    fingerprint = "f" * 64
    stale_answer = frozenset({"pre-delta-match"})

    # --- broken: scalar collapse as the version slot ----------------------
    scalar_cache = ResultCache(capacity=8)
    before, after = VersionVector.of(2, 1), VersionVector.of(1, 2)
    token = _Token(before.collapsed())
    scalar_cache.store(token, fingerprint, stale_answer, version=before.collapsed())
    token.version = after.collapsed()  # the fleet moved...
    served = scalar_cache.lookup(token, fingerprint, version=after.collapsed())
    assert served == stale_answer  # ...and the scalar key serves stale data.

    # --- fixed: the vector is the version slot ----------------------------
    vector_cache = ResultCache(capacity=8)
    token = _Token(before)
    vector_cache.store(token, fingerprint, stale_answer, version=before)
    token.version = after
    assert vector_cache.lookup(token, fingerprint, version=after) is None
    # And purge_stale reclaims the unreachable entry via the token's version.
    assert vector_cache.purge_stale() == 1
    assert len(vector_cache) == 0


def test_carry_forward_accepts_vector_versions():
    """carry_forward is version-type agnostic: vectors carry like scalars."""
    cache = ResultCache(capacity=8)
    old, new = VersionVector.of(1, 1), VersionVector.of(1, 2)
    token = _Token(old)
    fingerprint = "a" * 64
    cache.store(token, fingerprint, {"n"}, options_key=("k",), version=old)
    token.version = new
    carried = cache.carry_forward(token, [(fingerprint, ("k",))], old, new)
    assert carried == 1
    assert cache.lookup(token, fingerprint, options_key=("k",), version=new) == {"n"}
    assert cache.lookup(token, fingerprint, options_key=("k",), version=old) is None
