"""Property-based tests (hypothesis) for the core data structures and engines.

The single most important property in the whole suite: on randomly generated
graphs and randomly generated quantified patterns, the optimized QMatch (in
any configuration) and the parallel PQMatch return exactly the same answer as
the enumerate-then-verify reference implementation, which is a direct
transcription of the paper's semantics.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import PropertyGraph
from repro.matching import DMatchOptions, EnumMatcher, QMatch
from repro.parallel import PQMatch
from repro.patterns import CountingQuantifier, QuantifiedGraphPattern

NODE_LABELS = ["person", "product"]
EDGE_LABELS = ["follow", "recom"]

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def labeled_graphs(draw, max_nodes: int = 14, max_edges: int = 40) -> PropertyGraph:
    """Small random labeled digraphs with a skew toward 'person' nodes."""
    num_nodes = draw(st.integers(min_value=3, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = PropertyGraph(f"hyp-{seed}")
    for node in range(num_nodes):
        label = "person" if rng.random() < 0.7 else "product"
        graph.add_node(node, label)
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(num_edges):
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source == target:
            continue
        label = rng.choice(EDGE_LABELS)
        graph.add_edge(source, target, label)
    return graph


@st.composite
def quantified_patterns(draw) -> QuantifiedGraphPattern:
    """Small star-or-path shaped QGPs over the same vocabulary as the graphs."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    pattern = QuantifiedGraphPattern(name=f"hyp-Q{seed}")
    pattern.add_node("x", "person")
    pattern.set_focus("x")
    branches = draw(st.integers(min_value=1, max_value=3))
    include_negation = draw(st.booleans())
    quantifier_kind = draw(st.sampled_from(["exist", "count", "ratio", "universal"]))
    for index in range(branches):
        child = f"y{index}"
        pattern.add_node(child, "person")
        if index == 0:
            if quantifier_kind == "count":
                quantifier = CountingQuantifier.at_least(draw(st.integers(1, 3)))
            elif quantifier_kind == "ratio":
                quantifier = CountingQuantifier.ratio_at_least(
                    draw(st.sampled_from([25.0, 50.0, 80.0]))
                )
            elif quantifier_kind == "universal":
                quantifier = CountingQuantifier.universal()
            else:
                quantifier = CountingQuantifier.existential()
        else:
            quantifier = CountingQuantifier.existential()
        pattern.add_edge("x", child, "follow", quantifier)
        if rng.random() < 0.6:
            leaf = f"p{index}"
            pattern.add_node(leaf, "product")
            pattern.add_edge(child, leaf, "recom")
    if include_negation:
        pattern.add_node("neg", "person")
        pattern.add_edge("x", "neg", "follow", CountingQuantifier.negation())
    pattern.validate()
    return pattern


# ---------------------------------------------------------------------------
# Engine equivalence
# ---------------------------------------------------------------------------


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_qmatch_agrees_with_reference_semantics(graph, pattern):
    expected = EnumMatcher().evaluate_answer(pattern, graph)
    assert QMatch().evaluate_answer(pattern, graph) == expected


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_qmatch_without_optimisations_agrees(graph, pattern):
    options = DMatchOptions(
        use_simulation=False, use_potential=False, early_exit=False, use_locality=False
    )
    expected = EnumMatcher().evaluate_answer(pattern, graph)
    assert QMatch(options=options).evaluate_answer(pattern, graph) == expected


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_parallel_matching_agrees_with_sequential(graph, pattern):
    sequential = QMatch().evaluate_answer(pattern, graph)
    parallel = PQMatch(num_workers=3, d=max(pattern.radius(), 1), seed=0).evaluate_answer(
        pattern, graph
    )
    assert parallel == sequential


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_compiled_index_path_is_a_pure_accelerator(graph, pattern):
    """use_index=True must change nothing observable: same answers, same
    positive part, same prune counts as the dict-backed fallback."""
    indexed = QMatch(options=DMatchOptions(use_index=True)).evaluate(pattern, graph)
    fallback = QMatch(options=DMatchOptions(use_index=False)).evaluate(pattern, graph)
    assert indexed.answer == fallback.answer
    assert indexed.positive_answer == fallback.positive_answer
    assert indexed.counter.candidates_pruned == fallback.counter.candidates_pruned


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_indexed_enumeration_is_byte_identical(graph, pattern):
    """The CSR-row enumeration must replay the dict fallback exactly:
    same assignments in the same order, and same work counters even with
    the early-exit optimisation live."""
    from repro.matching import find_isomorphisms

    skeleton = pattern.pi().stratified()
    assert list(find_isomorphisms(skeleton, graph, limit=100, use_index=True)) == list(
        find_isomorphisms(skeleton, graph, limit=100, use_index=False)
    )
    indexed = QMatch(options=DMatchOptions(use_index_enumeration=True)).evaluate(pattern, graph)
    fallback = QMatch(options=DMatchOptions(use_index_enumeration=False)).evaluate(pattern, graph)
    assert indexed.answer == fallback.answer
    assert indexed.counter.extensions == fallback.counter.extensions
    assert indexed.counter.verifications == fallback.counter.verifications


@given(graph=labeled_graphs())
@settings(**SETTINGS)
def test_csr_bfs_matches_dict_bfs(graph):
    """The merged-CSR frontier BFS reaches exactly the dict BFS node sets."""
    from repro.graph import nodes_within_hops
    from repro.index import GraphIndex

    snapshot = GraphIndex.for_graph(graph)
    merged = snapshot.neighborhoods()
    scratch = bytearray(snapshot.num_nodes)
    for node in graph.nodes():
        for hops in (0, 1, 3):
            reached = merged.nodes_within_hops_ids(
                snapshot.node_id(node), hops, visited=scratch
            )
            assert snapshot.to_nodes(reached) == nodes_within_hops(graph, node, hops)
    assert not any(scratch)


@given(graph=labeled_graphs())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_dpar_partition_identical_with_and_without_index(graph):
    """The compiled d-hop expansion must not change the partition at all."""
    from repro.parallel import DPar

    indexed = DPar(d=1, seed=2, use_index=True).partition(graph, 2)
    fallback = DPar(d=1, seed=2, use_index=False).partition(graph, 2)
    assert [f.owned_nodes for f in indexed.fragments] == [
        f.owned_nodes for f in fallback.fragments
    ]
    assert [f.node_set for f in indexed.fragments] == [
        f.node_set for f in fallback.fragments
    ]


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_negation_only_shrinks_the_answer(graph, pattern):
    """Q(xo, G) ⊆ Π(Q)(xo, G): removing the negated branches can only add matches."""
    result = QMatch().evaluate(pattern, graph)
    assert result.answer <= result.positive_answer


@given(graph=labeled_graphs(), pattern=quantified_patterns())
@settings(**SETTINGS)
def test_answers_are_focus_label_nodes(graph, pattern):
    answer = QMatch().evaluate_answer(pattern, graph)
    for node in answer:
        assert graph.node_label(node) == pattern.node_label(pattern.focus)


# ---------------------------------------------------------------------------
# Scale-out tier: sharded fleet vs single-service oracle
# ---------------------------------------------------------------------------


@given(
    graph=labeled_graphs(),
    pattern=quantified_patterns(),
    num_shards=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_sharded_service_matches_union_oracle(graph, pattern, num_shards):
    """ShardedService ≡ one QueryService on the union graph, byte for byte.

    The answer must match exactly, and the router's merged WorkCounter must
    equal the sum of the per-shard counters it reports — per-slot accounting
    that cannot silently lose a shard's contribution.
    """
    from repro.serve import ShardedService
    from repro.service import QueryService
    from repro.utils.counters import WorkCounter

    d = max(pattern.radius(), 1)
    oracle_graph = graph.copy()
    with QueryService(oracle_graph) as oracle, ShardedService(
        graph, num_shards=num_shards, d=d
    ) as fleet:
        expected = oracle.evaluate(pattern)
        served = fleet.evaluate(pattern)
        assert served.answer == expected.answer
        assert not served.cached
        summed = WorkCounter()
        for counter in fleet.last_round_counters.values():
            summed.merge(counter)
        assert served.counter is not None
        assert served.counter.as_dict() == summed.as_dict()
        # Serving again at the same version vector is a pure cache hit.
        again = fleet.evaluate(pattern)
        assert again.cached and again.answer == expected.answer
        fleet.check_invariants()


@given(graph=labeled_graphs(), num_shards=st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_shard_build_is_deterministic_and_covering(graph, num_shards):
    """Two independent builds agree exactly (cross-process determinism), the
    owned sets partition the node universe, and every shard graph is the
    induced ball of its owned set."""
    from repro.serve import build_shards, undirected_ball

    first, _ = build_shards(graph, num_shards, d=2)
    second, _ = build_shards(graph.copy(), num_shards, d=2)
    assert [s.owned for s in first] == [s.owned for s in second]
    assert [s.graph for s in first] == [s.graph for s in second]
    all_owned = [node for shard in first for node in shard.owned]
    assert len(all_owned) == len(set(all_owned)) == graph.num_nodes
    for shard in first:
        ball = undirected_ball(graph, shard.owned, 2) if shard.owned else set()
        assert set(shard.graph.nodes()) == ball


# ---------------------------------------------------------------------------
# Quantifier properties
# ---------------------------------------------------------------------------


@given(
    count=st.integers(min_value=0, max_value=20),
    total=st.integers(min_value=0, max_value=20),
    percent=st.sampled_from([10.0, 25.0, 50.0, 80.0, 100.0]),
)
def test_ratio_check_equals_numeric_threshold(count, total, percent):
    """check(count, total) for '>= p%' is equivalent to count >= numeric_threshold(total)."""
    quantifier = CountingQuantifier.ratio_at_least(percent)
    if total == 0:
        assert not quantifier.check(count, total)
    else:
        count = min(count, total)
        assert quantifier.check(count, total) == (count >= quantifier.numeric_threshold(total))


@given(
    threshold=st.integers(min_value=1, max_value=10),
    count=st.integers(min_value=0, max_value=20),
    upper=st.integers(min_value=0, max_value=20),
)
def test_pruning_is_sound(threshold, count, upper):
    """If the quantifier holds for a count below the upper bound, pruning must not fire."""
    quantifier = CountingQuantifier.at_least(threshold)
    if count <= upper and quantifier.check(count, upper):
        assert quantifier.may_still_hold(upper, upper)


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------


@given(graph=labeled_graphs())
@settings(**SETTINGS)
def test_graph_internal_consistency(graph):
    graph.validate()
    assert graph.num_edges == len(list(graph.edges()))
    for source, target, label in graph.edges():
        assert target in graph.successors(source, label)
        assert source in graph.predecessors(target, label)


@given(graph=labeled_graphs())
@settings(**SETTINGS)
def test_induced_subgraph_never_gains_edges(graph):
    nodes = [node for node in graph.nodes() if isinstance(node, int) and node % 2 == 0]
    sub = graph.induced_subgraph(nodes)
    assert sub.num_nodes == len(nodes)
    assert sub.num_edges <= graph.num_edges
    for source, target, label in sub.edges():
        assert graph.has_edge(source, target, label)


@given(graph=labeled_graphs())
@settings(**SETTINGS)
def test_json_round_trip_property(graph):
    from repro.graph import graph_from_json, graph_to_json

    assert graph_from_json(graph_to_json(graph)) == graph
