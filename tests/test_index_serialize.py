"""Tests for the binary snapshot wire format (:mod:`repro.index.serialize`)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.datasets import benchmark_graph, paper_pattern
from repro.graph import PropertyGraph
from repro.graph.io import (
    graph_from_json,
    graph_to_json,
    read_json,
    read_json_with_snapshot,
    write_json,
    write_json_with_snapshot,
)
from repro.index import (
    GraphIndex,
    from_bytes,
    load_snapshot,
    save_snapshot,
    snapshot_checksum,
    to_bytes,
)
from repro.index.serialize import _HEADER, FORMAT_VERSION, MAGIC
from repro.matching import QMatch
from repro.utils import SnapshotError, StaleIndexError

from fixtures import build_paper_g1
from test_property_based import labeled_graphs


def _assert_same_index(left: GraphIndex, right: GraphIndex) -> None:
    """Field-by-field equality of two snapshots (everything the wire carries)."""
    assert right.version == left.version
    assert right.nodes.values() == left.nodes.values()
    assert right.node_labels.values() == left.node_labels.values()
    assert right.edge_labels.values() == left.edge_labels.values()
    assert right.node_label_ids == left.node_label_ids
    for mine, theirs in ((left.out, right.out), (left.inc, right.inc)):
        assert theirs.num_nodes == mine.num_nodes
        assert theirs.indptr == mine.indptr
        assert theirs.indices == mine.indices
        assert theirs.total_degree == mine.total_degree
    assert right.signatures.num_node_labels == left.signatures.num_node_labels
    assert right.signatures.out_sig == left.signatures.out_sig
    assert right.signatures.in_sig == left.signatures.in_sig
    for label_id in range(len(left.node_labels)):
        assert right.members_ids(label_id) == left.members_ids(label_id)


class TestRoundTrip:
    def test_paper_graph_round_trip(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        restored = from_bytes(to_bytes(index))
        _assert_same_index(index, restored)

    def test_round_trip_preserves_version_stamp(self, paper_g1):
        paper_g1.add_node("extra", "person")  # bump the counter before building
        index = GraphIndex.for_graph(paper_g1)
        assert index.version == paper_g1.version
        restored = from_bytes(to_bytes(index))
        assert restored.version == index.version
        assert not restored.is_stale()

    def test_rebuilt_graph_matches_source_structure(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        rebuilt = from_bytes(to_bytes(index)).graph
        assert rebuilt.name == paper_g1.name
        assert set(rebuilt.nodes()) == set(paper_g1.nodes())
        assert set(rebuilt.edges()) == set(paper_g1.edges())
        assert {n: rebuilt.node_label(n) for n in rebuilt.nodes()} == {
            n: paper_g1.node_label(n) for n in paper_g1.nodes()
        }
        rebuilt.validate()

    def test_rebuilt_graph_has_fresh_cached_index(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        restored = from_bytes(to_bytes(index))
        assert restored.graph.cached_index() is restored
        # for_graph must be a cache hit, not a recompile.
        assert GraphIndex.for_graph(restored.graph) is restored

    def test_rebuilt_graph_is_mutable_and_staleness_works(self, paper_g1):
        restored = from_bytes(to_bytes(GraphIndex.for_graph(paper_g1)))
        graph = restored.graph
        graph.add_node("new-node", "person")
        assert restored.is_stale()
        with pytest.raises(StaleIndexError):
            restored.ensure_fresh()

    def test_neighborhoods_round_trip_when_materialised(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        merged = index.neighborhoods()
        restored = from_bytes(to_bytes(index))
        assert restored._neighborhoods is not None
        assert restored._neighborhoods.indptr == merged.indptr
        assert restored._neighborhoods.indices == merged.indices

    def test_neighborhoods_skipped_when_not_built(self, paper_g1):
        index = GraphIndex.build(paper_g1)
        restored = from_bytes(to_bytes(index))
        assert restored._neighborhoods is None
        restored_with = from_bytes(to_bytes(index, include_neighborhoods=True))
        assert restored_with._neighborhoods is not None

    def test_matching_answers_survive_the_wire(self):
        graph = benchmark_graph("pokec", scale=0.4, seed=5)
        pattern = paper_pattern("Q1")
        expected = QMatch().evaluate_answer(pattern, graph)
        restored = from_bytes(to_bytes(GraphIndex.for_graph(graph)))
        assert QMatch().evaluate_answer(pattern, restored.graph) == expected

    def test_stale_index_refuses_to_serialize(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        paper_g1.add_node("late", "person")
        with pytest.raises(StaleIndexError):
            to_bytes(index)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(graph=labeled_graphs())
    def test_round_trip_property(self, graph):
        """from_bytes(to_bytes(idx)) preserves every table and array, and the
        rebuilt graph is structurally identical to the source."""
        index = GraphIndex.for_graph(graph)
        index.neighborhoods()
        restored = from_bytes(to_bytes(index))
        _assert_same_index(index, restored)
        rebuilt = restored.graph
        assert set(rebuilt.edges()) == set(graph.edges())
        assert {n: rebuilt.node_label(n) for n in rebuilt.nodes()} == {
            n: graph.node_label(n) for n in graph.nodes()
        }
        rebuilt.validate()


class TestBinding:
    def test_bind_to_json_reloaded_graph(self, tmp_path, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        blob = to_bytes(index)
        clone = graph_from_json(graph_to_json(paper_g1))
        bound = from_bytes(blob, graph=clone, strict=True)
        assert bound.graph is clone
        assert not bound.is_stale()
        assert clone.cached_index() is bound
        _assert_same_index(index, bound)  # version rebinds; arrays identical

    def test_bind_rejects_wrong_graph(self, paper_g1, paper_g2):
        blob = to_bytes(GraphIndex.for_graph(paper_g1))
        with pytest.raises(SnapshotError):
            from_bytes(blob, graph=paper_g2)

    def test_strict_bind_rejects_same_counts_different_labels(self, paper_g1):
        blob = to_bytes(GraphIndex.for_graph(paper_g1))
        impostor = paper_g1.copy()
        node = next(iter(impostor.nodes()))
        impostor.add_node(node, "totally-different-label")
        with pytest.raises(SnapshotError):
            from_bytes(blob, graph=impostor, strict=True)


class TestCompiledRowsManifest:
    """Format version 2: the compiled-rows manifest (eager rebuild on decode)."""

    def test_default_ships_exactly_the_materialised_stores(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        index.compiled_rows(False, 0)
        index.compiled_rows(True, 1)
        restored = from_bytes(to_bytes(index))
        assert restored.compiled_row_keys() == ((False, 0), (True, 1))

    def test_unmaterialised_snapshot_ships_no_manifest(self, paper_g1):
        index = GraphIndex.build(paper_g1)
        assert from_bytes(to_bytes(index)).compiled_row_keys() == ()

    def test_full_manifest_decodes_every_store_eagerly(self, paper_g1):
        index = GraphIndex.build(paper_g1)
        restored = from_bytes(to_bytes(index, include_compiled_rows=True))
        expected = tuple(
            (incoming, label_id)
            for incoming in (False, True)
            for label_id in range(len(index.edge_labels))
        )
        assert restored.compiled_row_keys() == tuple(sorted(expected))
        for incoming, label_id in expected:
            assert restored.compiled_rows(incoming, label_id) == index.compiled_rows(
                incoming, label_id
            )

    def test_manifest_can_be_suppressed(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        index.precompile_rows()
        restored = from_bytes(to_bytes(index, include_compiled_rows=False))
        assert restored.compiled_row_keys() == ()

    def test_fragment_payload_materialises_rows_hot(self, paper_g1):
        from repro.parallel import FragmentPayload

        payload = FragmentPayload.from_fragment(0, paper_g1, set(paper_g1.nodes()))
        materialised = FragmentPayload(
            payload.fragment_id, payload.owned_nodes, payload.snapshot_bytes,
            payload.attrs, payload.cache_key,
        ).materialise()
        decoded = materialised.cached_index()
        assert decoded is not None
        assert len(decoded.compiled_row_keys()) == 2 * len(decoded.edge_labels)

    def test_manifest_free_snapshots_are_stamped_version_1(self, paper_g1):
        """Minimal-version stamping: no manifest ⇒ a pure v1 container, so
        pre-manifest readers keep accepting it after a rollback."""
        index = GraphIndex.build(paper_g1)
        plain = to_bytes(index, include_compiled_rows=False)
        assert _HEADER.unpack_from(plain, 0)[1] == 1
        with_manifest = to_bytes(index, include_compiled_rows=True)
        assert _HEADER.unpack_from(with_manifest, 0)[1] == FORMAT_VERSION

    def test_version_1_snapshots_stay_readable(self, paper_g1):
        import zlib

        index = GraphIndex.build(paper_g1)
        blob = to_bytes(index, include_neighborhoods=False, include_compiled_rows=False)
        payload = blob[_HEADER.size:]
        legacy = _HEADER.pack(MAGIC, 1, 0, zlib.crc32(payload), len(payload)) + payload
        _assert_same_index(index, from_bytes(legacy))

    def test_malformed_manifest_entries_raise_snapshot_error(self, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        index.compiled_rows(False, 0)
        blob = bytearray(to_bytes(index))
        # The manifest is the last section: flip its direction int to junk.
        import struct
        import zlib

        payload = bytearray(blob[_HEADER.size:])
        payload[-8:-4] = struct.pack("<i", 7)  # direction must be 0 or 1
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, _HEADER.unpack_from(bytes(blob), 0)[2],
            zlib.crc32(bytes(payload)), len(payload),
        )
        with pytest.raises(SnapshotError, match="manifest"):
            from_bytes(header + bytes(payload))

    def test_flag_without_section_is_a_loud_truncation(self, paper_g1):
        import zlib

        index = GraphIndex.build(paper_g1)
        blob = to_bytes(index, include_compiled_rows=False)
        payload = blob[_HEADER.size:]
        # Claim a compiled-rows manifest (flag bit 1) without appending one.
        lying = _HEADER.pack(
            MAGIC, FORMAT_VERSION, 2, zlib.crc32(payload), len(payload)
        ) + payload
        with pytest.raises(SnapshotError, match="truncated"):
            from_bytes(lying)


class TestErrorCases:
    def _blob(self, graph=None):
        graph = graph or build_paper_g1()
        return to_bytes(GraphIndex.for_graph(graph))

    def test_bad_magic(self):
        blob = self._blob()
        with pytest.raises(SnapshotError, match="magic"):
            from_bytes(b"NOPE" + blob[4:])

    def test_unsupported_format_version(self):
        blob = bytearray(self._blob())
        future = _HEADER.pack(
            MAGIC, FORMAT_VERSION + 1, *_HEADER.unpack_from(bytes(blob), 0)[2:]
        )
        with pytest.raises(SnapshotError, match="version"):
            from_bytes(future + bytes(blob[_HEADER.size:]))

    def test_corrupt_payload_fails_checksum(self):
        blob = bytearray(self._blob())
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="checksum"):
            from_bytes(bytes(blob))

    def test_truncated_payload(self):
        blob = self._blob()
        with pytest.raises(SnapshotError):
            from_bytes(blob[: len(blob) - 8])

    def test_too_short_for_header(self):
        with pytest.raises(SnapshotError):
            from_bytes(b"RGIX")

    def test_checksum_accessor_rejects_garbage(self):
        with pytest.raises(SnapshotError):
            snapshot_checksum(b"not a snapshot at all")

    def test_crc_valid_but_malformed_sections_raise_snapshot_error(self):
        """A crafted container with a correct checksum but a truncated meta
        section must raise SnapshotError, not leak struct.error."""
        import struct
        import zlib

        length = struct.Struct("<Q")
        payload = (
            length.pack(1) + b"g"          # graph-name section
            + length.pack(5) + b"short"    # meta section: not 32 bytes
        )
        blob = _HEADER.pack(MAGIC, FORMAT_VERSION, 0, zlib.crc32(payload), len(payload)) + payload
        with pytest.raises(SnapshotError, match="malformed"):
            from_bytes(blob)


class TestFiles:
    def test_save_and_load_snapshot(self, tmp_path, paper_g1):
        index = GraphIndex.for_graph(paper_g1)
        path = tmp_path / "g1.gix"
        size = save_snapshot(index, path)
        assert path.stat().st_size == size
        restored = load_snapshot(path)
        _assert_same_index(index, restored)

    def test_cold_start_graph_json_plus_snapshot(self, tmp_path):
        """The cold-start layout: graph JSON + snapshot side by side; loading
        both skips GraphIndex.build entirely."""
        from repro.index.snapshot import build_call_count

        graph = benchmark_graph("yago2", scale=0.4, seed=3)
        index = GraphIndex.for_graph(graph)
        write_json(graph, tmp_path / "graph.json")
        save_snapshot(index, tmp_path / "graph.gix")

        reloaded = read_json(tmp_path / "graph.json")
        builds_before = build_call_count()
        bound = load_snapshot(tmp_path / "graph.gix", graph=reloaded, strict=True)
        assert build_call_count() == builds_before
        assert GraphIndex.for_graph(reloaded) is bound
        pattern = paper_pattern("Q4", p=2)
        assert QMatch().evaluate_answer(pattern, reloaded) == (
            QMatch().evaluate_answer(pattern, graph)
        )

    def test_json_snapshot_sidecar_pair(self, tmp_path):
        from repro.index.snapshot import build_call_count

        graph = benchmark_graph("pokec", scale=0.3, seed=9)
        path = tmp_path / "graph.json"
        sidecar = write_json_with_snapshot(graph, path)
        assert sidecar.exists() and sidecar.suffix == ".gix"

        builds_before = build_call_count()
        reloaded = read_json_with_snapshot(path)
        assert build_call_count() == builds_before
        assert reloaded.cached_index() is not None
        assert GraphIndex.for_graph(reloaded).version == reloaded.version

    def test_stale_sidecar_is_rejected_not_silently_bound(self, tmp_path):
        """Rewriting the JSON without refreshing the .gix must fail loudly:
        binding is strict, so a different graph with coincidentally equal
        node/edge counts cannot adopt the old index."""
        old = PropertyGraph("pair")
        old.add_node("a", "person")
        old.add_node("b", "person")
        old.add_edge("a", "b", "follow")
        path = tmp_path / "pair.json"
        write_json_with_snapshot(old, path)

        new = PropertyGraph("pair")
        new.add_node("a", "city")
        new.add_node("b", "city")
        new.add_edge("a", "b", "lives")
        write_json(new, path)  # same counts, different labels; sidecar now stale
        with pytest.raises(SnapshotError):
            read_json_with_snapshot(path)

    def test_read_json_with_snapshot_without_sidecar(self, tmp_path, paper_g1):
        path = tmp_path / "bare.json"
        write_json(paper_g1, path)
        reloaded = read_json_with_snapshot(path)
        assert reloaded == paper_g1
        assert reloaded.cached_index() is None


class TestHarnessPhases:
    def test_run_engines_reports_serialize_and_load_phases(self, paper_g1, pattern_q2):
        from repro.bench import (
            INDEX_BUILD_ENGINE,
            INDEX_LOAD_ENGINE,
            INDEX_SERIALIZE_ENGINE,
            EngineSpec,
            run_engines,
        )

        records = run_engines(
            [EngineSpec("QMatch", QMatch)], [pattern_q2], paper_g1, prebuild_index=True
        )
        by_engine = {record.engine: record for record in records}
        assert INDEX_BUILD_ENGINE in by_engine
        serialize = by_engine[INDEX_SERIALIZE_ENGINE]
        assert serialize.extras["snapshot_bytes"] > 0
        load = by_engine[INDEX_LOAD_ENGINE]
        assert load.extras["load_speedup_vs_build"] > 0
        # The warmed snapshot (not the freshly decoded one) stays attached.
        assert paper_g1.cached_index() is not None
