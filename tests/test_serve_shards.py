"""Sharding, delta routing and graph_diff: the structural substrate of serve.

The oracle for everything here is the invariant the router maintains:

    ``shard.graph == union.induced_subgraph(undirected_ball(shard.owned, d))``

on a disjoint ownership partition — the d-hop preservation argument of the
paper, one level up.
"""

from __future__ import annotations

import pytest

from fixtures import build_paper_g1, build_paper_g2
from repro.delta import ABSENT, GraphDelta, apply_delta, graph_diff
from repro.graph import PropertyGraph
from repro.graph.generators import small_world_social_graph
from repro.serve import (
    affected_shards,
    build_shards,
    hash_assign,
    shard_subdelta,
    undirected_ball,
)
from repro.utils.errors import DeltaError, ReproError


# ---------------------------------------------------------------------------
# hash_assign / undirected_ball
# ---------------------------------------------------------------------------


def test_hash_assign_is_deterministic_and_in_range():
    for node in ("alice", 42, ("t", 1)):
        first = hash_assign(node, 4)
        assert first == hash_assign(node, 4)
        assert 0 <= first < 4


def test_hash_assign_distinguishes_types():
    # "1" and 1 must not be forced onto one shard by a sloppy str() collapse.
    assert isinstance(hash_assign("1", 64), int)
    assert hash_assign("1", 1 << 30) != hash_assign(1, 1 << 30)


def test_undirected_ball_matches_per_source_bfs():
    from repro.graph import nodes_within_hops

    graph = small_world_social_graph(40, 90, seed=1)
    sources = list(graph.nodes())[:5]
    for hops in (0, 1, 2):
        expected = set()
        for source in sources:
            expected |= nodes_within_hops(graph, source, hops)
        assert undirected_ball(graph, sources, hops) == expected


# ---------------------------------------------------------------------------
# build_shards
# ---------------------------------------------------------------------------


def test_build_shards_partitions_and_halos():
    graph = build_paper_g1()
    shards, assign = build_shards(graph, 3, d=2)
    owned_union = set()
    for shard in shards:
        assert owned_union.isdisjoint(shard.owned)
        owned_union |= shard.owned
        assert set(shard.graph.nodes()) == (
            undirected_ball(graph, shard.owned, 2) if shard.owned else set()
        )
        for node in shard.owned:
            assert assign(node) == shard.shard_id
    assert owned_union == set(graph.nodes())


def test_build_shards_with_supplied_partition():
    graph = build_paper_g2()
    nodes = sorted(graph.nodes(), key=repr)
    mapping = {node: index % 2 for index, node in enumerate(nodes)}
    shards, assign = build_shards(graph, 2, d=1, partition=mapping)
    for node, shard_id in mapping.items():
        assert assign(node) == shard_id
        assert node in shards[shard_id].owned
    # Unseen (future) nodes still get a deterministic hash owner.
    assert 0 <= assign("brand-new-node") < 2


def test_build_shards_partition_validation():
    graph = build_paper_g1()
    with pytest.raises(ReproError):
        build_shards(graph, 2, d=2, partition={"x1": 5})  # out of range
    with pytest.raises(ReproError):
        build_shards(graph, 2, d=2, partition={"x1": 0})  # does not cover
    with pytest.raises(ReproError):
        build_shards(graph, 0, d=2)
    with pytest.raises(ReproError):
        build_shards(graph, 2, d=0)


# ---------------------------------------------------------------------------
# graph_diff
# ---------------------------------------------------------------------------


def test_graph_diff_round_trips_structures():
    old = build_paper_g1()
    new = build_paper_g1()
    new.add_node("extra", "person", mood="new")
    new.add_edge("x1", "extra", "follow")
    new.remove_edge("x2", "v1", "follow")
    new.remove_node("v4")
    delta = graph_diff(old, new)
    apply_delta(old, delta)
    assert old == new


def test_graph_diff_attrs_and_empty():
    old = PropertyGraph("o")
    old.add_node("a", "person", keep="x", drop="y", change=1)
    new = PropertyGraph("n")
    new.add_node("a", "person", keep="x", change=2, added=3)
    delta = graph_diff(old, new)
    assert not delta.is_structural()
    assert ("a", "drop", ABSENT) in delta.attr_sets
    apply_delta(old, delta)
    assert dict(old.node_attrs("a")) == {"keep": "x", "change": 2, "added": 3}
    assert graph_diff(new, new.copy()).is_empty()


def test_graph_diff_rejects_label_change():
    old = PropertyGraph("o")
    old.add_node("a", "person")
    new = PropertyGraph("n")
    new.add_node("a", "product")
    with pytest.raises(DeltaError):
        graph_diff(old, new)


def test_graph_diff_excludes_cascaded_edges():
    old = PropertyGraph("o")
    old.add_node("a", "person")
    old.add_node("b", "person")
    old.add_edge("a", "b", "follow")
    new = PropertyGraph("n")
    new.add_node("a", "person")
    delta = graph_diff(old, new)
    assert delta.node_deletes == ("b",)
    assert delta.edge_deletes == ()  # the cascade owns (a, b, follow)
    apply_delta(old, delta)
    assert old == new


# ---------------------------------------------------------------------------
# Delta routing: affected_shards + shard_subdelta
# ---------------------------------------------------------------------------


def _fleet(graph, num_shards=3, d=2):
    shards, assign = build_shards(graph, num_shards, d=d)
    return shards, assign


def _route(graph, shards, assign, delta, d=2):
    """Reference routing loop: what ShardedService.apply_delta does."""
    inverse = apply_delta(graph, delta)
    for node, _label, _attrs in delta.node_inserts:
        shards[assign(node)].owned.add(node)
    for node in delta.node_deletes:
        for shard in shards:
            shard.owned.discard(node)
    affected = affected_shards(graph, shards, delta, d)
    for shard in affected:
        sub = shard_subdelta(graph, shard, d)
        if not sub.is_empty():
            apply_delta(shard.graph, sub)
    return inverse, affected


def _assert_invariant(graph, shards, d=2):
    for shard in shards:
        ball = undirected_ball(graph, shard.owned, d) if shard.owned else set()
        assert shard.graph == graph.induced_subgraph(ball, name=shard.graph.name)


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_routing_maintains_invariant_over_update_stream(seed):
    import random

    rng = random.Random(seed)
    graph = small_world_social_graph(30, 60, seed=seed)
    shards, assign = _fleet(graph)
    _assert_invariant(graph, shards)
    nodes = sorted(graph.nodes(), key=repr)
    inserted = 0
    for step in range(12):
        choice = rng.random()
        if choice < 0.4:
            source, target = rng.sample(nodes, 2)
            if graph.has_edge(source, target, "follow"):
                delta = GraphDelta.delete_edge(source, target, "follow")
            else:
                delta = GraphDelta.insert_edge(source, target, "follow")
        elif choice < 0.7:
            new = f"new{inserted}"
            inserted += 1
            anchor = rng.choice(nodes)
            delta = GraphDelta.build(
                node_inserts=[(new, "person")],
                edge_inserts=[(anchor, new, "follow")],
            )
            nodes.append(new)
        else:
            victim = rng.choice(nodes)
            nodes.remove(victim)
            delta = GraphDelta.build(node_deletes=[victim])
        _route(graph, shards, assign, delta)
        _assert_invariant(graph, shards)


def test_unreachable_shard_is_skipped_and_does_not_bump():
    # Two far-apart components so a delta in one cannot reach the other.
    graph = PropertyGraph("two-islands")
    for island in ("a", "b"):
        prev = None
        for index in range(6):
            node = f"{island}{index}"
            graph.add_node(node, "person")
            if prev is not None:
                graph.add_edge(prev, node, "follow")
            prev = node
    partition = {node: (0 if str(node).startswith("a") else 1) for node in graph.nodes()}
    shards, assign = build_shards(graph, 2, d=2, partition=partition)
    versions_before = [shard.graph.version for shard in shards]

    delta = GraphDelta.insert_edge("a0", "a3", "follow")
    _inverse, affected = _route(graph, shards, assign, delta)
    assert [shard.shard_id for shard in affected] == [0]
    _assert_invariant(graph, shards)
    assert shards[1].graph.version == versions_before[1]  # untouched: no bump
    assert shards[0].graph.version == versions_before[0] + 1


def test_inverse_routing_restores_every_shard():
    graph = small_world_social_graph(24, 50, seed=5)
    shards, assign = _fleet(graph)
    snapshots = [shard.graph.copy() for shard in shards]
    nodes = sorted(graph.nodes(), key=repr)
    delta = GraphDelta.build(
        node_inserts=[("fresh", "person")],
        edge_inserts=[(nodes[0], "fresh", "follow"), ("fresh", nodes[1], "follow")],
    )
    inverse, _ = _route(graph, shards, assign, delta)
    _route(graph, shards, assign, inverse)
    _assert_invariant(graph, shards)
    for shard, snapshot in zip(shards, snapshots):
        assert shard.graph == snapshot
