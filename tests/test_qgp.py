"""Unit tests for the QGP model: structure, Π(Q), positification, validation."""

from __future__ import annotations

import pytest

from repro.patterns import CountingQuantifier, PatternBuilder, QuantifiedGraphPattern
from repro.utils import PatternError, PatternValidationError

from fixtures import build_q3, build_q4


class TestStructure:
    def test_focus_required(self):
        pattern = QuantifiedGraphPattern()
        pattern.add_node("a", "person")
        with pytest.raises(PatternError):
            _ = pattern.focus
        pattern.set_focus("a")
        assert pattern.focus == "a"

    def test_set_focus_requires_existing_node(self):
        pattern = QuantifiedGraphPattern()
        with pytest.raises(PatternError):
            pattern.set_focus("ghost")

    def test_add_edge_requires_nodes(self):
        pattern = QuantifiedGraphPattern()
        pattern.add_node("a", "person")
        with pytest.raises(PatternError):
            pattern.add_edge("a", "ghost", "follow")

    def test_default_quantifier_is_existential(self):
        pattern = QuantifiedGraphPattern()
        pattern.add_node("a", "person")
        pattern.add_node("b", "person")
        edge = pattern.add_edge("a", "b", "follow")
        assert edge.is_existential
        assert pattern.quantifier("a", "b", "follow").is_existential

    def test_quantifier_lookup_missing_edge(self):
        pattern = QuantifiedGraphPattern()
        pattern.add_node("a", "person")
        with pytest.raises(PatternError):
            pattern.quantifier("a", "a", "x")

    def test_set_quantifier(self, pattern_q3):
        pattern_q3.set_quantifier("xo", "z1", "follow", CountingQuantifier.at_least(5))
        assert pattern_q3.quantifier("xo", "z1", "follow").value == 5
        with pytest.raises(PatternError):
            pattern_q3.set_quantifier("xo", "z1", "like", CountingQuantifier.at_least(5))

    def test_edges_are_deterministically_ordered(self, pattern_q3):
        assert [e.key for e in pattern_q3.edges()] == sorted(
            e.key for e in pattern_q3.edges()
        )

    def test_in_and_out_edges(self, pattern_q3):
        out_labels = {e.label for e in pattern_q3.out_edges("xo")}
        assert out_labels == {"follow"}
        in_edges = pattern_q3.in_edges("redmi")
        assert {e.source for e in in_edges} == {"z1", "z2"}


class TestClassification:
    def test_positive_and_negative(self, pattern_q2, pattern_q3):
        assert pattern_q2.is_positive
        assert not pattern_q3.is_positive
        assert len(pattern_q3.negated_edges()) == 1

    def test_conventional(self):
        conventional = (
            PatternBuilder("C")
            .focus("a", "person")
            .node("b", "person")
            .edge("a", "b", "follow")
            .build()
        )
        assert conventional.is_conventional
        assert conventional.is_positive

    def test_size_signature(self, pattern_q3):
        nodes, edges, average, negated = pattern_q3.size_signature()
        assert (nodes, edges, negated) == (4, 4, 1)
        assert average == pytest.approx(2.0)  # the single '>= 2' numeric aggregate

    def test_non_existential_edges(self, pattern_q2):
        assert [e.quantifier.is_universal for e in pattern_q2.non_existential_edges()] == [True]


class TestDerivedPatterns:
    def test_stratified_strips_quantifiers(self, pattern_q3):
        stratified = pattern_q3.stratified()
        assert stratified.is_conventional
        assert stratified.num_nodes == pattern_q3.num_nodes
        assert stratified.num_edges == pattern_q3.num_edges
        assert stratified.focus == pattern_q3.focus

    def test_pi_drops_negated_branch(self, pattern_q3):
        positive = pattern_q3.pi()
        assert positive.is_positive
        assert "z2" not in set(positive.nodes())
        # redmi stays because it is reachable through the positive z1 branch.
        assert "redmi" in set(positive.nodes())
        assert positive.num_edges == 2

    def test_pi_of_positive_pattern_is_identity(self, pattern_q2):
        assert pattern_q2.pi() == pattern_q2

    def test_positify(self, pattern_q3):
        negated = pattern_q3.negated_edges()[0]
        positified = pattern_q3.positify(negated)
        assert positified.quantifier(*negated.key).is_existential
        # The original pattern is untouched.
        assert pattern_q3.quantifier(*negated.key).is_negation

    def test_positify_requires_negated_edge(self, pattern_q2):
        edge = pattern_q2.edges()[0]
        with pytest.raises(PatternError):
            pattern_q2.positify(edge)

    def test_positified_pi_patterns(self, pattern_q3):
        pairs = pattern_q3.positified_pi_patterns()
        assert len(pairs) == 1
        edge, positified_pi = pairs[0]
        assert edge.is_negated
        assert positified_pi.is_positive
        assert "z2" in set(positified_pi.nodes())

    def test_q4_pi_keeps_shared_constants(self, pattern_q4):
        positive = pattern_q4.pi()
        assert "phd" not in set(positive.nodes())
        assert {"prof", "uk", "z"} <= set(positive.nodes())


class TestMetricsAndValidation:
    def test_radius(self, pattern_q2, pattern_q3, pattern_q4):
        assert pattern_q2.radius() == 2
        assert pattern_q3.radius() == 2
        assert pattern_q4.radius() == 1

    def test_radius_requires_connectivity(self):
        pattern = QuantifiedGraphPattern()
        pattern.add_node("a", "person")
        pattern.add_node("b", "person")
        pattern.add_node("c", "person")
        pattern.add_edge("a", "b", "follow")
        pattern.set_focus("a")
        with pytest.raises(PatternError):
            pattern.radius()

    def test_validate_rejects_disconnected(self):
        pattern = QuantifiedGraphPattern()
        pattern.add_node("a", "person")
        pattern.add_node("b", "person")
        pattern.set_focus("a")
        with pytest.raises(PatternValidationError):
            pattern.validate()

    def test_validate_rejects_double_negation_on_a_path(self):
        pattern = QuantifiedGraphPattern()
        for node, label in [("a", "person"), ("b", "person"), ("c", "person")]:
            pattern.add_node(node, label)
        pattern.set_focus("a")
        pattern.add_edge("a", "b", "follow", CountingQuantifier.negation())
        pattern.add_edge("b", "c", "follow", CountingQuantifier.negation())
        with pytest.raises(PatternValidationError):
            pattern.validate()

    def test_validate_allows_negations_on_different_branches(self):
        # The paper's Q5 carries two negated edges on different branches.
        pattern = QuantifiedGraphPattern()
        for node, label in [("a", "person"), ("b", "person"), ("c", "person")]:
            pattern.add_node(node, label)
        pattern.set_focus("a")
        pattern.add_edge("a", "b", "follow", CountingQuantifier.negation())
        pattern.add_edge("a", "c", "like", CountingQuantifier.negation())
        pattern.validate()  # must not raise

    def test_validate_limits_quantifiers_per_path(self):
        pattern = QuantifiedGraphPattern()
        for index in range(4):
            pattern.add_node(f"n{index}", "person")
        pattern.set_focus("n0")
        for index in range(3):
            pattern.add_edge(f"n{index}", f"n{index + 1}", "follow",
                             CountingQuantifier.at_least(2))
        with pytest.raises(PatternValidationError):
            pattern.validate(max_quantified_per_path=2)
        pattern.validate(max_quantified_per_path=3)

    def test_validate_paper_patterns(self, pattern_q2, pattern_q3, pattern_q4):
        for pattern in (pattern_q2, pattern_q3, pattern_q4):
            pattern.validate()


class TestCopyAndEquality:
    def test_copy_is_equal_but_independent(self, pattern_q3):
        clone = pattern_q3.copy()
        assert clone == pattern_q3
        clone.add_node("extra", "person")
        clone.add_edge("xo", "extra", "follow")
        assert clone != pattern_q3

    def test_relabel_nodes(self, pattern_q2):
        renamed = pattern_q2.relabel_nodes({"xo": "focus", "z": "friend"})
        assert renamed.focus == "focus"
        assert renamed.node_label("friend") == "person"
        assert renamed.num_edges == pattern_q2.num_edges

    def test_q3_q4_factories_with_different_thresholds(self):
        assert build_q3(3).quantifier("xo", "z1", "follow").value == 3
        assert build_q4(5).quantifier("xo", "z", "advisor").value == 5

    def test_describe_contains_all_edges(self, pattern_q3):
        text = pattern_q3.describe()
        assert "follow" in text and "= 0" in text and ">= 2" in text
