"""Unit tests for the PropertyGraph substrate."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph
from repro.utils import EdgeNotFoundError, GraphError, NodeNotFoundError


@pytest.fixture
def small_graph() -> PropertyGraph:
    graph = PropertyGraph("small")
    graph.add_node("a", "person", city="Presov")
    graph.add_node("b", "person")
    graph.add_node("p", "product")
    graph.add_edge("a", "b", "follow")
    graph.add_edge("a", "p", "buy")
    graph.add_edge("b", "p", "recom")
    return graph


class TestNodes:
    def test_add_and_query_nodes(self, small_graph):
        assert small_graph.has_node("a")
        assert small_graph.node_label("a") == "person"
        assert small_graph.node_attrs("a")["city"] == "Presov"
        assert small_graph.num_nodes == 3

    def test_nodes_with_label_index(self, small_graph):
        assert small_graph.nodes_with_label("person") == {"a", "b"}
        assert small_graph.nodes_with_label("product") == {"p"}
        assert small_graph.nodes_with_label("missing") == set()
        assert small_graph.node_labels() == {"person", "product"}

    def test_nodes_with_label_returns_a_copy(self, small_graph):
        """Mutating the returned set must not corrupt the label index.

        Regression test: the accessor used to return the live ``_label_index``
        entry, so ``discard`` removed the node from label lookups while it
        stayed in the graph.
        """
        people = small_graph.nodes_with_label("person")
        people.discard("a")
        people.add("intruder")
        assert small_graph.nodes_with_label("person") == {"a", "b"}
        assert small_graph.has_node("a")
        small_graph.validate()

    def test_set_returning_accessors_are_all_copies(self, small_graph):
        """Clearing any accessor result leaves the graph intact (aliasing audit)."""
        for accessor in (
            lambda: small_graph.nodes_with_label("person"),
            lambda: small_graph.node_labels(),
            lambda: small_graph.successors("a"),
            lambda: small_graph.successors("a", "follow"),
            lambda: small_graph.predecessors("b"),
            lambda: small_graph.neighbors("a"),
            lambda: small_graph.out_edge_labels("a"),
            lambda: small_graph.edge_labels("a", "b"),
        ):
            before = accessor()
            accessor().clear()
            assert accessor() == before
        small_graph.validate()

    def test_relabeling_updates_index(self, small_graph):
        small_graph.add_node("a", "bot")
        assert small_graph.node_label("a") == "bot"
        assert "a" not in small_graph.nodes_with_label("person")
        assert "a" in small_graph.nodes_with_label("bot")
        small_graph.validate()

    def test_missing_node_raises(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            small_graph.node_label("ghost")
        with pytest.raises(NodeNotFoundError):
            small_graph.node_attrs("ghost")
        with pytest.raises(NodeNotFoundError):
            small_graph.successors("ghost")
        with pytest.raises(NodeNotFoundError):
            small_graph.remove_node("ghost")

    def test_set_node_attr(self, small_graph):
        small_graph.set_node_attr("b", "age", 30)
        assert small_graph.node_attrs("b")["age"] == 30

    def test_remove_node_removes_incident_edges(self, small_graph):
        small_graph.remove_node("b")
        assert not small_graph.has_node("b")
        assert not small_graph.has_edge("a", "b", "follow")
        assert not small_graph.has_edge("b", "p", "recom")
        assert small_graph.num_edges == 1
        small_graph.validate()

    def test_contains_and_len(self, small_graph):
        assert "a" in small_graph
        assert "ghost" not in small_graph
        assert len(small_graph) == 3


class TestEdges:
    def test_add_edge_requires_endpoints(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            small_graph.add_edge("a", "ghost", "follow")
        with pytest.raises(NodeNotFoundError):
            small_graph.add_edge("ghost", "a", "follow")

    def test_duplicate_edge_is_idempotent(self, small_graph):
        before = small_graph.num_edges
        small_graph.add_edge("a", "b", "follow")
        assert small_graph.num_edges == before

    def test_parallel_edges_with_different_labels(self, small_graph):
        small_graph.add_edge("a", "b", "like")
        assert small_graph.edge_labels("a", "b") == {"follow", "like"}
        assert small_graph.has_edge("a", "b")
        assert small_graph.has_edge("a", "b", "like")
        assert not small_graph.has_edge("a", "b", "recom")

    def test_remove_edge(self, small_graph):
        small_graph.remove_edge("a", "b", "follow")
        assert not small_graph.has_edge("a", "b", "follow")
        with pytest.raises(EdgeNotFoundError):
            small_graph.remove_edge("a", "b", "follow")
        small_graph.validate()

    def test_edges_iteration(self, small_graph):
        assert set(small_graph.edges()) == {
            ("a", "b", "follow"),
            ("a", "p", "buy"),
            ("b", "p", "recom"),
        }

    def test_size_is_nodes_plus_edges(self, small_graph):
        assert small_graph.size() == small_graph.num_nodes + small_graph.num_edges


class TestAdjacency:
    def test_successors_by_label(self, small_graph):
        assert small_graph.successors("a", "follow") == {"b"}
        assert small_graph.successors("a") == {"b", "p"}
        assert small_graph.successors("p") == set()

    def test_predecessors_by_label(self, small_graph):
        assert small_graph.predecessors("p", "buy") == {"a"}
        assert small_graph.predecessors("p") == {"a", "b"}

    def test_degrees(self, small_graph):
        assert small_graph.out_degree("a") == 2
        assert small_graph.out_degree("a", "buy") == 1
        assert small_graph.in_degree("p") == 2
        assert small_graph.in_degree("p", "recom") == 1
        assert small_graph.out_degree("p") == 0

    def test_neighbors_union(self, small_graph):
        assert small_graph.neighbors("b") == {"a", "p"}

    def test_out_edge_labels(self, small_graph):
        assert small_graph.out_edge_labels("a") == {"follow", "buy"}
        assert small_graph.out_edge_labels("p") == set()

    def test_average_degree(self, small_graph):
        assert small_graph.average_degree() == pytest.approx(1.0)
        assert PropertyGraph().average_degree() == 0.0


class TestSubgraphsAndCopies:
    def test_induced_subgraph(self, small_graph):
        sub = small_graph.induced_subgraph({"a", "b"})
        assert set(sub.nodes()) == {"a", "b"}
        assert set(sub.edges()) == {("a", "b", "follow")}
        assert sub.node_attrs("a")["city"] == "Presov"

    def test_induced_subgraph_missing_node(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            small_graph.induced_subgraph({"a", "ghost"})

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        assert clone == small_graph
        clone.add_node("new", "person")
        clone.add_edge("new", "p", "buy")
        assert not small_graph.has_node("new")
        assert clone != small_graph

    def test_merge_from(self, small_graph):
        other = PropertyGraph("other")
        other.add_node("z", "person")
        other.add_node("p", "product")
        other.add_edge("z", "p", "recom")
        small_graph.merge_from(other)
        assert small_graph.has_node("z")
        assert small_graph.has_edge("z", "p", "recom")
        small_graph.validate()

    def test_equality_checks_structure(self, small_graph):
        clone = small_graph.copy()
        assert clone == small_graph
        clone.remove_edge("a", "b", "follow")
        assert clone != small_graph
        assert small_graph != 42

    def test_validate_detects_corruption(self, small_graph):
        # Corrupt the reverse index deliberately.
        small_graph._in["b"]["follow"].discard("a")
        with pytest.raises(GraphError):
            small_graph.validate()

    def test_repr_mentions_sizes(self, small_graph):
        text = repr(small_graph)
        assert "nodes=3" in text and "edges=3" in text
