"""Tests for DMatch and the QMatch driver: correctness, caches, options, work."""

from __future__ import annotations

import itertools

import pytest

from repro.matching import (
    DMatchOptions,
    EnumMatcher,
    QMatch,
    dmatch,
    qmatch_engine,
    qmatch_n_engine,
)
from repro.patterns import PatternBuilder
from repro.utils import MatchingError, WorkCounter

from fixtures import build_q3


class TestDMatch:
    def test_positive_pattern_answer(self, paper_g1, pattern_q2):
        outcome = dmatch(pattern_q2, paper_g1)
        assert outcome.answer == {"x1", "x2"}

    def test_rejects_negative_patterns(self, paper_g1, pattern_q3):
        with pytest.raises(MatchingError):
            dmatch(pattern_q3, paper_g1)

    def test_node_match_caches_cover_answer(self, paper_g1, pattern_q2):
        outcome = dmatch(pattern_q2, paper_g1)
        assert outcome.answer <= outcome.node_matches["xo"]
        assert outcome.node_matches["redmi"] == {"redmi"}
        # Witness bindings of z are among the actual recommenders.
        assert outcome.node_matches["z"] <= {"v0", "v1", "v2", "v3"}

    def test_focus_restriction(self, paper_g1, pattern_q2):
        outcome = dmatch(pattern_q2, paper_g1, focus_restriction={"x1", "x3"})
        assert outcome.answer == {"x1"}

    def test_counts_verifications(self, paper_g1, pattern_q2):
        counter = WorkCounter()
        dmatch(pattern_q2, paper_g1, counter=counter)
        assert counter.verifications >= 1
        assert counter.quantifier_checks >= 1

    def test_empty_candidates_short_circuit(self, paper_g1):
        pattern = (
            PatternBuilder()
            .focus("x", "alien")
            .node("y", "person")
            .edge("x", "y", "follow")
            .build()
        )
        counter = WorkCounter()
        outcome = dmatch(pattern, paper_g1, counter=counter)
        assert outcome.answer == set()
        assert counter.verifications == 0

    def test_as_match_result(self, paper_g1, pattern_q2):
        result = dmatch(pattern_q2, paper_g1).as_match_result(engine="DMatch")
        assert result.answer == {"x1", "x2"}
        assert result.engine == "DMatch"


class TestOptionCombinations:
    """Every optimisation switch must preserve the answer (ablation correctness)."""

    @pytest.mark.parametrize(
        "use_simulation, use_potential, early_exit, use_locality",
        list(itertools.product([True, False], repeat=4)),
    )
    def test_all_option_combinations_agree(
        self, paper_g1, use_simulation, use_potential, early_exit, use_locality
    ):
        options = DMatchOptions(
            use_simulation=use_simulation,
            use_potential=use_potential,
            early_exit=early_exit,
            use_locality=use_locality,
        )
        pattern = build_q3(p=2)
        assert QMatch(options=options).evaluate_answer(pattern, paper_g1) == {"x2"}

    def test_options_agree_on_dataset_patterns(self, small_pokec, dataset_q1, dataset_q3):
        reference = EnumMatcher()
        for pattern in (dataset_q1, dataset_q3):
            expected = reference.evaluate_answer(pattern, small_pokec)
            for options in (
                DMatchOptions(),
                DMatchOptions(use_simulation=False),
                DMatchOptions(use_potential=False, early_exit=False),
                DMatchOptions(use_locality=True),
            ):
                assert QMatch(options=options).evaluate_answer(pattern, small_pokec) == expected


class TestQMatchDriver:
    def test_engine_names(self):
        assert QMatch().name == "QMatch"
        assert QMatch(use_incremental=False).name == "QMatchN"
        assert qmatch_engine().use_incremental
        assert not qmatch_n_engine().use_incremental

    def test_result_fields(self, paper_g1, pattern_q3):
        result = QMatch().evaluate(pattern_q3, paper_g1)
        assert result.engine == "QMatch"
        assert result.answer == {"x2"}
        assert result.positive_answer == {"x2", "x3"}
        assert result.elapsed >= 0.0
        assert len(result.incremental) == 1
        assert result.counter.total_work() > 0

    def test_incremental_and_scratch_agree(self, paper_g1, small_pokec, dataset_q3):
        for graph, pattern in ((paper_g1, build_q3(p=2)), (small_pokec, dataset_q3)):
            incremental = QMatch(use_incremental=True).evaluate(pattern, graph)
            scratch = QMatch(use_incremental=False).evaluate(pattern, graph)
            assert incremental.answer == scratch.answer

    def test_negation_only_subtracts(self, paper_g1):
        """Adding a negated edge can only shrink the answer (Lemma 10 flavour)."""
        with_negation = build_q3(p=1)
        positive_only = with_negation.pi()
        answer_full = QMatch().evaluate_answer(with_negation, paper_g1)
        answer_positive = QMatch().evaluate_answer(positive_only, paper_g1)
        assert answer_full <= answer_positive

    def test_conventional_pattern_reduces_to_subgraph_isomorphism(self, paper_g1):
        pattern = (
            PatternBuilder()
            .focus("x", "person")
            .node("y", "person")
            .node("r", "Redmi_2A")
            .edge("x", "y", "follow")
            .edge("y", "r", "recom")
            .build()
        )
        assert QMatch().evaluate_answer(pattern, paper_g1) == {"x1", "x2", "x3"}

    def test_focus_restriction_passthrough(self, paper_g1, pattern_q3):
        result = QMatch().evaluate(pattern_q3, paper_g1, focus_restriction={"x3"})
        assert result.answer == set()
        result = QMatch().evaluate(pattern_q3, paper_g1, focus_restriction={"x2"})
        assert result.answer == {"x2"}

    def test_more_than_quantifier(self, paper_g1):
        pattern = (
            PatternBuilder("gt")
            .focus("x", "person")
            .node("y", "person")
            .node("r", "Redmi_2A")
            .edge("x", "y", "follow", more_than=2)
            .edge("y", "r", "recom")
            .build()
        )
        # Only x3 follows more than two recommenders... but only 2 of its
        # followees recommend, so nobody qualifies.
        assert QMatch().evaluate_answer(pattern, paper_g1) == set()
        assert EnumMatcher().evaluate_answer(pattern, paper_g1) == set()

    def test_exact_count_quantifier(self, paper_g1):
        pattern = (
            PatternBuilder("eq")
            .focus("x", "person")
            .node("y", "person")
            .node("r", "Redmi_2A")
            .edge("x", "y", "follow", exactly=2)
            .edge("y", "r", "recom")
            .build()
        )
        expected = EnumMatcher().evaluate_answer(pattern, paper_g1)
        assert QMatch().evaluate_answer(pattern, paper_g1) == expected == {"x2", "x3"}


class TestWorkAccounting:
    def test_qmatch_prunes_more_candidates_than_it_verifies(self, small_pokec, dataset_q3):
        result = QMatch().evaluate(dataset_q3, small_pokec)
        focus_candidates = len(small_pokec.nodes_with_label("person"))
        assert result.counter.verifications <= focus_candidates + len(result.positive_answer)

    def test_enum_does_more_quantifier_checks_than_qmatch(self, small_pokec, dataset_q3):
        enum_result = EnumMatcher().evaluate(dataset_q3, small_pokec)
        qmatch_result = QMatch().evaluate(dataset_q3, small_pokec)
        assert qmatch_result.counter.extensions <= enum_result.counter.extensions
