"""Compatibility of the migrated counters with their historical readers.

The old module-global counters (``_BUILD_CALLS`` / ``_REFRESH_CALLS`` /
``_REFRESH_REBUILDS``) now live on the always-on :data:`repro.obs.metrics.
CORE` slots, with the original reader functions preserved as thin views.
These tests pin the migration: the readers track CORE exactly, the autouse
fixture gives every test a zeroed slate (the counter-leak footgun the
globals had is gone), and the opt-in registry mirrors agree with the
per-query :class:`~repro.utils.counters.WorkCounter` totals.
"""

from __future__ import annotations

from repro.datasets import benchmark_graph, paper_pattern
from repro.delta import GraphDelta, apply_delta, refreshed_index
from repro.delta.refresh import refresh_call_count, refresh_rebuild_count
from repro.index import GraphIndex, build_call_count
from repro.matching import EnumMatcher, QMatch
from repro.obs import active_metrics
from repro.obs.metrics import CORE


def _small_graph():
    return benchmark_graph("pokec", scale=0.3, seed=11)


class TestCoreCompatReaders:
    def test_every_test_starts_from_zero(self):
        # the autouse fixture resets CORE: no traffic from other tests leaks in
        assert CORE.as_dict() == {
            "index_builds": 0,
            "index_refreshes": 0,
            "index_refresh_rebuilds": 0,
        }
        assert build_call_count() == 0
        assert refresh_call_count() == 0
        assert refresh_rebuild_count() == 0

    def test_build_call_count_reads_core(self):
        graph = _small_graph()
        before = build_call_count()
        GraphIndex.build(graph)
        assert build_call_count() == before + 1
        assert build_call_count() == CORE.index_builds

    def test_refresh_readers_track_patch_and_fallback(self):
        graph = _small_graph()
        index = GraphIndex.build(graph)

        node = next(iter(graph.nodes()))
        small = GraphDelta(
            node_inserts=(("compat-probe", "person", ()),),
            edge_inserts=((node, "compat-probe", "follow"),),
        )
        apply_delta(graph, small)
        index = refreshed_index(index, small)
        assert refresh_call_count() == 1

        # a batch touching everything forces the rebuild fallback
        wipe = GraphDelta(node_deletes=tuple(graph.nodes()))
        apply_delta(graph, wipe)
        refreshed_index(index, wipe)
        assert refresh_call_count() == 2
        assert refresh_rebuild_count() == 1
        assert (refresh_call_count(), refresh_rebuild_count()) == (
            CORE.index_refreshes,
            CORE.index_refresh_rebuilds,
        )


class TestRegistryMirrors:
    def test_qmatch_mirror_matches_work_counter(self):
        graph = _small_graph()
        pattern = paper_pattern("Q1")
        with active_metrics() as registry:
            result = QMatch().evaluate(pattern, graph)
            assert registry.counter("match.queries").value == 1
            assert (
                registry.counter("match.verifications").value
                == result.counter.verifications
            )
            assert (
                registry.counter("match.extensions").value
                == result.counter.extensions
            )
            assert (
                registry.counter("match.quantifier_checks").value
                == result.counter.quantifier_checks
            )
            assert registry.histogram("match.seconds").count == 1

    def test_enum_mirror_accumulates_across_queries(self):
        graph = _small_graph()
        pattern = paper_pattern("Q1")
        with active_metrics() as registry:
            first = EnumMatcher().evaluate(pattern, graph)
            second = EnumMatcher().evaluate(pattern, graph)
            assert registry.counter("match.queries").value == 2
            assert registry.counter("match.verifications").value == (
                first.counter.verifications + second.counter.verifications
            )

    def test_disabled_registry_records_nothing_but_counters_still_work(self):
        graph = _small_graph()
        pattern = paper_pattern("Q1")
        result = QMatch().evaluate(pattern, graph)
        # per-query WorkCounters are orthogonal to the registry being off
        assert result.counter.verifications > 0
        with active_metrics() as registry:
            assert registry.dump() == {}

    def test_index_mirror_counts_builds(self):
        graph = _small_graph()
        with active_metrics() as registry:
            GraphIndex.build(graph)
            assert registry.counter("index.build").value == 1
            assert registry.gauge("index.nodes").value == graph.num_nodes
            assert registry.histogram("index.build_seconds").count == 1
        # CORE kept counting too
        assert CORE.index_builds == 1
