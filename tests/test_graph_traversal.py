"""Unit tests for BFS, d-hop neighbourhoods, radius and connectivity."""

from __future__ import annotations

import pytest

from repro.graph import (
    PropertyGraph,
    bfs_levels,
    connected_components,
    d_hop_neighborhood,
    eccentricity_from,
    is_weakly_connected,
    nodes_within_hops,
    undirected_shortest_path_length,
)
from repro.utils import NodeNotFoundError


@pytest.fixture
def chain_graph() -> PropertyGraph:
    """a -> b -> c -> d plus an isolated node e."""
    graph = PropertyGraph("chain")
    for node in ("a", "b", "c", "d", "e"):
        graph.add_node(node, "N")
    graph.add_edge("a", "b", "r")
    graph.add_edge("b", "c", "r")
    graph.add_edge("c", "d", "r")
    return graph


class TestBfs:
    def test_undirected_levels(self, chain_graph):
        levels = bfs_levels(chain_graph, "c")
        assert levels == {"c": 0, "b": 1, "d": 1, "a": 2}

    def test_directed_levels_follow_out_edges_only(self, chain_graph):
        levels = bfs_levels(chain_graph, "c", directed=True)
        assert levels == {"c": 0, "d": 1}

    def test_max_depth_truncates(self, chain_graph):
        levels = bfs_levels(chain_graph, "a", max_depth=2)
        assert levels == {"a": 0, "b": 1, "c": 2}

    def test_missing_source_raises(self, chain_graph):
        with pytest.raises(NodeNotFoundError):
            bfs_levels(chain_graph, "ghost")


class TestNeighborhoods:
    def test_nodes_within_hops(self, chain_graph):
        assert nodes_within_hops(chain_graph, "b", 1) == {"a", "b", "c"}
        assert nodes_within_hops(chain_graph, "b", 0) == {"b"}

    def test_d_hop_neighborhood_is_induced(self, chain_graph):
        neighborhood = d_hop_neighborhood(chain_graph, "b", 1)
        assert set(neighborhood.nodes()) == {"a", "b", "c"}
        assert set(neighborhood.edges()) == {("a", "b", "r"), ("b", "c", "r")}

    def test_neighborhood_of_isolated_node(self, chain_graph):
        neighborhood = d_hop_neighborhood(chain_graph, "e", 3)
        assert set(neighborhood.nodes()) == {"e"}
        assert neighborhood.num_edges == 0


class TestDistances:
    def test_shortest_path_length(self, chain_graph):
        assert undirected_shortest_path_length(chain_graph, "a", "d") == 3
        assert undirected_shortest_path_length(chain_graph, "a", "a") == 0
        assert undirected_shortest_path_length(chain_graph, "a", "e") is None

    def test_shortest_path_missing_target(self, chain_graph):
        with pytest.raises(NodeNotFoundError):
            undirected_shortest_path_length(chain_graph, "a", "ghost")

    def test_eccentricity(self, chain_graph):
        assert eccentricity_from(chain_graph, "a") == 3
        assert eccentricity_from(chain_graph, "b") == 2
        assert eccentricity_from(chain_graph, "e") == 0


class TestComponents:
    def test_connected_components_sorted_by_size(self, chain_graph):
        components = connected_components(chain_graph)
        assert [len(c) for c in components] == [4, 1]
        assert components[0] == {"a", "b", "c", "d"}

    def test_is_weakly_connected(self, chain_graph):
        assert not is_weakly_connected(chain_graph)
        chain_graph.add_edge("d", "e", "r")
        assert is_weakly_connected(chain_graph)

    def test_empty_graph_is_connected(self):
        assert is_weakly_connected(PropertyGraph())
