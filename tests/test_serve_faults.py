"""Storage fault injection: every way the shared store lies, serving survives.

The asymmetric contract under test (see ``repro/serve/shared_cache.py``): a
hit is served only after every integrity gate passes; ANY read failure —
flipped bytes, truncation, a peer's lock, unpicklable payloads, schema skew —
degrades to a recompute.  Degraded is observable (``serve.cache.degraded``
moves, ``last_degraded_reason`` names the gate) and never wrong: each test
pins the served answer against a fresh single-service oracle.
"""

from __future__ import annotations

import pickle
import sqlite3
import zlib

import pytest

from fixtures import build_paper_g1, build_q2, build_q3
from repro.delta import GraphDelta
from repro.obs.metrics import active_metrics
from repro.serve import ShardedService, SharedResultCache
from repro.service import QueryService


def _oracle_answer(graph, pattern):
    with QueryService(graph.copy()) as oracle:
        return oracle.evaluate(pattern).answer


@pytest.fixture
def warmed(tmp_path):
    """A shared store warmed by a producer fleet, plus the expected answers."""
    path = str(tmp_path / "shared.sqlite")
    expected = {
        "q2": _oracle_answer(build_paper_g1(), build_q2()),
        "q3": _oracle_answer(build_paper_g1(), build_q3(2)),
    }
    with ShardedService(build_paper_g1(), num_shards=2, shared_cache=path) as producer:
        producer.evaluate(build_q2())
        producer.evaluate(build_q3(2))
    return path, expected


def _consumer(path):
    return ShardedService(build_paper_g1(), num_shards=2, shared_cache=path)


def _rows(path):
    connection = sqlite3.connect(path)
    rows = connection.execute("SELECT cache_key, crc, payload FROM entries").fetchall()
    connection.close()
    return rows


# ---------------------------------------------------------------------------
# Corrupt payloads
# ---------------------------------------------------------------------------


def test_flipped_payload_byte_degrades_to_recompute(warmed):
    path, expected = warmed
    connection = sqlite3.connect(path)
    with connection:
        for key, _crc, payload in _rows(path):
            mangled = bytes([payload[0] ^ 0xFF]) + payload[1:]
            connection.execute(
                "UPDATE entries SET payload = ? WHERE cache_key = ?", (mangled, key)
            )
    connection.close()
    with active_metrics() as registry, _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]
        assert fleet.evaluate(build_q3(2)).answer == expected["q3"]
        assert fleet.shared.stats.degraded >= 2
        assert fleet.shared.last_degraded_reason == "payload CRC mismatch"
        assert registry.counter("serve.cache.degraded").value >= 2
        # Recompute repaired the rows: a second consumer gets clean hits.
    with _consumer(path) as healed:
        assert healed.evaluate(build_q2()).answer == expected["q2"]
        assert healed.shared.stats.degraded == 0 and healed.stats.shared_hits == 1


def test_crc_consistent_garbage_fails_the_unpickle_gate(warmed):
    """Corruption that rewrites the CRC too must still die — at pickle."""
    path, expected = warmed
    garbage = b"\x80\x04not really a pickle stream"
    connection = sqlite3.connect(path)
    with connection:
        connection.execute(
            "UPDATE entries SET payload = ?, crc = ?", (garbage, zlib.crc32(garbage))
        )
    connection.close()
    with _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]
        assert fleet.shared.stats.degraded >= 1
        assert fleet.shared.last_degraded_reason.startswith("read:")


def test_transplanted_blob_fails_the_embedded_key_gate(warmed):
    """CRC-valid, unpickles fine, wrong row: the last gate catches it."""
    path, expected = warmed
    rows = _rows(path)
    assert len(rows) == 2
    connection = sqlite3.connect(path)
    with connection:
        # File q3's (differing) payload under q2's key, CRC intact.
        (key_a, _crc_a, _payload_a), (_key_b, crc_b, payload_b) = rows
        connection.execute(
            "UPDATE entries SET crc = ?, payload = ? WHERE cache_key = ?",
            (crc_b, payload_b, key_a),
        )
    connection.close()
    with _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]
        assert fleet.evaluate(build_q3(2)).answer == expected["q3"]
        assert fleet.shared.stats.degraded == 1
        assert fleet.shared.last_degraded_reason == "embedded key mismatch"


# ---------------------------------------------------------------------------
# Truncation
# ---------------------------------------------------------------------------


def test_truncated_database_file_degrades_not_crashes(warmed):
    path, expected = warmed
    with open(path, "r+b") as handle:
        handle.truncate(600)  # slice through the first page's btree content
    with active_metrics() as registry, _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]
        assert fleet.evaluate(build_q3(2)).answer == expected["q3"]
        assert registry.counter("serve.cache.degraded").value >= 1


def test_zero_length_database_file_is_reinitialised(warmed):
    path, expected = warmed
    with open(path, "wb"):
        pass  # sqlite treats an empty file as a fresh database
    with _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]
        assert fleet.shared.stats.stores >= 1  # schema rebuilt, row restored


# ---------------------------------------------------------------------------
# Locks: a peer holding the database mid-read and mid-write
# ---------------------------------------------------------------------------


def test_peer_exclusive_lock_degrades_reads_and_writes(warmed):
    path, expected = warmed
    blocker = sqlite3.connect(path)
    blocker.execute("BEGIN EXCLUSIVE")
    try:
        with active_metrics() as registry, _consumer(path) as fleet:
            # Mid-read: the warm entry exists but the lock makes it a miss...
            assert fleet.evaluate(build_q2()).answer == expected["q2"]
            # ...and mid-write: storing the recompute degrades too.
            degraded = fleet.shared.stats.degraded
            assert degraded >= 2
            assert registry.counter("serve.cache.degraded").value == degraded
            assert fleet.stats.shared_hits == 0
    finally:
        blocker.rollback()
        blocker.close()
    # Lock released: the original producer's row is intact and served.
    with _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]
        assert fleet.stats.shared_hits == 1


def test_lock_appearing_mid_run_only_degrades_that_window(warmed):
    path, expected = warmed
    with _consumer(path) as fleet:
        assert fleet.evaluate(build_q2()).answer == expected["q2"]  # clean hit
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            assert fleet.evaluate(build_q3(2)).answer == expected["q3"]
            assert fleet.shared.stats.degraded >= 1
        finally:
            blocker.rollback()
            blocker.close()
        assert fleet.stats.shared_hits == 1  # the pre-lock hit still counted


# ---------------------------------------------------------------------------
# Staleness: the version check keeps poisoned-by-time entries unreachable
# ---------------------------------------------------------------------------


def test_stale_vector_entries_are_unreachable_after_delta(warmed):
    path, expected = warmed
    with _consumer(path) as fleet:
        fleet.apply_delta(
            GraphDelta.build(edge_inserts=[("x1", "v1", "follow")])
        )
        served = fleet.evaluate(build_q2())
        # The store holds only pre-delta entries; the moved vector keys them
        # out, so this was a plain miss + recompute — and it is correct.
        assert not served.cached
        assert fleet.stats.shared_hits == 0
        assert served.answer == _oracle_answer(fleet.graph, build_q2())
        assert fleet.shared.stats.degraded == 0  # staleness is not a fault
