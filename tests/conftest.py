"""Shared fixtures for the test suite.

The most important fixtures are ``paper_g1`` / ``paper_g2``: faithful
renderings of the two example graphs of Figure 2 of the paper, together with
the example patterns Q1–Q5.  The paper states the expected answers for these
inputs explicitly (Examples 3, 4, 6 and 7), which gives the test suite a set
of ground-truth cases that pin down the QGP semantics independently of our own
reference implementation.

The builders themselves live in :mod:`fixtures` (``tests/fixtures.py``) so
that test modules and the benchmark conftest can import them explicitly —
``from conftest import ...`` is ambiguous when several conftests exist.
"""

from __future__ import annotations

import pytest

from repro.datasets import benchmark_graph, paper_pattern, paper_rule
from repro.graph import PropertyGraph

from fixtures import (  # noqa: F401  (quantifier is re-exported for tests)
    build_paper_g1,
    build_paper_g2,
    build_q2,
    build_q3,
    build_q4,
    build_triangle,
    quantifier,
)


# --------------------------------------------------------------------------
# Paper Figure 2 graphs and patterns (see fixtures.py for the structures).
# --------------------------------------------------------------------------


@pytest.fixture
def paper_g1() -> PropertyGraph:
    return build_paper_g1()


@pytest.fixture
def pattern_q2():
    return build_q2()


@pytest.fixture
def pattern_q3():
    return build_q3(p=2)


@pytest.fixture
def paper_g2() -> PropertyGraph:
    return build_paper_g2()


@pytest.fixture
def pattern_q4():
    return build_q4(p=2)


# --------------------------------------------------------------------------
# Small shared synthetic datasets (built once per session: generation and
# matching on them is cheap but not free).
# --------------------------------------------------------------------------


@pytest.fixture(scope="session")
def small_pokec() -> PropertyGraph:
    return benchmark_graph("pokec", scale=0.35, seed=5)


@pytest.fixture(scope="session")
def small_yago() -> PropertyGraph:
    return benchmark_graph("yago2", scale=0.5, seed=5)


@pytest.fixture(scope="session")
def small_synthetic() -> PropertyGraph:
    return benchmark_graph("synthetic", scale=0.3, seed=5)


@pytest.fixture
def dataset_q1():
    return paper_pattern("Q1")


@pytest.fixture
def dataset_q3():
    return paper_pattern("Q3", p=2)


@pytest.fixture
def dataset_rule_r1():
    return paper_rule("R1")


# --------------------------------------------------------------------------
# Miscellaneous helpers
# --------------------------------------------------------------------------


@pytest.fixture
def triangle_graph() -> PropertyGraph:
    return build_triangle()


# --------------------------------------------------------------------------
# Observability isolation: the registry singleton, the tracer and the
# always-on CORE counters are process-wide state.  Resetting them around
# every test kills the counter-leak footgun the old module globals had — a
# test asserting on build/refresh counts can never be poisoned by an earlier
# test's traffic, and a test that enables metrics/tracing can never leave
# them enabled for the rest of the run.
# --------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _obs_isolation():
    from repro.obs import reset_observability

    reset_observability()
    yield
    reset_observability()
