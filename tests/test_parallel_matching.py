"""Tests for the parallel layer: workers, executors and the PQMatch coordinator."""

from __future__ import annotations

import pytest

from repro.matching import QMatch
from repro.parallel import (
    FragmentTask,
    PQMatch,
    SerialExecutor,
    SimulatedCluster,
    ThreadedExecutor,
    make_executor,
    match_fragment,
    mqmatch_fragment,
    penum_engine,
    pqmatch_engine,
    pqmatch_n_engine,
    pqmatch_s_engine,
)
from repro.parallel.partition import DPar
from repro.utils import PartitionError


class TestWorker:
    def test_match_fragment_restricts_to_owned_nodes(self, paper_g1, pattern_q2):
        result = match_fragment(pattern_q2, paper_g1, owned_nodes={"x1"}, fragment_id=7)
        assert result.fragment_id == 7
        assert result.answer == {"x1"}  # x2 matches too but is not owned here

    def test_match_fragment_empty_ownership(self, paper_g1, pattern_q2):
        result = match_fragment(pattern_q2, paper_g1, owned_nodes=set())
        assert result.answer == set()

    def test_mqmatch_chunks_cover_all_answers(self, paper_g1, pattern_q2):
        whole = match_fragment(pattern_q2, paper_g1, owned_nodes=set(paper_g1.nodes()))
        chunked = mqmatch_fragment(
            pattern_q2, paper_g1, owned_nodes=set(paper_g1.nodes()), threads=3
        )
        assert chunked.answer == whole.answer

    def test_mqmatch_single_thread_falls_back(self, paper_g1, pattern_q2):
        single = mqmatch_fragment(
            pattern_q2, paper_g1, owned_nodes=set(paper_g1.nodes()), threads=1
        )
        assert single.answer == {"x1", "x2"}

    def test_fragment_task_run(self, paper_g1, pattern_q2):
        task = FragmentTask(
            fragment_id=1,
            fragment_graph=paper_g1,
            owned_nodes={"x1", "x2", "x3"},
            pattern=pattern_q2,
            engine=QMatch(),
        )
        result = task.run()
        assert result.answer == {"x1", "x2"}


class TestExecutors:
    def make_tasks(self, paper_g1, pattern_q2):
        return [
            FragmentTask(0, paper_g1, {"x1"}, pattern_q2, QMatch()),
            FragmentTask(1, paper_g1, {"x2", "x3"}, pattern_q2, QMatch()),
        ]

    def test_serial_executor(self, paper_g1, pattern_q2):
        results = SerialExecutor().run(self.make_tasks(paper_g1, pattern_q2))
        assert [r.answer for r in results] == [{"x1"}, {"x2"}]

    def test_threaded_executor(self, paper_g1, pattern_q2):
        results = ThreadedExecutor(max_workers=2).run(self.make_tasks(paper_g1, pattern_q2))
        assert {frozenset(r.answer) for r in results} == {frozenset({"x1"}), frozenset({"x2"})}

    def test_simulated_cluster(self, paper_g1, pattern_q2):
        results = SimulatedCluster(num_workers=2).run(self.make_tasks(paper_g1, pattern_q2))
        assert len(results) == 2

    def test_make_executor_factory(self):
        assert make_executor("serial", 4).name == "serial"
        assert make_executor("thread", 4).name == "thread"
        assert make_executor("process", 4).name == "process"
        assert make_executor("simulated", 4).name == "simulated"
        with pytest.raises(PartitionError):
            make_executor("quantum", 4)

    def test_invalid_worker_counts(self):
        with pytest.raises(PartitionError):
            ThreadedExecutor(0)
        with pytest.raises(PartitionError):
            SimulatedCluster(0)


class TestPQMatch:
    def test_matches_sequential_on_paper_graphs(self, paper_g1, paper_g2, pattern_q3, pattern_q4):
        for graph, pattern in ((paper_g1, pattern_q3), (paper_g2, pattern_q4)):
            sequential = QMatch().evaluate_answer(pattern, graph)
            for workers in (1, 2, 4):
                parallel = PQMatch(num_workers=workers, d=2, seed=0).evaluate_answer(
                    pattern, graph
                )
                assert parallel == sequential

    def test_matches_sequential_on_dataset(self, small_pokec, dataset_q1, dataset_q3):
        sequential_engine = QMatch()
        parallel_engine = pqmatch_engine(num_workers=4, d=2)
        for pattern in (dataset_q1, dataset_q3):
            assert parallel_engine.evaluate_answer(pattern, small_pokec) == (
                sequential_engine.evaluate_answer(pattern, small_pokec)
            )

    def test_partition_is_reused_across_queries(self, small_pokec, dataset_q1, dataset_q3):
        engine = PQMatch(num_workers=3, d=2, seed=0)
        engine.evaluate(dataset_q1, small_pokec)
        first_partition = engine._partition
        engine.evaluate(dataset_q3, small_pokec)
        assert engine._partition is first_partition

    def test_partition_extends_for_larger_radius(self, small_yago):
        from repro.datasets import paper_pattern

        engine = PQMatch(num_workers=2, d=1, seed=0)
        engine.partition(small_yago)
        assert engine._partition.d == 1
        q4 = paper_pattern("Q4", p=2)
        engine.evaluate(q4, small_yago)
        assert engine._partition.d >= q4.radius()

    def test_work_is_distributed(self, small_pokec, dataset_q3):
        result = pqmatch_engine(num_workers=4, d=2).evaluate(dataset_q3, small_pokec)
        busy = [f for f in result.fragments if f.counter.total_work() > 0]
        assert len(busy) >= 2
        assert result.total_work >= result.makespan_work
        assert result.work_speedup >= 1.0
        assert 0.0 <= result.work_skew <= 1.0

    def test_more_workers_reduce_makespan(self, small_pokec, dataset_q3):
        """The parallel-scalability shape: makespan work shrinks as n grows."""
        makespans = {}
        for workers in (2, 8):
            result = pqmatch_engine(num_workers=workers, d=2).evaluate(dataset_q3, small_pokec)
            makespans[workers] = result.makespan_work
        assert makespans[8] < makespans[2]

    def test_thread_executor_agrees(self, small_pokec, dataset_q1):
        serial = pqmatch_engine(num_workers=3, executor="serial").evaluate_answer(
            dataset_q1, small_pokec
        )
        threaded = pqmatch_engine(num_workers=3, executor="thread").evaluate_answer(
            dataset_q1, small_pokec
        )
        assert serial == threaded

    def test_engine_variants_agree(self, small_pokec, dataset_q3):
        engines = [
            pqmatch_engine(num_workers=3),
            pqmatch_s_engine(num_workers=3),
            pqmatch_n_engine(num_workers=3),
            penum_engine(num_workers=3),
        ]
        answers = {frozenset(engine.evaluate_answer(dataset_q3, small_pokec)) for engine in engines}
        assert len(answers) == 1

    def test_invalid_worker_count(self):
        with pytest.raises(PartitionError):
            PQMatch(num_workers=0)

    def test_names_identify_variants(self):
        assert "PQMatch" in pqmatch_engine(4).name
        assert "PQMatchS" in pqmatch_s_engine(4).name
        assert "PQMatchN" in pqmatch_n_engine(4).name
        assert "PEnum" in penum_engine(4).name

    def test_union_of_owned_answers_has_no_duplicates(self, small_pokec, dataset_q1):
        result = pqmatch_engine(num_workers=4).evaluate(dataset_q1, small_pokec)
        total = sum(len(fragment.answer) for fragment in result.fragments)
        assert total == len(result.answer)
