"""Index/matcher equivalence: the compiled path must be a pure accelerator.

Every consumer of :mod:`repro.index` keeps a dict-backed fallback
(``use_index=False``); these tests assert, on the paper's example graphs and
on seeded generator graphs, that switching the index on changes *nothing*
observable — answers, candidate sets, upper bounds, simulation relations and
``WorkCounter`` prune counts are all identical.
"""

from __future__ import annotations

import pytest

from repro.datasets import benchmark_graph, paper_pattern, workload_patterns
from repro.graph import PropertyGraph, nodes_within_hops
from repro.graph.simulation import (
    dual_simulation_relation,
    refine_candidates,
    simulation_relation,
)
from repro.index import GraphIndex
from repro.matching import DMatchOptions, QMatch, build_candidate_index, dmatch
from repro.matching.generic import find_isomorphisms
from repro.patterns import PatternBuilder
from repro.parallel.partition import DPar, base_partition
from repro.utils import WorkCounter

from fixtures import build_paper_g1, build_paper_g2, build_q2, build_q3, build_q4


def _cases():
    """(name, graph, pattern) triples covering paper examples and generators."""
    g1, g2 = build_paper_g1(), build_paper_g2()
    cases = [
        ("g1-q2", g1, build_q2()),
        ("g1-q3p2", g1, build_q3(p=2)),
        ("g1-q3p4", g1, build_q3(p=4)),
        ("g2-q4", g2, build_q4(p=2)),
    ]
    for dataset, queries in (("pokec", ("Q1", "Q2", "Q3")), ("yago2", ("Q4", "Q5"))):
        graph = benchmark_graph(dataset, scale=0.4, seed=5)
        for query in queries:
            pattern = paper_pattern(query, p=2) if query in ("Q3", "Q4") else paper_pattern(query)
            cases.append((f"{dataset}-{query}", graph, pattern))
    generated = benchmark_graph("synthetic", scale=0.3, seed=7)
    for position, pattern in enumerate(
        workload_patterns(generated, count=3, num_nodes=4, num_edges=5,
                          ratio_percent=30.0, num_negated=1, seed=13)
    ):
        cases.append((f"synthetic-w{position}", generated, pattern))
    return cases


CASES = _cases()
CASE_IDS = [name for name, _, _ in CASES]


@pytest.mark.parametrize("name,graph,pattern", CASES, ids=CASE_IDS)
class TestMatcherEquivalence:
    def test_qmatch_answers_and_prune_counts_identical(self, name, graph, pattern):
        indexed = QMatch(options=DMatchOptions(use_index=True)).evaluate(pattern, graph)
        fallback = QMatch(options=DMatchOptions(use_index=False)).evaluate(pattern, graph)
        assert indexed.answer == fallback.answer
        assert indexed.positive_answer == fallback.positive_answer
        assert indexed.counter.candidates_pruned == fallback.counter.candidates_pruned

    def test_enumeration_work_counts_identical_across_all_modes(self, name, graph, pattern):
        """Indexed enumeration is byte-identical: answers AND work counters.

        The deterministic candidate ordering shared by both enumeration paths
        makes even the early-exit extension counts match exactly, so this
        asserts the full counter tuple — not just the answer — across the
        fully indexed engine, the enumeration-only ablation and the dict
        fallback.
        """
        outcomes = {}
        for mode, options in (
            ("indexed", DMatchOptions()),
            ("enum-ablation", DMatchOptions(use_index_enumeration=False)),
            ("fallback", DMatchOptions(use_index=False)),
        ):
            result = QMatch(options=options).evaluate(pattern, graph)
            outcomes[mode] = (
                result.answer,
                result.positive_answer,
                result.counter.extensions,
                result.counter.verifications,
                result.counter.quantifier_checks,
                result.counter.candidates_pruned,
            )
        assert outcomes["indexed"] == outcomes["enum-ablation"] == outcomes["fallback"]

    def test_isomorphism_streams_identical_in_order(self, name, graph, pattern):
        """The two enumeration paths yield the same assignments in the same order."""
        skeleton = pattern.pi().stratified()
        indexed = list(find_isomorphisms(skeleton, graph, limit=200, use_index=True))
        fallback = list(find_isomorphisms(skeleton, graph, limit=200, use_index=False))
        assert indexed == fallback

    def test_qmatch_without_simulation_identical(self, name, graph, pattern):
        options_on = DMatchOptions(use_simulation=False, use_index=True)
        options_off = DMatchOptions(use_simulation=False, use_index=False)
        indexed = QMatch(options=options_on).evaluate(pattern, graph)
        fallback = QMatch(options=options_off).evaluate(pattern, graph)
        assert indexed.answer == fallback.answer
        assert indexed.counter.candidates_pruned == fallback.counter.candidates_pruned

    def test_dmatch_on_positive_part_identical(self, name, graph, pattern):
        positive = pattern.pi()
        indexed = dmatch(positive, graph, options=DMatchOptions(use_index=True))
        fallback = dmatch(positive, graph, options=DMatchOptions(use_index=False))
        assert indexed.answer == fallback.answer

    def test_candidate_index_identical(self, name, graph, pattern):
        positive = pattern.pi()
        for use_simulation in (True, False):
            counter_indexed, counter_fallback = WorkCounter(), WorkCounter()
            indexed = build_candidate_index(
                positive, graph, use_simulation=use_simulation,
                counter=counter_indexed, use_index=True,
            )
            fallback = build_candidate_index(
                positive, graph, use_simulation=use_simulation,
                counter=counter_fallback, use_index=False,
            )
            assert indexed.candidates == fallback.candidates
            assert indexed.upper_bounds == fallback.upper_bounds
            assert indexed.pruned == fallback.pruned
            assert counter_indexed.candidates_pruned == counter_fallback.candidates_pruned

    def test_simulation_relations_identical(self, name, graph, pattern):
        skeleton = pattern.pi().stratified().graph
        assert simulation_relation(skeleton, graph, use_index=True) == \
            simulation_relation(skeleton, graph, use_index=False)
        assert dual_simulation_relation(skeleton, graph, use_index=True) == \
            dual_simulation_relation(skeleton, graph, use_index=False)

    def test_refine_candidates_identical_from_seeded_pools(self, name, graph, pattern):
        skeleton = pattern.pi().stratified().graph
        seeds = dual_simulation_relation(skeleton, graph, use_index=False)
        refined_indexed = refine_candidates(skeleton, graph, seeds, use_index=True)
        refined_fallback = refine_candidates(skeleton, graph, seeds, use_index=False)
        assert refined_indexed == refined_fallback


class TestPartitionDegreeStrategy:
    def test_degree_blocks_cover_all_nodes_once(self, small_pokec):
        blocks = base_partition(small_pokec, 4, seed=3, strategy="degree")
        seen = set()
        for block in blocks:
            assert seen.isdisjoint(block)
            seen |= block
        assert seen == set(small_pokec.nodes())

    def test_degree_strategy_balances_degree_weight(self, small_pokec):
        blocks = base_partition(small_pokec, 4, seed=3, strategy="degree")

        def load(block):
            return sum(
                1 + small_pokec.out_degree(n) + small_pokec.in_degree(n) for n in block
            )

        loads = sorted(load(block) for block in blocks)
        assert loads[0] > 0
        # LPT keeps the spread tight: max load within 25% of min load.
        assert loads[-1] <= loads[0] * 1.25

    def test_degree_strategy_matches_dict_fallback(self, small_pokec):
        indexed = base_partition(small_pokec, 3, seed=11, strategy="degree", use_index=True)
        fallback = base_partition(small_pokec, 3, seed=11, strategy="degree", use_index=False)
        assert indexed == fallback

    def test_dpar_with_degree_strategy_is_complete_and_covering(self, small_pokec):
        partition = DPar(d=1, seed=2, strategy="degree").partition(small_pokec, 3)
        assert partition.is_complete()
        assert partition.is_covering()

    def test_parallel_answer_unchanged_by_degree_strategy(self):
        from repro.parallel import PQMatch

        graph = build_paper_g1()
        pattern = build_q3(p=2)
        sequential = QMatch().evaluate_answer(pattern, graph)
        parallel = PQMatch(num_workers=2, d=2, seed=0, strategy="degree")
        assert parallel.evaluate_answer(pattern, graph) == sequential


class TestPartitionBfsEquivalence:
    """The CSR d-hop BFS must build byte-identical partitions."""

    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_dpar_identical_with_and_without_index(self, small_pokec, d):
        indexed = DPar(d=d, seed=9, use_index=True).partition(small_pokec, 3)
        fallback = DPar(d=d, seed=9, use_index=False).partition(small_pokec, 3)
        for built, reference in zip(indexed.fragments, fallback.fragments):
            assert built.fragment_id == reference.fragment_id
            assert built.owned_nodes == reference.owned_nodes
            assert built.node_set == reference.node_set
            assert built.border_nodes == reference.border_nodes

    def test_extend_identical_with_and_without_index(self, small_pokec):
        indexed = DPar(d=1, seed=4, use_index=True)
        fallback = DPar(d=1, seed=4, use_index=False)
        extended_indexed = indexed.extend(indexed.partition(small_pokec, 3), 2)
        extended_fallback = fallback.extend(fallback.partition(small_pokec, 3), 2)
        assert [f.node_set for f in extended_indexed.fragments] == [
            f.node_set for f in extended_fallback.fragments
        ]
        assert extended_indexed.is_covering() and extended_indexed.is_complete()

    def test_csr_bfs_matches_dict_bfs_on_benchmark_graph(self, small_pokec):
        snapshot = GraphIndex.for_graph(small_pokec)
        merged = snapshot.neighborhoods()
        scratch = bytearray(snapshot.num_nodes)
        for node in small_pokec.nodes():
            for hops in (0, 1, 2):
                reached = merged.nodes_within_hops_ids(
                    snapshot.node_id(node), hops, visited=scratch
                )
                assert snapshot.to_nodes(reached) == nodes_within_hops(
                    small_pokec, node, hops
                )


class TestStaleGraphSafety:
    def test_mutating_the_graph_between_queries_stays_correct(self):
        """for_graph must transparently rebuild after mutations."""
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        first = QMatch().evaluate_answer(pattern, graph)
        assert first == {"x2"}  # Example 3 of the paper: x3 is negated away.
        # x3's follow-edge to the bad-rating reviewer disappears, so x3 no
        # longer touches the negated branch and joins the answer.
        graph.remove_edge("x3", "v4", "follow")
        second_indexed = QMatch(options=DMatchOptions(use_index=True)).evaluate_answer(
            pattern, graph
        )
        second_fallback = QMatch(options=DMatchOptions(use_index=False)).evaluate_answer(
            pattern, graph
        )
        assert second_indexed == second_fallback == {"x2", "x3"}

    def test_match_context_recompiles_after_mutation(self):
        """An index-aware context must not enumerate from stale rows."""
        from repro.matching.generic import MatchContext

        graph = build_paper_g1()
        pattern = build_q3(p=2).pi().stratified()
        context = MatchContext(pattern, graph, use_index=True)
        before = list(context.isomorphisms())
        assert before  # sanity: the pattern matches the example graph
        graph.remove_edge("x3", "v4", "follow")
        after = list(context.isomorphisms())
        fresh = list(
            MatchContext(pattern, graph, use_index=False).isomorphisms()
        )
        assert after == fresh

    def test_empty_label_pattern(self):
        graph = build_paper_g1()
        pattern = (
            PatternBuilder()
            .focus("x", "person")
            .node("m", "missing_label")
            .edge("x", "m", "follow")
            .build()
        )
        for use_index in (True, False):
            index = build_candidate_index(
                pattern, graph, use_simulation=False, use_index=use_index
            )
            assert index.is_empty()


class TestRefineCandidatesSeededPools:
    """`refine_candidates` must honour caller-supplied pools verbatim.

    Unlike the label-derived seeds of the full simulation entry points, the
    pools here may disagree with the pattern's node labels or contain nodes
    the graph has never seen; the indexed path must reproduce the dict path's
    behaviour for both (regression tests for the PR-1 review findings).
    """

    def test_label_inconsistent_pools_are_refined_identically(self):
        graph = PropertyGraph("g")
        graph.add_node("a", "A")
        graph.add_node("b", "B")
        graph.add_edge("a", "b", "e")
        pattern = PropertyGraph("p")
        pattern.add_node("u", "A")
        pattern.add_node("w", "C")  # label absent from the graph
        pattern.add_edge("u", "w", "e")
        pools = {"u": {"a"}, "w": {"b"}}
        for dual in (False, True):
            fallback = refine_candidates(
                pattern, graph, {k: set(v) for k, v in pools.items()},
                dual=dual, use_index=False,
            )
            indexed = refine_candidates(
                pattern, graph, {k: set(v) for k, v in pools.items()},
                dual=dual, use_index=True,
            )
            # Support is membership in the supplied pool, not label agreement:
            # "b" supports "a" even though its label B is not the pattern's C.
            assert indexed == fallback == {"u": {"a"}, "w": {"b"}}

    def test_unknown_members_of_requirement_free_nodes_survive(self):
        graph = PropertyGraph("g")
        graph.add_node("a", "A")
        pattern = PropertyGraph("p")
        pattern.add_node("u", "A")  # no pattern edges: never probed
        pools = {"u": {"a", "ghost"}}
        for dual in (False, True):
            fallback = refine_candidates(
                pattern, graph, {k: set(v) for k, v in pools.items()},
                dual=dual, use_index=False,
            )
            indexed = refine_candidates(
                pattern, graph, {k: set(v) for k, v in pools.items()},
                dual=dual, use_index=True,
            )
            assert indexed == fallback == {"u": {"a", "ghost"}}

    def test_unknown_members_of_constrained_nodes_raise_on_both_paths(self):
        from repro.utils.errors import NodeNotFoundError

        graph = PropertyGraph("g")
        graph.add_node("a", "A")
        graph.add_node("b", "B")
        graph.add_edge("a", "b", "e")
        pattern = PropertyGraph("p")
        pattern.add_node("u", "A")
        pattern.add_node("w", "B")
        pattern.add_edge("u", "w", "e")
        pools = {"u": {"a", "ghost"}, "w": {"b"}}
        for use_index in (False, True):
            with pytest.raises(NodeNotFoundError):
                refine_candidates(
                    pattern, graph, {k: set(v) for k, v in pools.items()},
                    dual=True, use_index=use_index,
                )
