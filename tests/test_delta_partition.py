"""Partition maintenance under deltas: covering, complete, refresh-only.

``apply_delta_to_partition`` must leave a d-hop preserving partition that is
still *covering* (every owned node's Nd inside its fragment) and *complete*
(every live node owned somewhere), with each materialised fragment graph an
exact induced subgraph of the post-delta source restricted to its node set —
the invariants Lemma 9(1) rests on.
"""

from __future__ import annotations

import pytest

from repro.delta import GraphDelta, apply_delta, apply_delta_to_partition
from repro.delta.refresh import refresh_rebuild_count
from repro.graph import small_world_social_graph
from repro.index import GraphIndex
from repro.matching import QMatch
from repro.parallel import PQMatch
from repro.utils.errors import DeltaError

from fixtures import build_q3


def make_partitioned(seed=7, num_nodes=80, num_edges=240, d=2, workers=4):
    graph = small_world_social_graph(num_nodes, num_edges, seed=seed)
    coordinator = PQMatch(num_workers=workers, d=d)
    partition = coordinator.partition(graph)
    # Materialise every fragment (and its index) so maintenance has real
    # graphs to patch, not just node sets.
    for fragment in partition.fragments:
        GraphIndex.for_graph(partition.fragment_graph(fragment))
    return graph, coordinator, partition


def assert_fragments_are_induced(partition):
    graph = partition.source
    for fragment in partition.fragments:
        materialised = partition._graph_cache.get(fragment.fragment_id)
        if materialised is None:
            continue
        expected = graph.induced_subgraph(fragment.node_set)
        assert sorted(materialised.edges(), key=str) == sorted(
            expected.edges(), key=str
        ), f"fragment {fragment.fragment_id} edges diverged from the induced subgraph"
        assert set(materialised.nodes()) == fragment.node_set


def churn_delta(graph, seed=0):
    """A small valid edge-churn batch over *graph*."""
    edges = sorted(graph.edges(), key=str)
    nodes = sorted(graph.nodes(), key=str)
    delete = edges[seed % len(edges)]
    source, target = nodes[seed % len(nodes)], nodes[(seed * 7 + 3) % len(nodes)]
    inserts = []
    if source != target and not graph.has_edge(source, target, "follow"):
        inserts.append((source, target, "follow"))
    return GraphDelta.build(edge_inserts=inserts, edge_deletes=[delete])


class TestPartitionMaintenance:
    def test_edge_churn_keeps_partition_covering_and_complete(self):
        graph, _coordinator, partition = make_partitioned()
        for round_ in range(4):
            delta = churn_delta(graph, seed=round_ * 13)
            inverse = apply_delta(graph, delta)
            index = GraphIndex.for_graph(graph)
            apply_delta_to_partition(partition, delta, inverse=inverse, index=index)
            assert partition.is_complete()
            assert partition.is_covering(), f"round {round_}: partition lost covering"
            assert_fragments_are_induced(partition)

    def test_insert_churn_refreshes_fragment_indexes_without_rebuild(self):
        graph, _coordinator, partition = make_partitioned()
        nodes = sorted(graph.nodes(), key=str)
        label = sorted({l for _, _, l in graph.edges()})[0]
        inserts = []
        for offset in range(0, 12, 3):
            source, target = nodes[offset], nodes[-1 - offset]
            if source != target and not graph.has_edge(source, target, label):
                inserts.append((source, target, label))
        delta = GraphDelta.build(edge_inserts=inserts)
        inverse = apply_delta(graph, delta)
        index = GraphIndex.for_graph(graph)
        before = refresh_rebuild_count()
        updates = apply_delta_to_partition(
            partition, delta, inverse=inverse, index=index
        )
        assert refresh_rebuild_count() == before
        assert updates, "edge churn inside fragments must produce updates"
        for update in updates:
            assert update.refresh_ok
            assert update.graph.version == update.old_version + 1

    def test_order_permuting_delete_is_flagged_not_chained(self):
        """Deleting a label's first-occurrence edge permutes the interning
        order, so the fragment refresh legitimately falls back to a rebuild —
        the update must then carry ``refresh_ok=False`` (the executor re-ships
        instead of chaining the delta to pool workers)."""
        graph, _coordinator, partition = make_partitioned()
        first_label_edge = next(iter(graph.edges()))
        delta = GraphDelta.build(edge_deletes=[first_label_edge])
        inverse = apply_delta(graph, delta)
        index = GraphIndex.for_graph(graph)
        before = refresh_rebuild_count()
        updates = apply_delta_to_partition(
            partition, delta, inverse=inverse, index=index
        )
        assert partition.is_covering() and partition.is_complete()
        if refresh_rebuild_count() > before:
            assert any(not update.refresh_ok for update in updates)

    def test_node_insert_is_adopted_by_a_neighbouring_fragment(self):
        graph, _coordinator, partition = make_partitioned()
        anchor = next(iter(partition.fragments[0].owned_nodes))
        delta = GraphDelta.build(
            node_inserts=[("newbie", "person")],
            edge_inserts=[("newbie", anchor, "follow")],
        )
        inverse = apply_delta(graph, delta)
        apply_delta_to_partition(
            partition, delta, inverse=inverse, index=GraphIndex.for_graph(graph)
        )
        assert partition.owner_of("newbie") is not None
        assert partition.is_complete()
        assert partition.is_covering()
        assert_fragments_are_induced(partition)

    def test_node_delete_drops_ownership_everywhere(self):
        graph, _coordinator, partition = make_partitioned()
        victim = next(iter(partition.fragments[0].owned_nodes))
        delta = GraphDelta.build(node_deletes=[victim])
        inverse = apply_delta(graph, delta)
        apply_delta_to_partition(
            partition, delta, inverse=inverse, index=GraphIndex.for_graph(graph)
        )
        assert partition.owner_of(victim) is None
        for fragment in partition.fragments:
            assert victim not in fragment.owned_nodes
            assert victim not in fragment.node_set or victim in fragment.node_set - {
                victim
            }  # removed from materialised graphs via the sub-delta
        assert partition.is_complete()
        assert partition.is_covering()
        assert_fragments_are_induced(partition)

    def test_node_delete_without_inverse_is_rejected(self):
        graph, _coordinator, partition = make_partitioned()
        victim = next(iter(partition.fragments[0].owned_nodes))
        delta = GraphDelta.build(node_deletes=[victim])
        apply_delta(graph, delta)
        with pytest.raises(DeltaError):
            apply_delta_to_partition(partition, delta)

    def test_attribute_only_delta_is_a_noop(self):
        graph, _coordinator, partition = make_partitioned()
        node = next(iter(partition.fragments[0].owned_nodes))
        delta = GraphDelta.build(attr_sets=[(node, "k", 1)])
        apply_delta(graph, delta)
        assert apply_delta_to_partition(partition, delta) == []


class TestCoordinatorDelta:
    def test_apply_delta_preserves_partition_and_answers(self):
        graph, coordinator, partition = make_partitioned()
        pattern = build_q3(p=2)
        before = set(coordinator.evaluate_answer(pattern, graph))
        assert before == set(QMatch().evaluate_answer(pattern, graph))

        delta = churn_delta(graph, seed=3)
        inverse = apply_delta(graph, delta)
        coordinator.apply_delta(graph, delta, inverse)
        # No re-partition: the cached partition object survived, re-stamped.
        assert coordinator.partition(graph) is partition
        after = set(coordinator.evaluate_answer(pattern, graph))
        assert after == set(QMatch().evaluate_answer(pattern, graph))

    def test_apply_delta_with_stale_partition_drops_it(self):
        graph, coordinator, partition = make_partitioned()
        first = churn_delta(graph, seed=1)
        apply_delta(graph, first)  # partition now one batch behind…
        second = churn_delta(graph, seed=2)
        inverse = apply_delta(graph, second)  # …and now two: must drop
        assert coordinator.apply_delta(graph, second, inverse) == []
        rebuilt = coordinator.partition(graph)
        assert rebuilt is not partition
        assert rebuilt.is_covering()

    def test_apply_delta_for_unknown_graph_is_safe(self):
        _graph, coordinator, _partition = make_partitioned()
        other = small_world_social_graph(20, 40, seed=99)
        delta = churn_delta(other, seed=0)
        inverse = apply_delta(other, delta)
        assert coordinator.apply_delta(other, delta, inverse) == []
