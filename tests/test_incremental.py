"""Tests for IncQMatch: correctness, affected-area accounting, optimality."""

from __future__ import annotations

import pytest

from repro.matching import QMatch, dmatch, inc_qmatch
from repro.utils import WorkCounter

from fixtures import build_q3


def run_incremental(pattern, graph):
    """Helper: evaluate Π(Q), then run IncQMatch for the single negated edge."""
    positive = pattern.pi()
    counter = WorkCounter()
    cached = dmatch(positive, graph, counter=counter)
    negated_edge, positified_pi = pattern.positified_pi_patterns()[0]
    answer, stats = inc_qmatch(
        pattern, negated_edge, positified_pi, graph, cached, counter=counter
    )
    return cached, answer, stats


class TestCorrectness:
    def test_matches_from_scratch_evaluation(self, paper_g1):
        pattern = build_q3(p=2)
        cached, incremental_answer, _ = run_incremental(pattern, paper_g1)
        scratch = dmatch(pattern.positified_pi_patterns()[0][1], paper_g1)
        # Both must agree on the matches inside the cached positive answer;
        # the incremental run is allowed to skip focus candidates that were
        # not positive matches, because they cannot be in the final answer.
        assert incremental_answer == set(scratch.answer) & cached.answer

    def test_example7_result(self, paper_g1, pattern_q3):
        """Example 7: Π(Q3 +(xo,z2))(xo, G1) = {x3}."""
        _, answer, stats = run_incremental(pattern_q3, paper_g1)
        assert answer == {"x3"}
        assert "x2" not in answer

    def test_empty_positive_answer_short_circuits(self, paper_g1):
        pattern = build_q3(p=4)  # nobody follows 4 recommenders
        cached, answer, stats = run_incremental(pattern, paper_g1)
        assert cached.answer == set()
        assert answer == set()
        assert stats.verifications == 0

    def test_dataset_equivalence(self, small_pokec, dataset_q3):
        incremental = QMatch(use_incremental=True).evaluate(dataset_q3, small_pokec)
        scratch = QMatch(use_incremental=False).evaluate(dataset_q3, small_pokec)
        assert incremental.answer == scratch.answer
        assert incremental.positive_answer == scratch.positive_answer


class TestAffectedAreaAccounting:
    def test_aff_contains_cached_matches(self, paper_g1, pattern_q3):
        _, _, stats = run_incremental(pattern_q3, paper_g1)
        assert {"x2", "x3"} <= stats.affected_area

    def test_optimality_verifications_bounded_by_aff(self, paper_g1, pattern_q3):
        """Proposition 6: at most |AFF| verifications are performed."""
        _, _, stats = run_incremental(pattern_q3, paper_g1)
        assert stats.verifications <= stats.aff_size

    def test_optimality_on_dataset(self, small_pokec, dataset_q3):
        result = QMatch(use_incremental=True).evaluate(dataset_q3, small_pokec)
        for stats in result.incremental:
            assert stats.verifications <= max(stats.aff_size, 1)

    def test_incremental_reuses_cached_candidates(self, paper_g1, pattern_q3):
        _, _, stats = run_incremental(pattern_q3, paper_g1)
        assert stats.reused_candidates > 0

    def test_incremental_verifies_fewer_candidates_than_scratch(self, small_pokec, dataset_q3):
        """The point of IncQMatch: only cached positive matches are re-verified."""
        incremental = QMatch(use_incremental=True).evaluate(dataset_q3, small_pokec)
        scratch = QMatch(use_incremental=False).evaluate(dataset_q3, small_pokec)
        assert incremental.counter.verifications <= scratch.counter.verifications

    def test_removed_set_reported(self, paper_g1, pattern_q3):
        result = QMatch().evaluate(pattern_q3, paper_g1)
        stats = result.incremental[0]
        assert stats.removed == {"x3"}


class TestMultipleNegatedEdges:
    @pytest.fixture
    def two_negation_pattern(self):
        from repro.patterns import PatternBuilder

        return (
            PatternBuilder("Q5-like")
            .focus("xo", "person")
            .node("prof", "prof")
            .node("uk", "UK")
            .node("z", "person")
            .node("phd", "PhD")
            .edge("xo", "prof", "is_a")
            .edge("xo", "uk", "in", negated=True)
            .edge("xo", "z", "advisor")
            .edge("z", "prof", "is_a")
            .edge("z", "phd", "is_a", negated=True)
            .build()
        )

    def test_each_negated_edge_processed(self, paper_g2, two_negation_pattern):
        result = QMatch().evaluate(two_negation_pattern, paper_g2)
        # Every professor in G2 is in the UK, so the first negation empties
        # the answer; both negated edges still yield stats entries unless the
        # answer empties early.
        assert result.answer == set()
        assert 1 <= len(result.incremental) <= 2

    def test_set_difference_semantics(self, paper_g2, two_negation_pattern):
        """Q(xo,G) = Π(Q) minus the union of the positified answers."""
        from repro.matching import EnumMatcher

        assert (
            QMatch().evaluate_answer(two_negation_pattern, paper_g2)
            == EnumMatcher().evaluate_answer(two_negation_pattern, paper_g2)
        )

    def test_non_uk_professor_matches(self, paper_g2, two_negation_pattern):
        graph = paper_g2.copy()
        # Move x6 out of the UK and strip the PhD from its students.
        graph.remove_edge("x6", "uk", "in")
        assert QMatch().evaluate_answer(two_negation_pattern, graph) == {"x6"}
