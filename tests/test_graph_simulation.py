"""Tests for graph simulation and its soundness as an isomorphism pre-filter."""

from __future__ import annotations

from repro.graph import PropertyGraph, dual_simulation_relation, simulation_relation
from repro.matching import find_isomorphisms
from repro.patterns import PatternBuilder


def two_hop_pattern():
    """person -follow-> person -recom-> product."""
    return (
        PatternBuilder("P")
        .focus("x", "person")
        .node("y", "person")
        .node("p", "product")
        .edge("x", "y", "follow")
        .edge("y", "p", "recom")
        .build()
    )


def sample_graph() -> PropertyGraph:
    graph = PropertyGraph("sim")
    for person in ("a", "b", "c", "d"):
        graph.add_node(person, "person")
    graph.add_node("prod", "product")
    graph.add_edge("a", "b", "follow")
    graph.add_edge("b", "prod", "recom")
    graph.add_edge("c", "d", "follow")  # d does not recommend anything
    return graph


class TestSimulation:
    def test_forward_simulation_prunes_unsupported_nodes(self):
        pattern = two_hop_pattern()
        graph = sample_graph()
        relation = simulation_relation(pattern.graph, graph)
        # 'a' simulates x (its child b recommends); 'c' does not (d has no recom).
        assert relation["x"] == {"a"}
        assert relation["y"] == {"b"}
        assert relation["p"] == {"prod"}

    def test_dual_simulation_requires_parent_support(self):
        pattern = two_hop_pattern()
        graph = sample_graph()
        # Add a recommender with no follower: forward simulation keeps it as a
        # candidate for y, dual simulation removes it.
        graph.add_node("lonely", "person")
        graph.add_edge("lonely", "prod", "recom")
        forward = simulation_relation(pattern.graph, graph)
        dual = dual_simulation_relation(pattern.graph, graph)
        assert "lonely" in forward["y"]
        assert "lonely" not in dual["y"]

    def test_empty_candidate_set_when_label_absent(self):
        pattern = two_hop_pattern()
        graph = PropertyGraph()
        graph.add_node("a", "person")
        relation = simulation_relation(pattern.graph, graph)
        assert relation["p"] == set()
        assert relation["x"] == set()

    def test_simulation_contains_every_isomorphic_image(self, small_pokec):
        """Soundness (Lemma 13): every isomorphism binding is inside the relation."""
        pattern = two_hop_pattern()
        relation = dual_simulation_relation(pattern.graph, small_pokec)
        count = 0
        for assignment in find_isomorphisms(pattern, small_pokec, limit=50):
            count += 1
            for pattern_node, graph_node in assignment.items():
                assert graph_node in relation[pattern_node]
        assert count > 0, "the fixture graph should contain follow/recom chains"

    def test_simulation_on_cycle_pattern(self, triangle_graph):
        pattern = (
            PatternBuilder("cycle")
            .focus("u1", "N")
            .node("u2", "N")
            .node("u3", "N")
            .edge("u1", "u2", "e")
            .edge("u2", "u3", "e")
            .edge("u3", "u1", "e")
            .build()
        )
        relation = dual_simulation_relation(pattern.graph, triangle_graph)
        assert relation["u1"] == {"a", "b", "c"}
        assert relation["u2"] == {"a", "b", "c"}
