"""Tests for QGARs, GPARs and the rule-mining procedure (paper Section 6)."""

from __future__ import annotations

import pytest

from repro.matching import QMatch
from repro.patterns import CountingQuantifier, PatternBuilder
from repro.rules import (
    GPAR,
    QGAR,
    MiningConfig,
    dgar_match,
    extend_to_qgar,
    gar_match,
    is_gpar,
    mine_gpars,
    mine_qgars,
)
from repro.utils import RuleError


def antecedent_follow_recommenders(p: int = 2):
    return (
        PatternBuilder("A")
        .focus("xo", "person")
        .node("z", "person")
        .node("redmi", "Redmi_2A")
        .edge("xo", "z", "follow", at_least=p)
        .edge("z", "redmi", "recom")
        .build()
    )


def consequent_buy():
    return (
        PatternBuilder("C")
        .focus("xo", "person")
        .node("phone", "Redmi_2A")
        .edge("xo", "phone", "buy")
        .build()
    )


@pytest.fixture
def g1_with_purchases(paper_g1):
    """G1 plus purchase edges: x2 bought the phone, x3 did not (but could have)."""
    graph = paper_g1.copy()
    graph.add_edge("x2", "redmi", "buy")
    graph.add_edge("v0", "redmi", "buy")  # a buyer outside the antecedent matches
    return graph


class TestQgarModel:
    def test_valid_rule_construction(self):
        rule = QGAR(antecedent_follow_recommenders(), consequent_buy(), name="R")
        assert rule.focus == "xo"
        assert "R" in repr(rule)

    def test_antecedent_and_consequent_must_share_focus(self):
        bad_consequent = (
            PatternBuilder()
            .focus("other", "person")
            .node("p", "Redmi_2A")
            .edge("other", "p", "buy")
            .build()
        )
        with pytest.raises(RuleError):
            QGAR(antecedent_follow_recommenders(), bad_consequent)

    def test_focus_label_must_agree(self):
        bad_consequent = (
            PatternBuilder()
            .focus("xo", "robot")
            .node("p", "Redmi_2A")
            .edge("xo", "p", "buy")
            .build()
        )
        with pytest.raises(RuleError):
            QGAR(antecedent_follow_recommenders(), bad_consequent)

    def test_patterns_must_be_nonempty(self):
        empty = PatternBuilder().focus("xo", "person").peek()
        with pytest.raises(RuleError):
            QGAR(empty, consequent_buy())

    def test_patterns_must_not_share_edges(self):
        duplicated = (
            PatternBuilder()
            .focus("xo", "person")
            .node("z", "person")
            .node("redmi", "Redmi_2A")
            .edge("xo", "z", "follow", at_least=2)
            .edge("z", "redmi", "recom")
            .build()
        )
        with pytest.raises(RuleError):
            QGAR(antecedent_follow_recommenders(), duplicated)

    def test_combined_pattern_unions_both_sides(self):
        rule = QGAR(antecedent_follow_recommenders(), consequent_buy())
        combined = rule.combined_pattern()
        assert combined.num_edges == 3
        assert combined.focus == "xo"

    def test_combined_pattern_label_conflict(self):
        conflicting = (
            PatternBuilder()
            .focus("xo", "person")
            .node("z", "product")  # 'z' is a person in the antecedent
            .edge("xo", "z", "buy")
            .build()
        )
        rule = QGAR(antecedent_follow_recommenders(), conflicting)
        with pytest.raises(RuleError):
            rule.combined_pattern()

    def test_describe(self):
        rule = QGAR(antecedent_follow_recommenders(), consequent_buy(), name="R9")
        assert "R9" in rule.describe()


class TestSupportAndConfidence:
    def test_matches_are_the_intersection(self, g1_with_purchases):
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        evaluation = rule.evaluate(g1_with_purchases)
        assert evaluation.antecedent_matches == {"x2", "x3"}
        assert evaluation.consequent_matches == {"x2", "v0"}
        assert evaluation.matches == {"x2"}
        assert evaluation.support == 1

    def test_lcwa_confidence(self, g1_with_purchases):
        """Only x2 has any 'buy' edge among antecedent matches, so conf = 1/1."""
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        evaluation = rule.evaluate(g1_with_purchases)
        assert evaluation.negative_candidates == {"x2", "v0"}
        assert evaluation.confidence == pytest.approx(1.0)

    def test_confidence_drops_when_negatives_exist(self, g1_with_purchases):
        # Give x3 a buy edge to a *different* product: under LCWA x3 now counts
        # as a true negative for the rule, halving the confidence.
        g1_with_purchases.add_node("otherphone", "product")
        g1_with_purchases.add_edge("x3", "otherphone", "buy")
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        evaluation = rule.evaluate(g1_with_purchases)
        assert evaluation.confidence == pytest.approx(0.5)

    def test_zero_confidence_when_no_negative_pool(self, paper_g1):
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        evaluation = rule.evaluate(paper_g1)  # nobody has a buy edge at all
        assert evaluation.support == 0
        assert evaluation.confidence == 0.0

    def test_support_anti_monotonicity(self, g1_with_purchases):
        """Lemma 10: increasing a positive threshold never increases support."""
        weaker = QGAR(antecedent_follow_recommenders(p=1), consequent_buy())
        stronger = QGAR(antecedent_follow_recommenders(p=3), consequent_buy())
        assert stronger.evaluate(g1_with_purchases).support <= weaker.evaluate(
            g1_with_purchases
        ).support

    def test_support_anti_monotonicity_on_extension(self, g1_with_purchases):
        base = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        extended_antecedent = antecedent_follow_recommenders(p=2)
        extended_antecedent.add_node("club", "music_club")
        extended_antecedent.add_edge("xo", "club", "in")
        extended = QGAR(extended_antecedent, consequent_buy())
        assert extended.evaluate(g1_with_purchases).support <= base.evaluate(
            g1_with_purchases
        ).support


class TestEntityIdentification:
    def test_gar_match_respects_threshold(self, g1_with_purchases):
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        assert gar_match(rule, g1_with_purchases, eta=0.9) == {"x2"}
        assert gar_match(rule, g1_with_purchases, eta=1.01) == set()

    def test_dgar_match_agrees_with_sequential(self, g1_with_purchases):
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        assert dgar_match(rule, g1_with_purchases, eta=0.9, num_workers=2) == gar_match(
            rule, g1_with_purchases, eta=0.9
        )

    def test_identify_uses_engine(self, g1_with_purchases):
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        assert rule.identify(g1_with_purchases, eta=0.5, engine=QMatch()) == {"x2"}

    def test_dataset_rule_r1(self, small_pokec, dataset_rule_r1):
        evaluation = dataset_rule_r1.evaluate(small_pokec)
        assert evaluation.support > 0
        assert 0.0 < evaluation.confidence <= 1.0


class TestGpar:
    def test_gpar_requires_conventional_antecedent(self):
        with pytest.raises(RuleError):
            GPAR(antecedent_follow_recommenders(p=2), "buy", "Redmi_2A")

    def test_gpar_as_qgar(self):
        antecedent = (
            PatternBuilder()
            .focus("xo", "person")
            .node("z", "person")
            .edge("xo", "z", "follow")
            .build()
        )
        gpar = GPAR(antecedent, consequent_label="buy", consequent_target_label="Redmi_2A")
        rule = gpar.as_qgar()
        assert is_gpar(rule)
        assert rule.consequent.num_edges == 1

    def test_is_gpar_rejects_quantified_rules(self):
        rule = QGAR(antecedent_follow_recommenders(p=2), consequent_buy())
        assert not is_gpar(rule)

    def test_consequent_target_must_differ_from_focus(self):
        antecedent = (
            PatternBuilder()
            .focus("xo", "person")
            .node("z", "person")
            .edge("xo", "z", "follow")
            .build()
        )
        gpar = GPAR(antecedent, "buy", "product", consequent_target="xo")
        with pytest.raises(RuleError):
            gpar.consequent_pattern()


class TestMining:
    def test_mine_gpars_returns_interesting_rules(self, small_pokec):
        config = MiningConfig(focus_label="person", min_support=2, min_confidence=0.3,
                              max_rules=5)
        rules = mine_gpars(small_pokec, config=config, seed=1)
        assert rules, "the planted cohorts should yield at least one rule"
        for record in rules:
            assert record.support >= config.min_support
            assert record.confidence >= config.min_confidence
            assert is_gpar(record.rule)
        confidences = [record.confidence for record in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_extend_to_qgar_keeps_confidence_above_eta(self, small_pokec):
        config = MiningConfig(focus_label="person", min_support=2, min_confidence=0.3)
        seeds = mine_gpars(small_pokec, config=config, seed=1)
        seed_rule = seeds[0]
        extended = extend_to_qgar(seed_rule.rule, small_pokec, eta=0.3, config=config)
        assert extended.support > 0
        assert extended.confidence >= 0.3

    def test_mine_qgars_end_to_end(self, small_pokec):
        config = MiningConfig(focus_label="person", min_support=2, min_confidence=0.3,
                              max_rules=3, max_extension_rounds=2)
        rules = mine_qgars(small_pokec, eta=0.3, config=config, seed=1)
        assert rules
        assert all(record.confidence >= 0.3 for record in rules)

    def test_mining_empty_graph(self):
        from repro.graph import PropertyGraph

        assert mine_gpars(PropertyGraph()) == []
