"""Span tracing (:mod:`repro.obs.trace`) — incl. the cross-process contract.

The headline acceptance test: one query served through ``QueryService.submit``
on the **process** backend yields a single connected span tree — dispatcher
batch → dispatch → pool round → per-fragment worker spans — where the worker
spans were recorded in pool worker processes (their ``pid`` differs) and
shipped back piggybacked on the fragment results.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import benchmark_graph, paper_pattern
from repro.obs.trace import (
    TraceContext,
    active_tracing,
    build_span_tree,
    current_context,
    disable_tracing,
    format_span_tree,
    get_tracer,
    span,
    tracing_enabled,
)
from repro.parallel import PQMatch
from repro.service import QueryService


class TestSpans:
    def test_disabled_by_default_and_shared_null_span(self):
        assert not tracing_enabled()
        assert span("a") is span("b")  # one shared no-op context manager
        with span("ignored"):
            pass
        assert get_tracer().records() == ()

    def test_nesting_parent_child(self):
        with active_tracing() as tracer:
            with span("outer", kind="test"):
                with span("inner"):
                    pass
                with span("sibling"):
                    pass
            records = tracer.records()
        by_name = {record.name: record for record in records}
        outer = by_name["outer"]
        assert outer.parent_id is None
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["sibling"].parent_id == outer.span_id
        assert {record.trace_id for record in records} == {outer.trace_id}
        assert outer.tag("kind") == "test"
        assert outer.wall >= by_name["inner"].wall >= 0.0

    def test_current_context_reflects_innermost_span(self):
        assert current_context() == TraceContext("", None, False)
        with active_tracing():
            with span("outer"):
                context = current_context()
                assert context.enabled
                assert context.parent_id is not None

    def test_adopt_collects_and_removes_block_records(self):
        with active_tracing() as tracer:
            with span("coordinator"):
                context = current_context()
            with tracer.adopt(context) as collected:
                with span("adopted"):
                    pass
            # the adopted span was removed from the local buffer (it ships
            # to the context's owner) and parented under the remote span
            assert [record.name for record in collected] == ["adopted"]
            assert collected[0].parent_id == context.parent_id
            assert all(r.name != "adopted" for r in tracer.records())
            tracer.ingest(collected)
            roots = build_span_tree(tracer.records())
            assert len(roots) == 1
            assert [child.record.name for child in roots[0].children] == ["adopted"]

    def test_adopt_disabled_context_is_inert(self):
        tracer = get_tracer()
        with tracer.adopt(TraceContext("", None, False)) as collected:
            with span("never"):
                pass
        assert collected == []
        assert not tracing_enabled()

    def test_format_tree_marks_tags_and_is_deterministic_without_times(self):
        with active_tracing() as tracer:
            with span("root", graph="g"):
                with span("leaf"):
                    pass
            rendered = format_span_tree(tracer.records(), show_times=False)
        assert rendered == "root [graph=g]\n  leaf"

    def test_active_tracing_restores_and_drains(self):
        with active_tracing():
            with span("scoped"):
                pass
        assert not tracing_enabled()
        assert get_tracer().records() == ()


@pytest.fixture(scope="module")
def traced_graph():
    return benchmark_graph("pokec", scale=0.5, seed=3)


class TestCrossProcess:
    def test_served_query_yields_one_connected_tree_with_remote_spans(
        self, traced_graph
    ):
        """ACCEPTANCE: QueryService.submit on the process backend produces a

        single span tree whose worker spans crossed the process boundary."""
        pattern = paper_pattern("Q1")
        coordinator = PQMatch(num_workers=2, d=2, executor="process")
        with active_tracing() as tracer:
            with QueryService(traced_graph, coordinator) as service:
                result = service.submit(pattern).result(timeout=120)
            records = tracer.records()
        assert not result.cached

        # one batch → one trace → one connected tree
        assert len({record.trace_id for record in records}) == 1
        roots = build_span_tree(records)
        assert len(roots) == 1
        names = {record.name for record in records}
        assert {"service.batch", "service.dispatch", "pool.round"} <= names

        # ≥1 per-fragment worker span recorded in another process and
        # shipped back across the boundary
        remote = [
            record
            for record in records
            if record.name == "worker.fragment" and record.pid != os.getpid()
        ]
        assert remote
        by_id = {record.span_id: record for record in records}
        round_span = next(r for r in records if r.name == "pool.round")
        for record in remote:
            assert by_id[record.parent_id] is round_span

        # the rendering marks the boundary crossing
        assert "(remote)" in format_span_tree(records, show_times=False)

    def test_untraced_process_round_ships_no_spans(self, traced_graph):
        """With tracing off the propagation triple is disabled and results

        carry no span payload — the piggyback is free when unused."""
        disable_tracing()
        pattern = paper_pattern("Q1")
        coordinator = PQMatch(num_workers=2, d=2, executor="process")
        with QueryService(traced_graph, coordinator) as service:
            service.evaluate(pattern)
        assert get_tracer().records() == ()
