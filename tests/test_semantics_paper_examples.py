"""Ground-truth semantics tests: the worked examples of the paper.

Examples 3, 4, 6 and 7 of the paper state the answers of Q2, Π(Q3), Q3 and Q4
on the graphs G1/G2 of Figure 2 explicitly.  These tests pin the semantics of
every engine (the Enum reference, QMatch with and without its optimisations,
and the parallel PQMatch) to those published answers.
"""

from __future__ import annotations

import pytest

from repro.matching import DMatchOptions, EnumMatcher, QMatch
from repro.parallel import PQMatch
from repro.patterns import PatternBuilder

from fixtures import build_q3, build_q4


ENGINES = [
    pytest.param(lambda: EnumMatcher(), id="Enum"),
    pytest.param(lambda: QMatch(), id="QMatch"),
    pytest.param(lambda: QMatch(use_incremental=False), id="QMatchN"),
    pytest.param(
        lambda: QMatch(options=DMatchOptions(use_simulation=False, use_potential=False,
                                             early_exit=False, use_locality=True)),
        id="QMatch-no-optimisations",
    ),
    pytest.param(lambda: PQMatch(num_workers=3, d=2, seed=1), id="PQMatch"),
]


class TestExample3:
    """Q2(xo, G1) = {x1, x2}: all their followees recommend the phone."""

    @pytest.mark.parametrize("engine_factory", ENGINES)
    def test_q2_answer(self, engine_factory, paper_g1, pattern_q2):
        engine = engine_factory()
        assert engine.evaluate_answer(pattern_q2, paper_g1) == {"x1", "x2"}

    def test_x3_matches_stratified_but_not_quantified(self, paper_g1, pattern_q2):
        """x3 satisfies the topology of Q2π but fails the 100% quantifier."""
        from repro.matching import exists_isomorphism

        assert exists_isomorphism(pattern_q2.stratified(), paper_g1, anchor={"xo": "x3"})
        assert "x3" not in EnumMatcher().evaluate_answer(pattern_q2, paper_g1)


class TestExample4:
    """Π(Q3)(xo, G1) = {x2, x3} and Q3(xo, G1) = {x2} for p = 2."""

    @pytest.mark.parametrize("engine_factory", ENGINES)
    def test_q3_answer(self, engine_factory, paper_g1, pattern_q3):
        engine = engine_factory()
        assert engine.evaluate_answer(pattern_q3, paper_g1) == {"x2"}

    def test_positive_part_answer(self, paper_g1, pattern_q3):
        result = QMatch().evaluate(pattern_q3, paper_g1)
        assert result.positive_answer == {"x2", "x3"}
        assert result.answer == {"x2"}

    def test_x1_fails_the_numeric_aggregate(self, paper_g1):
        """x1 follows a single recommender, so it already fails Π(Q3) for p = 2."""
        result = QMatch().evaluate(build_q3(p=2), paper_g1)
        assert "x1" not in result.positive_answer

    def test_with_p_equal_one_x1_matches_positive_part(self, paper_g1):
        result = QMatch().evaluate(build_q3(p=1), paper_g1)
        assert result.positive_answer == {"x1", "x2", "x3"}
        assert result.answer == {"x1", "x2"}

    @pytest.mark.parametrize("engine_factory", ENGINES)
    def test_q4_answer_on_g2(self, engine_factory, paper_g2, pattern_q4):
        """Q4(xo, G2) = {x5, x6}: x4 is excluded by the negated PhD edge."""
        engine = engine_factory()
        assert engine.evaluate_answer(pattern_q4, paper_g2) == {"x5", "x6"}

    def test_q4_with_p_three_is_empty(self, paper_g2):
        """No professor in G2 advised three matching students."""
        assert QMatch().evaluate_answer(build_q4(p=3), paper_g2) == set()


class TestExample10:
    """The appendix example: changing UK to US empties the answer."""

    def test_relabelled_g2_has_no_match(self, paper_g2, pattern_q4):
        relabelled = paper_g2.copy()
        relabelled.add_node("uk", "US")  # re-label the UK node
        assert QMatch().evaluate_answer(pattern_q4, relabelled) == set()
        assert EnumMatcher().evaluate_answer(pattern_q4, relabelled) == set()


class TestRatioSemantics:
    """The 80% quantifier of Q1, on a graph engineered around the threshold."""

    def make_pattern(self, percent: float):
        return (
            PatternBuilder("Q1-like")
            .focus("xo", "person")
            .node("z", "person")
            .node("y", "album")
            .edge("xo", "z", "follow", at_least_percent=percent)
            .edge("z", "y", "like")
            .build()
        )

    @pytest.fixture
    def ratio_graph(self, paper_g1):
        """u80 has 4/5 followees liking the album; u60 only 3/5."""
        from repro.graph import PropertyGraph

        graph = PropertyGraph("ratio")
        graph.add_node("album", "album")
        for user, liking in (("u80", 4), ("u60", 3)):
            graph.add_node(user, "person")
            for index in range(5):
                friend = f"{user}_f{index}"
                graph.add_node(friend, "person")
                graph.add_edge(user, friend, "follow")
                if index < liking:
                    graph.add_edge(friend, "album", "like")
        return graph

    def test_eighty_percent_threshold(self, ratio_graph):
        answer = QMatch().evaluate_answer(self.make_pattern(80.0), ratio_graph)
        assert answer == {"u80"}

    def test_sixty_percent_threshold(self, ratio_graph):
        answer = QMatch().evaluate_answer(self.make_pattern(60.0), ratio_graph)
        assert answer == {"u80", "u60"}

    def test_engines_agree_on_ratios(self, ratio_graph):
        pattern = self.make_pattern(80.0)
        assert EnumMatcher().evaluate_answer(pattern, ratio_graph) == QMatch().evaluate_answer(
            pattern, ratio_graph
        )
