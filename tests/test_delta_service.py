"""QueryService under graph updates: apply_delta, migration, subscriptions.

The serving contract across a mutation: every answer served after
``apply_delta`` equals a cold evaluation of the post-delta graph, cache
entries whose affected area cannot touch them carry across the version for
free, standing queries are maintained (not recomputed) and notified of their
diff, and a concurrent ``submit`` racing the update observes either the pre-
or the post-delta graph — never a mix.
"""

from __future__ import annotations

import threading

import pytest

from repro.delta import GraphDelta, apply_delta
from repro.graph import PropertyGraph
from repro.matching import QMatch
from repro.parallel import PQMatch
from repro.patterns import PatternBuilder
from repro.service import QueryService
from repro.utils.errors import ReproError

from fixtures import build_paper_g1, build_q2, build_q3


@pytest.fixture
def service_g1():
    graph = build_paper_g1()
    with QueryService(graph, PQMatch(num_workers=2, d=2), name="delta-svc") as service:
        yield graph, service


def two_region_graph():
    """A person chain with a product attached far from one end.

    Churn near ``p0`` stays > 1 hop away from the only product node, so a
    radius-1 product-focused pattern is provably unaffected — the selective
    migration case.
    """
    graph = PropertyGraph("two-region")
    chain = [f"p{i}" for i in range(6)]
    for person in chain:
        graph.add_node(person, "person")
    for left, right in zip(chain, chain[1:]):
        graph.add_edge(left, right, "follow")
    graph.add_node("gadget", "product")
    graph.add_edge("p5", "gadget", "recom")
    return graph


def product_pattern():
    return (
        PatternBuilder("recommended-product")
        .focus("po", "product")
        .node("z", "person")
        .edge("z", "po", "recom")
        .build()
    )


class TestApplyDelta:
    def test_served_answers_track_the_mutation(self, service_g1):
        graph, service = service_g1
        pattern = build_q3(p=2)
        assert service.evaluate(pattern).answer == {"x2"}
        service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
        assert service.evaluate(pattern).answer == {"x1", "x2"}
        assert service.evaluate(pattern).answer == frozenset(
            QMatch().evaluate_answer(pattern, graph)
        )
        assert service.stats.deltas_applied == 1

    def test_inverse_rolls_the_service_back(self, service_g1):
        graph, service = service_g1
        pattern = build_q3(p=2)
        before = service.evaluate(pattern).answer
        inverse = service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
        assert service.evaluate(pattern).answer != before
        service.apply_delta(inverse)
        assert service.evaluate(pattern).answer == before

    def test_attribute_only_delta_keeps_cache_warm(self, service_g1):
        _graph, service = service_g1
        pattern = build_q2()
        service.evaluate(pattern)
        service.apply_delta(GraphDelta.build(attr_sets=[("x1", "age", 30)]))
        result = service.evaluate(pattern)
        assert result.cached
        assert service.stats.deltas_applied == 0  # attribute-only: no delta work

    def test_closed_service_rejects_updates(self):
        graph = build_paper_g1()
        service = QueryService(graph, PQMatch(num_workers=2, d=2))
        service.close()
        with pytest.raises(ReproError):
            service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))


class TestCacheMigration:
    def test_unaffected_entry_is_carried_across_the_version(self):
        graph = two_region_graph()
        with QueryService(graph, PQMatch(num_workers=2, d=1)) as service:
            pattern = product_pattern()
            first = service.evaluate(pattern)
            assert not first.cached
            computed_before = service.stats.computed
            # Churn at the far end of the chain: AFF (radius 1) is all-person.
            service.apply_delta(GraphDelta.insert_edge("p0", "p2", "follow"))
            assert service.stats.delta_cache_carried == 1
            after = service.evaluate(pattern)
            assert after.cached, "carried entry must be a hit at the new version"
            assert after.answer == first.answer
            assert service.stats.computed == computed_before

    def test_deleted_focus_match_is_never_carried(self):
        """Regression: deleted nodes are absent from AFF, so the focus-label
        guard alone cannot see a cached match the batch itself deleted — the
        migration must inspect the answer and drop the entry."""
        graph = two_region_graph()
        with QueryService(graph, PQMatch(num_workers=2, d=1)) as service:
            pattern = product_pattern()
            assert service.evaluate(pattern).answer == {"gadget"}
            # Delete the only product node: its neighbours (all persons) are
            # the affected area, so the label guard would happily carry.
            service.apply_delta(GraphDelta.build(node_deletes=["gadget"]))
            result = service.evaluate(pattern)
            assert result.answer == frozenset()
            assert result.answer == frozenset(QMatch().evaluate_answer(pattern, graph))

    def test_affected_entry_is_dropped_and_recomputed(self):
        graph = two_region_graph()
        with QueryService(graph, PQMatch(num_workers=2, d=1)) as service:
            pattern = product_pattern()
            assert service.evaluate(pattern).answer == {"gadget"}
            # Churn adjacent to the product: its label is inside AFF — drop.
            service.apply_delta(GraphDelta.delete_edge("p5", "gadget", "recom"))
            assert service.stats.delta_cache_dropped >= 1
            result = service.evaluate(pattern)
            assert not result.cached or result.answer == frozenset()
            assert result.answer == frozenset(QMatch().evaluate_answer(pattern, graph))


class TestSubscriptions:
    def test_standing_query_is_maintained_and_notified(self, service_g1):
        graph, service = service_g1
        pattern = build_q3(p=2)
        seen = []
        subscription = service.subscribe(
            pattern, callback=lambda sub, note: seen.append(note)
        )
        assert subscription.answer == {"x2"}
        service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
        assert subscription.answer == {"x1", "x2"}
        assert subscription.version == graph.version
        assert len(seen) == 1 and seen[0].added == {"x1"} and not seen[0].removed
        assert subscription.notifications == seen
        assert service.stats.delta_subscription_updates == 1

    def test_no_notification_when_the_answer_is_unchanged(self, service_g1):
        _graph, service = service_g1
        subscription = service.subscribe(build_q3(p=2))
        # x3 follows v1: v1 recommends, but x3 still follows the bad-rater v4.
        service.apply_delta(GraphDelta.insert_edge("x3", "v1", "follow"))
        assert subscription.answer == {"x2"}
        assert subscription.notifications == []

    def test_maintained_answer_lands_in_the_cache(self, service_g1):
        _graph, service = service_g1
        pattern = build_q3(p=2)
        service.subscribe(pattern)
        service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
        # The maintenance filed the new answer: the next evaluate is a hit.
        result = service.evaluate(pattern)
        assert result.cached
        assert result.answer == {"x1", "x2"}

    def test_cancelled_subscription_stops_updating(self, service_g1):
        _graph, service = service_g1
        subscription = service.subscribe(build_q3(p=2))
        subscription.cancel()
        subscription.cancel()  # idempotent
        service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
        assert subscription.answer == {"x2"}  # frozen at cancellation
        assert not subscription.active

    def test_node_delete_removes_a_standing_match(self, service_g1):
        graph, service = service_g1
        subscription = service.subscribe(build_q3(p=2))
        assert subscription.answer == {"x2"}
        service.apply_delta(GraphDelta.build(node_deletes=["x2"]))
        assert subscription.answer == frozenset()
        assert subscription.notifications[-1].removed == {"x2"}
        assert subscription.answer == frozenset(
            QMatch().evaluate_answer(build_q3(p=2), graph)
        )


class TestCanonicalizationMemo:
    def test_repeat_object_submissions_skip_canonicalization(self, service_g1):
        _graph, service = service_g1
        pattern = build_q2()
        service.evaluate(pattern)
        assert service.stats.memo_hits == 0
        service.evaluate(pattern)
        service.evaluate(pattern)
        assert service.stats.memo_hits == 2

    def test_equivalent_objects_still_meet_at_the_fingerprint(self, service_g1):
        _graph, service = service_g1
        first = service.evaluate(build_q2())
        second = service.evaluate(build_q2())  # distinct object, same pattern
        assert second.fingerprint == first.fingerprint
        assert second.cached
        assert service.stats.memo_hits == 0  # distinct objects never memo-hit

    def test_memo_hits_keep_the_representative_registry_warm(self):
        """Regression: a memo hit must refresh the fingerprint registry's LRU
        slot — otherwise the hottest (always-memo-hit) patterns are the first
        representatives evicted and silently lose delta carry-forward."""
        graph = build_paper_g1()
        with QueryService(
            graph, PQMatch(num_workers=2, d=2), cache_capacity=2
        ) as service:
            hot = build_q2()
            fingerprint = service.evaluate(hot).fingerprint
            service.evaluate(build_q3(p=2))
            service.evaluate(hot)  # memo hit: must move hot to MRU
            service.evaluate(build_q3(p=3))  # evicts the true LRU instead
            assert fingerprint in service._patterns

    def test_memo_does_not_pin_pattern_objects_beyond_the_registry(self):
        """The memo holds weak keys; only the *bounded* fingerprint registry
        (one representative per fingerprint, for delta-time migration) keeps a
        strong reference — once LRU pressure evicts the fingerprint, the
        pattern object must be collectable."""
        import gc
        import weakref

        graph = build_paper_g1()
        with QueryService(
            graph, PQMatch(num_workers=2, d=2), cache_capacity=1
        ) as service:
            pattern = build_q2()
            service.evaluate(pattern)
            ref = weakref.ref(pattern)
            del pattern
            service.evaluate(build_q3(p=2))  # evicts Q2's registry entry
            gc.collect()
            assert ref() is None, "an evicted pattern stayed pinned"


class TestConcurrentSubmitVsApplyDelta:
    def test_racing_submits_see_pre_or_post_delta_never_a_mix(self):
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        delta = GraphDelta.insert_edge("x1", "v1", "follow")

        pre_graph = build_paper_g1()
        pre = frozenset(QMatch().evaluate_answer(pattern, pre_graph))
        apply_delta(pre_graph, delta)
        post = frozenset(QMatch().evaluate_answer(pattern, pre_graph))
        assert pre != post  # the race is observable

        with QueryService(graph, PQMatch(num_workers=2, d=2)) as service:
            start = threading.Barrier(5)
            futures = []

            def submitter():
                start.wait()
                for _ in range(12):
                    futures.append(service.submit(build_q3(p=2)))

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            for thread in threads:
                thread.start()
            start.wait()
            service.apply_delta(delta)
            for thread in threads:
                thread.join()
            answers = {future.result(timeout=30).answer for future in futures}

        assert answers <= {pre, post}, (
            "a served answer mixed pre- and post-delta state"
        )
        assert post in answers  # the tail of the stream ran after the update
