"""Incremental GraphIndex maintenance: wire-byte identity with a full build.

The contract of :func:`repro.delta.refreshed_index` (also reachable as
``GraphIndex.refreshed``) is singular: after ``apply_delta``, the refreshed
snapshot serialises to **exactly** the bytes a from-scratch
``GraphIndex.build`` of the post-delta graph produces.  Byte identity is the
strongest equivalence the wire format can express — interner orders, CSR
layouts, signatures, degree arrays all included — so one hypothesis property
covers the entire structure.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.delta import GraphDelta, apply_delta
from repro.delta.refresh import refresh_call_count, refresh_rebuild_count
from repro.graph import PropertyGraph
from repro.index import GraphIndex
from repro.index.serialize import to_bytes

from fixtures import build_paper_g1

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

NODE_LABELS = ["person", "product"]
EDGE_LABELS = ["follow", "recom", "like"]


def structural_bytes(index: GraphIndex) -> bytes:
    return to_bytes(index, include_neighborhoods=False, include_compiled_rows=False)


def full_bytes(index: GraphIndex) -> bytes:
    return to_bytes(index, include_neighborhoods=True, include_compiled_rows=True)


def rebuild_fallbacks(body) -> int:
    """How many rebuild fallbacks running *body* triggered."""
    before = refresh_rebuild_count()
    body()
    return refresh_rebuild_count() - before


# ---------------------------------------------------------------------------
# Deterministic cases
# ---------------------------------------------------------------------------


class TestRefreshIncremental:
    def test_edge_churn_is_byte_identical_without_rebuild(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.build(
            edge_inserts=[("x1", "v1", "follow"), ("x2", "v3", "follow")],
            edge_deletes=[("x3", "v4", "follow")],
        )
        apply_delta(graph, delta)

        def body():
            self.refreshed = index.refreshed(delta)

        assert rebuild_fallbacks(body) == 0
        assert structural_bytes(self.refreshed) == structural_bytes(
            GraphIndex.build(graph)
        )

    def test_node_insert_with_known_label_is_incremental(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.build(
            node_inserts=[("n1", "person"), ("n2", "person")],
            edge_inserts=[("n1", "n2", "follow"), ("x1", "n1", "follow")],
        )
        apply_delta(graph, delta)

        def body():
            self.refreshed = index.refreshed(delta)

        assert rebuild_fallbacks(body) == 0
        assert structural_bytes(self.refreshed) == structural_bytes(
            GraphIndex.build(graph)
        )

    def test_new_edge_label_extends_interner_incrementally(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.build(edge_inserts=[("x1", "x2", "blocks")])
        apply_delta(graph, delta)
        refreshed = index.refreshed(delta)
        assert structural_bytes(refreshed) == structural_bytes(GraphIndex.build(graph))
        assert refreshed.edge_labels.get("blocks") >= 0

    def test_derived_structures_are_patched_identically(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        # Materialise the hot derived structures so the refresh must patch them.
        index.neighborhoods()
        index.compiled_rows(False, index.edge_labels.id_of("follow"))
        index.compiled_rows(True, index.edge_labels.id_of("recom"))
        delta = GraphDelta.build(
            node_inserts=[("n", "person")],
            edge_inserts=[("x1", "n", "follow"), ("n", "redmi", "recom")],
            edge_deletes=[("x2", "v1", "follow")],
        )
        apply_delta(graph, delta)
        refreshed = index.refreshed(delta)
        fresh = GraphIndex.build(graph)
        fresh.neighborhoods()
        fresh.compiled_rows(False, fresh.edge_labels.id_of("follow"))
        fresh.compiled_rows(True, fresh.edge_labels.id_of("recom"))
        assert full_bytes(refreshed) == full_bytes(fresh)
        # The refresh patches exactly what was materialised — no more.
        assert refreshed.compiled_row_keys() == index.compiled_row_keys()

    def test_refresh_result_is_cached_on_the_graph(self):
        graph = build_paper_g1()
        index = GraphIndex.for_graph(graph)
        delta = GraphDelta.insert_edge("x1", "v1", "follow")
        apply_delta(graph, delta)
        refreshed = index.refreshed(delta)
        assert GraphIndex.for_graph(graph) is refreshed
        assert not refreshed.is_stale()

    def test_attribute_only_delta_returns_same_snapshot(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.build(attr_sets=[("x1", "k", 1)])
        apply_delta(graph, delta)
        assert index.refreshed(delta) is index

    def test_refresh_counters_are_monotone(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        calls_before = refresh_call_count()
        delta = GraphDelta.insert_edge("x1", "v1", "follow")
        apply_delta(graph, delta)
        index.refreshed(delta)
        assert refresh_call_count() == calls_before + 1


class TestRebuildFallbacks:
    """Every fallback is still byte-identical — it *is* the full build."""

    def fallback_case(self, graph, index, delta, **kwargs):
        apply_delta(graph, delta)

        def body():
            self.refreshed = index.refreshed(delta, **kwargs)

        fallbacks = rebuild_fallbacks(body)
        assert structural_bytes(self.refreshed) == structural_bytes(
            GraphIndex.build(graph)
        )
        return fallbacks

    def test_node_deletes_fall_back(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        assert self.fallback_case(
            graph, index, GraphDelta.build(node_deletes=["v4"])
        ) == 1

    def test_new_node_label_falls_back(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.build(
            node_inserts=[("shop", "store")], edge_inserts=[("x1", "shop", "follow")]
        )
        assert self.fallback_case(graph, index, delta) == 1

    def test_dying_edge_label_falls_back(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.delete_edge("v4", "redmi", "bad_rating")
        assert self.fallback_case(graph, index, delta) == 1

    def test_touched_fraction_threshold_falls_back(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        delta = GraphDelta.build(
            edge_inserts=[("x1", "v1", "follow"), ("x2", "v3", "follow")]
        )
        # A threshold of 0 with a tiny floor forces the rebuild path.
        apply_delta(graph, delta)
        before = refresh_rebuild_count()
        refreshed = index.refreshed(delta, max_touched_fraction=0.0)
        # The size floor (16 touched nodes) still applies on tiny graphs, so
        # accept either path — but the bytes must match the build regardless.
        assert refresh_rebuild_count() - before in (0, 1)
        assert structural_bytes(refreshed) == structural_bytes(GraphIndex.build(graph))

    def test_version_drift_falls_back(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        first = GraphDelta.insert_edge("x1", "v1", "follow")
        second = GraphDelta.insert_edge("x2", "v3", "follow")
        apply_delta(graph, first)
        apply_delta(graph, second)  # two batches behind: refresh must rebuild
        before = refresh_rebuild_count()
        refreshed = index.refreshed(second)
        assert refresh_rebuild_count() == before + 1
        assert structural_bytes(refreshed) == structural_bytes(GraphIndex.build(graph))


# ---------------------------------------------------------------------------
# The property: refreshed == rebuilt, byte for byte, on random graphs/deltas
# ---------------------------------------------------------------------------


@st.composite
def graph_and_delta(draw):
    """A random labeled digraph plus a random coherent update batch."""
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    num_nodes = draw(st.integers(min_value=3, max_value=16))
    graph = PropertyGraph(f"hyp-delta-{seed}")
    for node in range(num_nodes):
        graph.add_node(node, rng.choice(NODE_LABELS))
    for _ in range(draw(st.integers(min_value=2, max_value=40))):
        source, target = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if source != target:
            label = rng.choice(EDGE_LABELS)
            if not graph.has_edge(source, target, label):
                graph.add_edge(source, target, label)

    node_inserts = []
    next_node = num_nodes
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        node_inserts.append((next_node, rng.choice(NODE_LABELS)))
        next_node += 1
    all_nodes = list(range(next_node))

    edge_inserts = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        source, target = rng.choice(all_nodes), rng.choice(all_nodes)
        label = rng.choice(EDGE_LABELS)
        edge = (source, target, label)
        if (
            source != target
            and not graph.has_edge(source, target, label)
            and edge not in edge_inserts
        ):
            edge_inserts.append(edge)

    existing = sorted(graph.edges(), key=str)
    edge_deletes = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if existing:
            edge = existing.pop(rng.randrange(len(existing)))
            if edge not in edge_inserts:
                edge_deletes.append(edge)

    node_deletes = []
    if draw(st.booleans()) and num_nodes > 3:
        victim = rng.randrange(num_nodes)
        incident = lambda e: victim in (e[0], e[1])  # noqa: E731
        if not any(incident(e) for e in edge_inserts + edge_deletes):
            node_deletes.append(victim)

    delta = GraphDelta.build(
        node_inserts=node_inserts,
        node_deletes=node_deletes,
        edge_inserts=edge_inserts,
        edge_deletes=edge_deletes,
    )
    return graph, delta


@settings(**SETTINGS)
@given(case=graph_and_delta())
def test_refreshed_snapshot_is_wire_byte_identical_to_full_build(case):
    graph, delta = case
    if delta.is_empty():
        return
    index = GraphIndex.build(graph)
    index.neighborhoods()  # force the derived CSR so the patch path runs too
    apply_delta(graph, delta)
    refreshed = index.refreshed(delta)
    fresh = GraphIndex.build(graph)
    assert structural_bytes(refreshed) == structural_bytes(fresh)
    fresh.neighborhoods()
    assert to_bytes(refreshed, include_neighborhoods=True) == to_bytes(
        fresh, include_neighborhoods=True
    )


@settings(**SETTINGS)
@given(case=graph_and_delta())
def test_refresh_chains_across_a_rollback(case):
    """Two chained refreshes (forward, then the inverse) both stay identical
    to the build.  The wire encodes the version counter — which rollback moves
    *forward* — so the comparison is against a fresh build, not the original
    bytes."""
    graph, delta = case
    if delta.is_empty():
        return
    GraphIndex.build(graph)
    inverse = apply_delta(graph, delta)
    forward = GraphIndex.for_graph(graph).refreshed(delta)
    apply_delta(graph, inverse)
    restored = forward.refreshed(inverse)
    assert structural_bytes(restored) == structural_bytes(GraphIndex.build(graph))
