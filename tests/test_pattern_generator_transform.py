"""Tests for the workload pattern generator and the complexity reductions."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph
from repro.matching import EnumMatcher
from repro.patterns import (
    PatternBuilder,
    expand_numeric_to_conventional,
    generate_pattern,
    generate_workload,
    mine_frequent_edges,
    mine_frequent_paths,
    ratio_to_numeric,
)
from repro.utils import PatternError


class TestFrequentFeatureMining:
    def test_mine_frequent_edges_orders_by_count(self, small_pokec):
        features = mine_frequent_edges(small_pokec, top_k=5)
        assert len(features) == 5
        counts = [feature.count for feature in features]
        assert counts == sorted(counts, reverse=True)
        # follow person->person is by construction the most frequent feature.
        assert features[0].edge_label == "follow"

    def test_mine_frequent_paths(self, small_pokec):
        paths = mine_frequent_paths(small_pokec, max_length=2, top_k=5, seed=1)
        assert len(paths) == 5
        for feature, count in paths:
            assert count > 0
            assert len(feature) % 2 == 1  # alternating node/edge labels

    def test_mining_empty_graph(self):
        assert mine_frequent_edges(PropertyGraph(), top_k=3) == []


class TestPatternGenerator:
    def test_generated_pattern_has_requested_shape(self, small_pokec):
        pattern = generate_pattern(
            small_pokec, num_nodes=5, num_edges=7, ratio_percent=30.0, num_negated=1, seed=3
        )
        nodes, edges, average, negated = pattern.size_signature()
        assert nodes == 5
        assert negated == 1
        assert edges >= nodes - 1
        assert average == pytest.approx(30.0)
        pattern.validate()

    def test_generated_pattern_is_deterministic(self, small_pokec):
        a = generate_pattern(small_pokec, 5, 7, seed=11)
        b = generate_pattern(small_pokec, 5, 7, seed=11)
        assert a == b

    def test_generated_pattern_without_negation_is_positive(self, small_pokec):
        pattern = generate_pattern(small_pokec, 4, 5, num_negated=0, seed=2)
        assert pattern.is_positive

    def test_workload_generation(self, small_pokec):
        workload = generate_workload(small_pokec, count=3, num_nodes=4, num_edges=5, seed=1)
        assert len(workload) == 3
        assert len({pattern.name for pattern in workload}) == 3
        for pattern in workload:
            pattern.validate()

    def test_invalid_sizes_rejected(self, small_pokec):
        with pytest.raises(PatternError):
            generate_pattern(small_pokec, num_nodes=1, num_edges=1)
        with pytest.raises(PatternError):
            generate_pattern(small_pokec, num_nodes=5, num_edges=2)

    def test_generator_needs_edges_in_graph(self):
        empty = PropertyGraph()
        empty.add_node("a", "x")
        with pytest.raises(PatternError):
            generate_pattern(empty, 3, 3)


def star_graph(followers_that_recommend: int, followers_total: int) -> PropertyGraph:
    """One user following ``followers_total`` reviewers, some of which recommend."""
    graph = PropertyGraph("star")
    graph.add_node("u", "person")
    graph.add_node("prod", "product")
    for index in range(followers_total):
        reviewer = f"r{index}"
        graph.add_node(reviewer, "person")
        graph.add_edge("u", reviewer, "follow")
        if index < followers_that_recommend:
            graph.add_edge(reviewer, "prod", "recom")
    return graph


def numeric_star_pattern(p: int):
    return (
        PatternBuilder("P")
        .focus("x", "person")
        .node("y", "person")
        .node("prod", "product")
        .edge("x", "y", "follow", at_least=p)
        .edge("y", "prod", "recom")
        .build()
    )


def ratio_star_pattern(percent: float):
    return (
        PatternBuilder("P")
        .focus("x", "person")
        .node("y", "person")
        .node("prod", "product")
        .edge("x", "y", "follow", at_least_percent=percent)
        .edge("y", "prod", "recom")
        .build()
    )


class TestLemma3Expansion:
    """expand_numeric_to_conventional must preserve the answer set (Lemma 3)."""

    @pytest.mark.parametrize("recommenders, total, p", [(3, 5, 2), (2, 5, 3), (4, 4, 4), (1, 3, 1)])
    def test_equivalence_on_star_graphs(self, recommenders, total, p):
        graph = star_graph(recommenders, total)
        pattern = numeric_star_pattern(p)
        expanded = expand_numeric_to_conventional(pattern)
        assert expanded.is_conventional
        reference = EnumMatcher()
        assert reference.evaluate_answer(pattern, graph) == reference.evaluate_answer(
            expanded, graph
        )

    def test_expansion_clones_subtrees(self):
        pattern = numeric_star_pattern(3)
        expanded = expand_numeric_to_conventional(pattern)
        # 3 follow branches, each with its own recom edge (plus the original).
        follow_edges = [e for e in expanded.edges() if e.label == "follow"]
        recom_edges = [e for e in expanded.edges() if e.label == "recom"]
        assert len(follow_edges) == 3
        assert len(recom_edges) == 3

    def test_rejects_ratio_and_negation(self, pattern_q3):
        with pytest.raises(PatternError):
            expand_numeric_to_conventional(ratio_star_pattern(50))
        with pytest.raises(PatternError):
            expand_numeric_to_conventional(pattern_q3)


class TestLemma4RatioElimination:
    """ratio_to_numeric must preserve the answer set (Lemma 4)."""

    @pytest.mark.parametrize(
        "recommenders, total, percent",
        [(4, 5, 80.0), (3, 5, 80.0), (2, 4, 50.0), (1, 4, 50.0), (5, 5, 100.0)],
    )
    def test_equivalence_on_star_graphs(self, recommenders, total, percent):
        graph = star_graph(recommenders, total)
        pattern = ratio_star_pattern(percent)
        transformed, padded = ratio_to_numeric(pattern, graph)
        assert all(not e.quantifier.is_ratio for e in transformed.edges())
        reference = EnumMatcher()
        assert reference.evaluate_answer(pattern, graph) == reference.evaluate_answer(
            transformed, padded
        )

    def test_mixed_degree_graph(self):
        """Two users with different out-degrees exercise the padding logic."""
        graph = PropertyGraph("mixed")
        graph.add_node("prod", "product")
        for user, followees, recommending in [("a", 5, 4), ("b", 2, 1)]:
            graph.add_node(user, "person")
            for index in range(followees):
                reviewer = f"{user}_r{index}"
                graph.add_node(reviewer, "person")
                graph.add_edge(user, reviewer, "follow")
                if index < recommending:
                    graph.add_edge(reviewer, "prod", "recom")
        pattern = ratio_star_pattern(80.0)
        transformed, padded = ratio_to_numeric(pattern, graph)
        reference = EnumMatcher()
        assert reference.evaluate_answer(pattern, graph) == reference.evaluate_answer(
            transformed, padded
        )

    def test_original_graph_untouched(self, small_pokec):
        pattern = ratio_star_pattern(80.0)
        before_nodes = small_pokec.num_nodes
        ratio_to_numeric(pattern, small_pokec)
        assert small_pokec.num_nodes == before_nodes

    def test_pattern_without_ratios_passthrough(self):
        pattern = numeric_star_pattern(2)
        graph = star_graph(2, 3)
        transformed, padded = ratio_to_numeric(pattern, graph)
        assert transformed == pattern
        assert padded == graph

    def test_rejects_negative_patterns(self, pattern_q3):
        with pytest.raises(PatternError):
            ratio_to_numeric(pattern_q3, star_graph(1, 2))
