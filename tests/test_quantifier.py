"""Unit tests for counting quantifiers (syntax, classification, evaluation)."""

from __future__ import annotations

import pytest

from repro.patterns import CountingQuantifier
from repro.utils import QuantifierError


class TestConstruction:
    def test_existential_default(self):
        q = CountingQuantifier.existential()
        assert q.is_existential and q.is_positive
        assert not q.is_negation and not q.is_universal

    def test_universal(self):
        q = CountingQuantifier.universal()
        assert q.is_universal and q.is_ratio and q.is_positive

    def test_negation(self):
        q = CountingQuantifier.negation()
        assert q.is_negation and not q.is_positive

    def test_numeric_constructors(self):
        assert CountingQuantifier.at_least(3).describe() == ">= 3"
        assert CountingQuantifier.exactly(2).describe() == "= 2"
        assert CountingQuantifier.more_than(1).describe() == "> 1"

    def test_ratio_constructors(self):
        assert CountingQuantifier.ratio_at_least(80).describe() == ">= 80%"
        assert CountingQuantifier.ratio_exactly(100).is_universal

    @pytest.mark.parametrize(
        "op, value, is_ratio",
        [
            ("<", 1, False),          # unsupported operator
            (">=", 0, False),         # zero only with '='
            (">=", -1, False),        # negative
            (">=", 1.5, False),       # non-integer numeric
            (">=", 0, True),          # ratio must be in (0, 100]
            (">=", 120, True),        # ratio above 100
        ],
    )
    def test_invalid_quantifiers(self, op, value, is_ratio):
        with pytest.raises(QuantifierError):
            CountingQuantifier(op, value, is_ratio)

    def test_immutability(self):
        q = CountingQuantifier.at_least(2)
        with pytest.raises(Exception):
            q.value = 5  # type: ignore[misc]


class TestEvaluation:
    @pytest.mark.parametrize(
        "quantifier, count, total, expected",
        [
            (CountingQuantifier.at_least(2), 2, 10, True),
            (CountingQuantifier.at_least(2), 1, 10, False),
            (CountingQuantifier.exactly(0), 0, 10, True),
            (CountingQuantifier.exactly(0), 1, 10, False),
            (CountingQuantifier.more_than(2), 3, 10, True),
            (CountingQuantifier.more_than(2), 2, 10, False),
            (CountingQuantifier.ratio_at_least(80), 4, 5, True),
            (CountingQuantifier.ratio_at_least(80), 3, 5, False),
            (CountingQuantifier.universal(), 5, 5, True),
            (CountingQuantifier.universal(), 4, 5, False),
            (CountingQuantifier.ratio_exactly(50), 2, 4, True),
            (CountingQuantifier.ratio_exactly(50), 3, 4, False),
        ],
    )
    def test_check(self, quantifier, count, total, expected):
        assert quantifier.check(count, total) is expected

    def test_ratio_with_zero_total_is_unsatisfiable(self):
        assert not CountingQuantifier.universal().check(0, 0)
        assert not CountingQuantifier.ratio_at_least(10).check(0, 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(QuantifierError):
            CountingQuantifier.at_least(1).check(-1, 3)

    def test_numeric_threshold_for_ratios_rounds_up_for_geq(self):
        q = CountingQuantifier.ratio_at_least(80)
        assert q.numeric_threshold(5) == 4
        assert q.numeric_threshold(4) == 4   # 3.2 children is not reachable -> need 4
        assert q.numeric_threshold(10) == 8

    def test_numeric_threshold_for_numeric_quantifiers(self):
        assert CountingQuantifier.at_least(3).numeric_threshold(100) == 3

    def test_threshold_consistency_with_check(self):
        """count >= numeric_threshold(total)  <=>  check(count, total) for '>=' ratios."""
        q = CountingQuantifier.ratio_at_least(37.5)
        for total in range(1, 12):
            threshold = q.numeric_threshold(total)
            for count in range(total + 1):
                assert q.check(count, total) == (count >= threshold)


class TestPruningSupport:
    def test_may_still_hold_for_monotone_quantifiers(self):
        q = CountingQuantifier.at_least(3)
        assert q.may_still_hold(3, 10)
        assert not q.may_still_hold(2, 10)

    def test_may_still_hold_for_ratio(self):
        q = CountingQuantifier.ratio_at_least(50)
        assert q.may_still_hold(3, 6)
        assert not q.may_still_hold(2, 6)

    def test_negation_never_pruned_by_upper_bound(self):
        assert CountingQuantifier.negation().may_still_hold(0, 10)
        assert CountingQuantifier.negation().may_still_hold(5, 10)

    def test_equality_pruned_when_upper_bound_below_target(self):
        q = CountingQuantifier.exactly(4)
        assert q.may_still_hold(4, 10)
        assert not q.may_still_hold(3, 10)


class TestMisc:
    def test_positified(self):
        assert CountingQuantifier.negation().positified().is_existential
        with pytest.raises(QuantifierError):
            CountingQuantifier.at_least(2).positified()

    def test_describe_and_str(self):
        assert str(CountingQuantifier.negation()) == "= 0"
        assert str(CountingQuantifier.universal()) == "= 100%"
        assert str(CountingQuantifier.ratio_at_least(37.5)) == ">= 37.5%"

    def test_equality_and_hash(self):
        assert CountingQuantifier.at_least(2) == CountingQuantifier(">=", 2, False)
        assert hash(CountingQuantifier.at_least(2)) == hash(CountingQuantifier(">=", 2, False))
        assert CountingQuantifier.at_least(2) != CountingQuantifier.exactly(2)
