"""The QueryService façade (:mod:`repro.service.server`).

Contracts under test: served answers are byte-identical to cold PQMatch runs,
equivalent queries share one computation (cache across batches, dedupe within
a batch), all misses of a batch ship in one executor round, mutation triggers
recomputation while attribute updates do not, concurrent ``submit`` calls are
safe and coalesce, and process-backend serving never rebuilds indexes inside
pool workers.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets import benchmark_graph, paper_pattern, workload_patterns
from repro.index.snapshot import build_call_count
from repro.parallel import PQMatch
from repro.service import QueryService, ServiceResult
from repro.utils.errors import ReproError


@pytest.fixture(scope="module")
def served_graph():
    return benchmark_graph("pokec", scale=1.0, seed=1)


@pytest.fixture(scope="module")
def queries(served_graph):
    return [
        paper_pattern("Q1"),
        paper_pattern("Q2"),
        paper_pattern("Q3", p=2),
    ] + workload_patterns(served_graph, count=2, seed=5)


@pytest.fixture(scope="module")
def cold_answers(served_graph, queries):
    cold = PQMatch(num_workers=4, d=2)
    return [cold.evaluate_answer(pattern, served_graph) for pattern in queries]


def _renamed(pattern):
    clone = pattern.relabel_nodes({node: f"alias_{node}" for node in pattern.nodes()})
    clone.name = f"{pattern.name}#alias"
    return clone


class TestServing:
    def test_answers_byte_identical_to_cold_pqmatch(self, served_graph, queries, cold_answers):
        with QueryService(served_graph) as service:
            served = service.evaluate_many(queries)
            assert [set(result.answer) for result in served] == cold_answers
            assert all(isinstance(result, ServiceResult) for result in served)
            assert all(isinstance(result.answer, frozenset) for result in served)

    def test_repeat_is_served_from_cache(self, served_graph, queries, cold_answers):
        with QueryService(served_graph) as service:
            first = service.evaluate(queries[0])
            second = service.evaluate(queries[0])
            assert not first.cached and second.cached
            assert second.answer == first.answer == frozenset(cold_answers[0])

    def test_renamed_spelling_hits_the_same_entry(self, served_graph, queries, cold_answers):
        with QueryService(served_graph) as service:
            first = service.evaluate(queries[0])
            respelled = service.evaluate(_renamed(queries[0]))
            assert respelled.cached
            assert respelled.fingerprint == first.fingerprint
            assert set(respelled.answer) == cold_answers[0]

    def test_in_batch_dedupe_computes_once(self, served_graph, queries):
        with QueryService(served_graph) as service:
            batch = [queries[0], _renamed(queries[0]), queries[0]]
            served = service.evaluate_many(batch)
            assert len({result.fingerprint for result in served}) == 1
            assert [result.answer for result in served] == [served[0].answer] * 3
            assert service.stats.computed == 1
            assert service.stats.deduplicated == 2
            assert service.stats.dispatch_rounds == 1

    def test_batch_misses_ship_in_one_round(self, served_graph, queries, cold_answers):
        with QueryService(served_graph) as service:
            served = service.evaluate_many(queries)
            assert service.stats.dispatch_rounds == 1
            assert service.stats.computed == len(queries)
            assert [set(result.answer) for result in served] == cold_answers

    def test_empty_batch(self, served_graph):
        with QueryService(served_graph) as service:
            assert service.evaluate_many([]) == []

    def test_zero_builds_when_warm(self, served_graph, queries):
        with QueryService(served_graph) as service:
            service.evaluate_many(queries)  # warm partition, fragments, indexes
            before = build_call_count()
            service.cache.clear()
            service.evaluate_many(queries)  # recompute everything, warm machinery
            assert build_call_count() == before
            assert service.worker_rebuilds == 0


class TestInvalidation:
    def test_structural_mutation_recomputes(self, queries):
        graph = benchmark_graph("pokec", scale=1.0, seed=1)
        with QueryService(graph) as service:
            service.evaluate(queries[0])
            graph.add_node("mutation-probe", "person")
            refreshed = service.evaluate(queries[0])
            assert not refreshed.cached
            cold = PQMatch(num_workers=4, d=2)
            assert set(refreshed.answer) == cold.evaluate_answer(queries[0], graph)

    def test_attribute_update_keeps_cache_warm(self, queries):
        graph = benchmark_graph("pokec", scale=1.0, seed=1)
        some_node = next(iter(graph.nodes()))
        with QueryService(graph) as service:
            service.evaluate(queries[0])
            graph.set_node_attr(some_node, "note", "attribute-only")
            assert service.evaluate(queries[0]).cached

    def test_mutation_during_dispatch_cannot_poison_the_cache(self, queries):
        """The batch pins the version it looked up under: an answer computed
        while a mutation interleaves is filed under the OLD version, so the
        next request recomputes instead of being served a stale answer."""
        graph = benchmark_graph("pokec", scale=1.0, seed=1)
        with QueryService(graph) as service:
            original_dispatch = service._dispatch_batch

            def mutating_dispatch(dispatch_graph, unique):
                dispatch_graph.add_node(
                    f"interloper-{dispatch_graph.version}", "person"
                )
                return original_dispatch(dispatch_graph, unique)

            service._dispatch_batch = mutating_dispatch
            service.evaluate(queries[0])  # computed while the graph mutates
            service._dispatch_batch = original_dispatch
            refreshed = service.evaluate(queries[0])
            assert not refreshed.cached  # stale answer was unreachable
            cold = PQMatch(num_workers=4, d=2)
            assert set(refreshed.answer) == cold.evaluate_answer(queries[0], graph)


class TestSubmit:
    def test_concurrent_submit_is_correct_and_coalesces(
        self, served_graph, queries, cold_answers
    ):
        stream = (queries * 3)[:12]
        expected = (cold_answers * 3)[:12]
        with QueryService(served_graph) as service:
            futures = [None] * len(stream)

            def submit(position):
                futures[position] = service.submit(stream[position])

            threads = [
                threading.Thread(target=submit, args=(position,))
                for position in range(len(stream))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=60) for future in futures]
            assert [set(result.answer) for result in results] == expected
            assert service.stats.submitted == len(stream)
            # every unique pattern was computed exactly once, regardless of
            # how the dispatcher grouped the submissions into batches
            assert service.stats.computed == len(queries)

    def test_cancelled_future_does_not_kill_the_dispatcher(
        self, served_graph, queries, cold_answers
    ):
        """A future cancelled while queued is skipped; the dispatcher must
        survive and resolve the rest of the batch (a dead dispatcher would
        orphan every later future)."""
        import time

        with QueryService(served_graph) as service:
            # Block the dispatcher inside its first batch by holding the
            # evaluation lock, so later submissions stay queued.
            service._evaluate_lock.acquire()
            try:
                blocked = service.submit(queries[0])
                deadline = time.monotonic() + 10
                while blocked._state == "PENDING" and time.monotonic() < deadline:
                    time.sleep(0.005)  # wait until the dispatcher claimed it
                doomed = service.submit(queries[1])
                survivor = service.submit(queries[2])
                assert doomed.cancel()  # still queued: cancellable
            finally:
                service._evaluate_lock.release()
            assert set(blocked.result(timeout=60).answer) == cold_answers[0]
            assert set(survivor.result(timeout=60).answer) == cold_answers[2]
            assert doomed.cancelled()

    def test_submit_after_close_raises(self, served_graph, queries):
        service = QueryService(served_graph)
        service.close()
        with pytest.raises(ReproError):
            service.submit(queries[0])

    def test_evaluate_after_close_raises_and_never_resurrects_the_pool(
        self, served_graph, queries
    ):
        service = QueryService(served_graph)
        service.evaluate(queries[0])
        service.close()
        with pytest.raises(ReproError):
            service.evaluate(queries[0])
        with pytest.raises(ReproError):
            service.evaluate_many(queries[:2])
        service.stats_snapshot()  # telemetry stays readable after close...
        assert service.coordinator.current_executor is None  # ...pool stays down

    def test_close_concurrent_with_evaluate_never_resurrects_the_pool(
        self, queries
    ):
        """close() must wait for an in-flight evaluation (which passed its
        closed-check first) and only then shut the executor down — the late
        evaluation must not re-create a pool nothing would release."""
        import time

        graph = benchmark_graph("pokec", scale=0.5, seed=1)
        service = QueryService(graph)
        service.evaluate(queries[0])  # warm partition + executor
        service.cache.clear()
        entered = threading.Event()
        original_dispatch = service._dispatch_batch

        def slow_dispatch(dispatch_graph, unique):
            entered.set()
            time.sleep(0.2)
            return original_dispatch(dispatch_graph, unique)

        service._dispatch_batch = slow_dispatch
        outcome = {}

        def worker():
            try:
                outcome["answer"] = set(service.evaluate(queries[0]).answer)
            except ReproError:
                outcome["closed"] = True

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=30)  # worker holds the evaluation lock
        service.close()                  # blocks until the worker finishes
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert service.coordinator.current_executor is None
        assert "answer" in outcome or "closed" in outcome

    def test_one_bad_submission_fails_only_its_own_future(
        self, served_graph, queries, cold_answers
    ):
        """Coalesced batches mix unrelated callers: an invalid pattern must
        fail its own future and leave the strangers' requests served."""
        import time

        from repro.patterns.qgp import QuantifiedGraphPattern

        broken = QuantifiedGraphPattern(name="no-focus")
        broken.add_node("x", "person")
        with QueryService(served_graph) as service:
            # Hold the evaluation lock so all three submissions coalesce
            # into the dispatcher's next batch.
            service._evaluate_lock.acquire()
            try:
                first = service.submit(queries[0])
                deadline = time.monotonic() + 10
                while first._state == "PENDING" and time.monotonic() < deadline:
                    time.sleep(0.005)
                good = service.submit(queries[1])
                bad = service.submit(broken)
                also_good = service.submit(queries[2])
            finally:
                service._evaluate_lock.release()
            assert set(first.result(timeout=60).answer) == cold_answers[0]
            assert set(good.result(timeout=60).answer) == cold_answers[1]
            assert set(also_good.result(timeout=60).answer) == cold_answers[2]
            with pytest.raises(Exception):
                bad.result(timeout=60)

    def test_invalid_pattern_propagates_through_future(self, served_graph):
        from repro.patterns.qgp import QuantifiedGraphPattern

        broken = QuantifiedGraphPattern(name="no-focus")
        broken.add_node("x", "person")
        with QueryService(served_graph) as service:
            future = service.submit(broken)
            with pytest.raises(Exception):
                future.result(timeout=60)


class TestLifecycle:
    def test_evaluate_answer_rejects_other_graphs(self, served_graph, queries):
        other = benchmark_graph("yago2", scale=1.0, seed=1)
        with QueryService(served_graph) as service:
            with pytest.raises(ReproError):
                service.evaluate_answer(queries[0], other)
            assert service.evaluate_answer(queries[0], served_graph) == frozenset(
                service.evaluate(queries[0]).answer
            )

    def test_stats_snapshot_is_flat_and_complete(self, served_graph, queries):
        with QueryService(served_graph) as service:
            service.evaluate_many(queries[:2])
            snapshot = service.stats_snapshot()
            for key in (
                "served", "batches", "dispatch_rounds", "computed",
                "deduplicated", "cache_hits", "cache_misses", "worker_rebuilds",
            ):
                assert key in snapshot
            assert snapshot["served"] == 2
            assert snapshot["worker_rebuilds"] == 0

    def test_context_manager_closes_executor(self, served_graph, queries):
        with QueryService(served_graph) as service:
            service.evaluate(queries[0])
            coordinator = service.coordinator
        assert coordinator._executor is None  # released by close()


class TestProcessBackend:
    def test_process_serving_never_rebuilds_in_workers(self, queries):
        graph = benchmark_graph("pokec", scale=0.3, seed=1)
        serial_service = QueryService(graph, PQMatch(num_workers=2, d=2))
        expected = [
            set(result.answer) for result in serial_service.evaluate_many(queries[:2])
        ]
        serial_service.close()
        with QueryService(
            graph, PQMatch(num_workers=2, d=2, executor="process")
        ) as service:
            first = service.evaluate_many(queries[:2])
            again = service.evaluate_many(queries[:2])
            assert [set(result.answer) for result in first] == expected
            assert all(result.cached for result in again)
            assert service.worker_rebuilds == 0
