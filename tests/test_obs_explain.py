"""EXPLAIN / EXPLAIN ANALYZE (:mod:`repro.obs.explain`) and its feeds.

The acceptance contract: after serving traffic, ``explain(fingerprint)``
returns per-step estimated-vs-observed cardinalities for **every** served
fingerprint — estimates from the graph's :class:`CardinalityModel`,
observations from the always-on :class:`StatsRegistry` and, under
``analyze=True``, from re-running the enumeration with a per-depth probe
profile that leaves the answers byte-identical.
"""

from __future__ import annotations

import math

import pytest

from fixtures import build_paper_g1, build_q2, build_q3
from repro.graph import PropertyGraph
from repro.graph.statistics import CardinalityModel, cardinality_model
from repro.matching.generic import MatchContext
from repro.obs.explain import (
    ExplainReport,
    ExplainStep,
    StatsRegistry,
    estimate_steps,
    q_error,
)
from repro.patterns import PatternBuilder
from repro.serve import ShardedService
from repro.service import QueryService
from repro.utils.counters import WorkCounter
from repro.utils.errors import ReproError


def _chain_graph() -> PropertyGraph:
    """persons → city: 3 person nodes, 1 city, 3 'lives' edges."""
    graph = PropertyGraph("chain")
    for name in ("a", "b", "c"):
        graph.add_node(name, "person")
    graph.add_node("x", "city")
    for name in ("a", "b", "c"):
        graph.add_edge(name, "x", "lives")
    return graph


# ---------------------------------------------------------------------------
# q_error
# ---------------------------------------------------------------------------


class TestQError:
    def test_symmetric_and_perfect(self):
        assert q_error(10.0, 10.0) == 1.0
        assert q_error(20.0, 10.0) == q_error(10.0, 20.0) == 2.0

    def test_zero_conventions(self):
        assert q_error(0.0, 0.0) == 1.0
        assert math.isinf(q_error(0.0, 5.0))
        assert math.isinf(q_error(5.0, 0.0))


# ---------------------------------------------------------------------------
# estimate_steps against a hand-checkable model
# ---------------------------------------------------------------------------


class TestEstimateSteps:
    def test_label_fallback_then_edge_bound(self):
        model = CardinalityModel(_chain_graph())
        labels = {"p": "person", "c": "city"}
        steps = estimate_steps(
            ["p", "c"], labels, [("p", "c", "lives")], model, focus="p"
        )
        # First step has no placed neighbour: the label population.
        assert steps[0].role == "focus"
        assert steps[0].estimated == 3.0
        # Second step is bound by the edge: mean typed out-degree of person
        # = triple(person, lives, city) / count(person) = 3/3.
        assert steps[1].role == "extend"
        assert steps[1].estimated == model.expected_pool(
            "city", "lives", "person", outgoing=False
        )
        assert steps[1].cumulative == steps[0].estimated * steps[1].estimated

    def test_tightest_bound_wins(self):
        graph = _chain_graph()
        graph.add_node("y", "city")
        graph.add_edge("a", "y", "visits")
        model = CardinalityModel(graph)
        labels = {"p": "person", "q": "person", "c": "city"}
        # c is constrained by both p (lives) and q (visits): the estimate is
        # the min of the two typed pools, exactly the search's tightest bound.
        steps = estimate_steps(
            ["p", "q", "c"],
            labels,
            [("p", "c", "lives"), ("q", "c", "visits")],
            model,
        )
        lives = model.expected_pool("city", "lives", "person", outgoing=False)
        visits = model.expected_pool("city", "visits", "person", outgoing=False)
        assert steps[2].estimated == min(lives, visits)

    def test_model_memoised_per_version(self):
        graph = _chain_graph()
        first = cardinality_model(graph)
        assert cardinality_model(graph) is first
        graph.add_node("d", "person")
        assert cardinality_model(graph) is not first


# ---------------------------------------------------------------------------
# StatsRegistry (the adaptive planner's feed — ROADMAP open item 3)
# ---------------------------------------------------------------------------


class TestStatsRegistry:
    def _counter(self, extensions=10, verifications=4):
        counter = WorkCounter()
        counter.extensions = extensions
        counter.verifications = verifications
        return counter

    def test_per_query_averages_latest_epoch_first(self):
        registry = StatsRegistry()
        registry.record("fp", "q", 1, counter=self._counter(10), answer_size=2)
        registry.record("fp", "q", 1, counter=self._counter(20), answer_size=4)
        registry.record("fp", "q", 2, counter=self._counter(100), answer_size=1)
        latest = registry.observed("fp")
        assert latest["epoch"] == 2
        assert latest["extensions_per_query"] == 100.0
        older = registry.observed("fp", epoch=1)
        assert older["queries"] == 2
        assert older["extensions_per_query"] == 15.0
        assert older["answers_per_query"] == 3.0

    def test_bounded_both_ways(self):
        registry = StatsRegistry(capacity=2, epoch_capacity=2)
        for index in range(4):
            registry.record(f"fp{index}", "q", 1)
        assert registry.fingerprints() == ("fp2", "fp3")
        for epoch in range(4):
            registry.record("fp3", "q", epoch)
        snapshot = registry.snapshot()["fp3"]
        assert set(snapshot["epochs"]) == {"2", "3"}

    def test_capacity_zero_disables(self):
        registry = StatsRegistry(capacity=0)
        assert not registry
        registry.record("fp", "q", 1)
        assert registry.observed("fp") is None and len(registry) == 0


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE: the probe profile and byte-identity
# ---------------------------------------------------------------------------


class TestProbeProfile:
    def test_profiled_enumeration_is_byte_identical(self):
        graph = build_paper_g1()
        pattern = build_q2()
        plain = set(map(tuple, MatchContext(pattern, graph).isomorphisms()))
        profile: dict = {}
        profiled = set(
            map(
                tuple,
                MatchContext(pattern, graph).isomorphisms(probe_profile=profile),
            )
        )
        assert profiled == plain
        assert profile and all(count > 0 for count in profile.values())

    def test_profile_counts_match_extension_counter(self):
        graph = build_paper_g1()
        pattern = build_q2()
        counter = WorkCounter()
        profile: dict = {}
        list(
            MatchContext(pattern, graph).isomorphisms(
                counter=counter, probe_profile=profile
            )
        )
        assert sum(profile.values()) == counter.extensions


# ---------------------------------------------------------------------------
# Service-level EXPLAIN (the acceptance surface)
# ---------------------------------------------------------------------------


class TestServiceExplain:
    def test_every_served_fingerprint_is_explainable(self):
        graph = build_paper_g1()
        patterns = [build_q2(), build_q3()]
        with QueryService(graph) as service:
            for pattern in patterns:
                service.evaluate(pattern)
            for fingerprint in service.stats_registry.fingerprints():
                report = service.explain(fingerprint)
                assert isinstance(report, ExplainReport)
                assert report.fingerprint == fingerprint
                assert report.steps and not report.analyzed
                # served traffic means estimated-vs-observed is computable
                assert report.traffic["queries"] >= 1
                assert report.observed_volume is not None
                assert report.volume_q_error >= 1.0

    def test_analyze_adds_per_step_observations(self):
        graph = build_paper_g1()
        pattern = build_q2()
        with QueryService(graph) as service:
            result = service.evaluate(pattern)
            report = service.explain(pattern, analyze=True)
            assert report.analyzed
            assert all(step.observed is not None for step in report.steps)
            assert report.analyze_probes == sum(
                step.observed for step in report.steps
            )
            assert report.analyze_matches >= len(result.answer)
            rendered = report.render()
            assert "EXPLAIN ANALYZE" in rendered and "obs_probes=" in rendered
            assert "q-error" in rendered

    def test_explain_cache_hits_keep_traffic_at_computed_grain(self):
        graph = build_paper_g1()
        pattern = build_q2()
        with QueryService(graph) as service:
            service.evaluate(pattern)
            service.evaluate(pattern)  # L1 hit: no fresh observation
            fingerprint = service.stats_registry.fingerprints()[0]
            assert service.stats_registry.observed(fingerprint)["queries"] == 1

    def test_unknown_fingerprint_raises(self):
        with QueryService(build_paper_g1()) as service:
            with pytest.raises(ReproError, match="no pattern registered"):
                service.explain("deadbeef")

    def test_introspect_carries_explain_feed(self):
        graph = build_paper_g1()
        pattern = build_q2()
        with QueryService(graph) as service:
            fingerprint = service.evaluate(pattern).fingerprint
            payload = service.introspect()
        assert fingerprint in payload["explain"]
        epochs = payload["explain"][fingerprint]["epochs"]
        assert str(graph.version) in epochs


class TestFleetExplain:
    def test_fleet_explain_uses_version_vector_epochs(self):
        graph = build_paper_g1()
        pattern = build_q2()
        with ShardedService(graph.copy(), num_shards=2) as fleet:
            result = fleet.evaluate(pattern)
            report = fleet.explain(result.fingerprint)
            assert report.traffic["queries"] == 1
            assert report.traffic["epoch"] == fleet.version_vector.key_text()
            analyzed = fleet.explain(pattern, analyze=True)
            assert analyzed.analyzed
            assert all(step.observed is not None for step in analyzed.steps)


# ---------------------------------------------------------------------------
# Report rendering details
# ---------------------------------------------------------------------------


class TestReportRendering:
    def test_never_observed_fingerprint_renders_gracefully(self):
        report = ExplainReport(
            fingerprint="abc123def456",
            pattern_name="toy",
            graph_name="g",
            graph_version=1,
            quantifiers=("count(follow) >= 1",),
            steps=(
                ExplainStep(index=0, node="x0:person", role="focus",
                            estimated=3.0, cumulative=3.0),
            ),
            analyzed=False,
        )
        text = report.render()
        assert "never observed" in text
        assert report.observed_volume is None and report.volume_q_error is None
        assert report.as_dict()["estimated_volume"] == 3.0
