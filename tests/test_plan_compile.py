"""Tests for plan compilation: lowered quantifiers, canonical shape, resolutions.

The load-bearing property is that :func:`repro.plan.lower_quantifier` is an
*exact* drop-in for :meth:`CountingQuantifier.check` on the non-negative
inputs the engines produce — including the ratio epsilons and the
``total == 0`` rule — because the compiled execution path swaps one for the
other inside the verification loop and the byte-identity contract rides on it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import PropertyGraph
from repro.patterns import CountingQuantifier, QuantifiedGraphPattern
from repro.plan import compile_plan, lower_quantifier, plan_compile_count
from repro.service.patterns import canonicalize


def quantifier_grid():
    """A grid covering every constructor and both ratio/numeric branches."""
    return [
        CountingQuantifier.existential(),
        CountingQuantifier.universal(),
        CountingQuantifier.negation(),
        CountingQuantifier.at_least(1),
        CountingQuantifier.at_least(3),
        CountingQuantifier.exactly(0),
        CountingQuantifier.exactly(2),
        CountingQuantifier.more_than(1),
        CountingQuantifier.more_than(2),
        CountingQuantifier.ratio_at_least(25.0),
        CountingQuantifier.ratio_at_least(50.0),
        CountingQuantifier.ratio_at_least(100.0),
        CountingQuantifier.ratio_exactly(50.0),
        CountingQuantifier.ratio_exactly(100.0),
    ]


def sample_pattern(suffix: str = "") -> QuantifiedGraphPattern:
    """Focus + two quantified branches + a product leaf (one of each check)."""
    pattern = QuantifiedGraphPattern(name=f"plan-sample{suffix}")
    pattern.add_node(f"x{suffix}", "person")
    pattern.add_node(f"y{suffix}", "person")
    pattern.add_node(f"z{suffix}", "person")
    pattern.add_node(f"p{suffix}", "product")
    pattern.set_focus(f"x{suffix}")
    pattern.add_edge(f"x{suffix}", f"y{suffix}", "follow", CountingQuantifier.at_least(2))
    pattern.add_edge(
        f"x{suffix}", f"z{suffix}", "follow", CountingQuantifier.ratio_at_least(50.0)
    )
    pattern.add_edge(f"y{suffix}", f"p{suffix}", "recom")
    return pattern


def small_graph() -> PropertyGraph:
    graph = PropertyGraph("plan-small")
    for person in ("a", "b", "c", "d"):
        graph.add_node(person, "person")
    graph.add_node("prod", "product")
    graph.add_edge("a", "b", "follow")
    graph.add_edge("a", "c", "follow")
    graph.add_edge("b", "prod", "recom")
    graph.add_edge("c", "prod", "recom")
    return graph


class TestLowerQuantifier:
    def test_grid_matches_check_exactly(self):
        for quantifier in quantifier_grid():
            lowered = lower_quantifier(quantifier)
            for total in range(7):
                for count in range(total + 1):
                    assert lowered(count, total) == quantifier.check(count, total), (
                        f"{quantifier.describe()} diverged on ({count}, {total})"
                    )

    def test_ratio_with_zero_total_is_false(self):
        for quantifier in quantifier_grid():
            if quantifier.is_ratio:
                assert lower_quantifier(quantifier)(0, 0) is False

    def test_ratio_epsilon_boundaries(self):
        # 1/3 of 100% is not representable exactly; the epsilon must make the
        # "exactly the threshold" case pass, same as CountingQuantifier.check.
        third = CountingQuantifier.ratio_at_least(100.0 / 3.0)
        assert lower_quantifier(third)(1, 3) == third.check(1, 3) is True
        half = CountingQuantifier.ratio_exactly(50.0)
        assert lower_quantifier(half)(1, 2) is True
        assert lower_quantifier(half)(1, 3) is False
        assert lower_quantifier(half)(2, 3) is False

    @given(
        kind=st.sampled_from(["at_least", "exactly", "more_than", "ratio_at_least",
                              "ratio_exactly"]),
        value=st.integers(min_value=0, max_value=5),
        count=st.integers(min_value=0, max_value=8),
        total=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_lowering_matches_check_property(self, kind, value, count, total):
        if kind == "at_least":
            quantifier = CountingQuantifier.at_least(max(value, 1))
        elif kind == "exactly":
            quantifier = CountingQuantifier.exactly(value)
        elif kind == "more_than":
            quantifier = CountingQuantifier.more_than(max(value, 1))
        elif kind == "ratio_at_least":
            quantifier = CountingQuantifier.ratio_at_least(float(value) * 20.0 or 20.0)
        else:
            quantifier = CountingQuantifier.ratio_exactly(float(value) * 20.0 or 20.0)
        assert lower_quantifier(quantifier)(count, total) == quantifier.check(
            count, total
        )


class TestCompilePlan:
    def test_canonical_shape(self):
        pattern = sample_pattern()
        form = canonicalize(pattern)
        plan = compile_plan(pattern, fingerprint=form.fingerprint, form=form)
        assert plan.fingerprint == form.fingerprint
        assert len(plan.node_labels) == len(list(pattern.nodes()))
        assert plan.node_labels[plan.focus_position] == "person"
        assert plan.focus_position == form.order[pattern.focus]
        # Edges are stored on canonical positions, sorted by endpoints+label.
        assert [edge[:3] for edge in plan.edges] == sorted(
            edge[:3] for edge in plan.edges
        )
        assert len(plan.edges) == len(pattern.edges())

    def test_respelled_pattern_compiles_to_identical_shape(self):
        original = compile_plan(sample_pattern())
        respelled = compile_plan(sample_pattern(suffix="_r"))
        assert original.fingerprint == respelled.fingerprint
        assert original.node_labels == respelled.node_labels
        assert original.focus_position == respelled.focus_position
        assert [edge[:3] for edge in original.edges] == [
            edge[:3] for edge in respelled.edges
        ]

    def test_check_for_is_memoised(self):
        plan = compile_plan(sample_pattern())
        quantifier = CountingQuantifier.ratio_at_least(50.0)
        assert plan.check_for(quantifier) is plan.check_for(quantifier)
        # Existential is pre-lowered because positification rewrites negated
        # edges to it; asking for it must never build a new closure.
        existential = CountingQuantifier.existential()
        assert plan.check_for(existential) is plan.check_for(existential)

    def test_edge_specs_lowered_and_memoised(self):
        pattern = sample_pattern()
        plan = compile_plan(pattern)
        edges = pattern.edges()
        specs = plan.edge_specs(edges)
        assert specs is plan.edge_specs(edges)
        assert len(specs) == len(edges)
        for (source, label, check), edge in zip(specs, edges):
            assert source == edge.source
            assert label == edge.label
            assert check(5, 5) == edge.quantifier.check(5, 5)

    def test_compile_count_increments_per_compile(self):
        before = plan_compile_count()
        compile_plan(sample_pattern())
        compile_plan(sample_pattern())
        assert plan_compile_count() == before + 2

    def test_describe_payload(self):
        plan = compile_plan(sample_pattern())
        info = plan.describe()
        assert info["fingerprint"] == plan.fingerprint
        assert info["nodes"] == 4
        assert info["edges"] == 3
        assert info["focus"].endswith(":person")
        assert any("50" in spelling for spelling in info["quantifiers"])
        assert info["compile_seconds"] >= 0.0


class TestPlanResolution:
    def test_resolution_memoised_per_epoch(self):
        graph = small_graph()
        plan = compile_plan(sample_pattern())
        first = plan.resolution_for(graph)
        assert plan.resolution_for(graph) is first
        graph.add_edge("a", "d", "follow")
        second = plan.resolution_for(graph)
        assert second is not first
        assert second.snapshot is not first.snapshot

    def test_edge_rows_cover_both_orientations(self):
        graph = small_graph()
        plan = compile_plan(sample_pattern())
        resolution = plan.resolution_for(graph)
        assert len(resolution.edge_rows) == len(plan.edges)
        for rows in resolution.edge_rows.values():
            assert rows[0] is not None and rows[1] is not None

    def test_absent_edge_label_resolves_to_none(self):
        graph = PropertyGraph("no-recom")
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_node("c", "person")
        graph.add_node("p", "product")
        graph.add_edge("a", "b", "follow")
        graph.add_edge("a", "c", "follow")
        plan = compile_plan(sample_pattern())
        resolution = plan.resolution_for(graph)
        assert any(rows == (None, None) for rows in resolution.edge_rows.values())

    def test_str_ranks_agree_with_string_order(self):
        graph = small_graph()
        plan = compile_plan(sample_pattern())
        ranks = plan.resolution_for(graph).str_ranks
        nodes = list(graph.nodes())
        assert sorted(nodes, key=ranks.__getitem__) == sorted(nodes, key=str)

    def test_equal_str_nodes_share_a_rank(self):
        # Distinct hashables with equal str() must share a rank so a stable
        # sort by rank reproduces the sort by str exactly (ties included).
        graph = PropertyGraph("mixed-ids")
        graph.add_node(1, "person")
        graph.add_node("1", "person")
        graph.add_node(2, "person")
        plan = compile_plan(sample_pattern())
        ranks = plan.resolution_for(graph).str_ranks
        assert ranks[1] == ranks["1"]
        assert ranks[2] > ranks[1]

    def test_order_preview_starts_at_focus_and_is_a_permutation(self):
        graph = small_graph()
        plan = compile_plan(sample_pattern())
        preview = plan.resolution_for(graph).order_preview
        assert preview[0] == plan.focus_position
        assert sorted(preview) == list(range(len(plan.node_labels)))

    def test_order_label_rendering(self):
        graph = small_graph()
        plan = compile_plan(sample_pattern())
        label = plan.order_label(graph)
        parts = label.split(">")
        assert len(parts) == len(plan.node_labels)
        assert parts[0] == f"x{plan.focus_position}:person"
        # Without a graph, the most recent resolution's preview is reused.
        assert plan.order_label() == label


def test_compile_without_form_canonicalizes_itself():
    pattern = sample_pattern()
    form = canonicalize(pattern)
    plan = compile_plan(pattern)
    assert plan.fingerprint == form.fingerprint


def test_unlabeled_quantifier_edges_default_to_existential():
    pattern = QuantifiedGraphPattern(name="plain")
    pattern.add_node("x", "person")
    pattern.add_node("y", "person")
    pattern.set_focus("x")
    pattern.add_edge("x", "y", "follow")
    plan = compile_plan(pattern)
    (_, _, _, quantifier), = plan.edges
    assert quantifier.is_existential
