"""Service introspection (:mod:`repro.obs.introspect` + ``QueryService.stats()``).

Contracts under test: ``service.stats`` still reads as the lifetime counter
object (every existing assertion style keeps working) while *calling* it
returns the full introspection snapshot; per-fingerprint request counts,
cache-hit counts and p50/p99 latencies are consistent with the ResultCache's
own counters; and the slow-query log captures a pathological pattern together
with its matching-layer verification counters (the regression satellite).
"""

from __future__ import annotations

import pytest

from repro.datasets import benchmark_graph, paper_pattern, workload_patterns
from repro.obs.introspect import ServiceIntrospection, SlowQueryLog
from repro.service import QueryService
from repro.utils.counters import WorkCounter


@pytest.fixture(scope="module")
def graph():
    return benchmark_graph("pokec", scale=0.5, seed=2)


@pytest.fixture(scope="module")
def patterns(graph):
    return [paper_pattern("Q1")] + workload_patterns(graph, count=2, seed=7)


class TestUnitIntrospection:
    def test_observe_accumulates_per_fingerprint(self):
        intro = ServiceIntrospection()
        intro.observe("fp1", "Q", 0.010, cached=False,
                      counter=WorkCounter(verifications=5))
        intro.observe("fp1", "Q", 0.001, cached=True)
        stats = intro.fingerprint("fp1")
        assert stats.requests == 2
        assert stats.cache_hits == 1 and stats.computed == 1
        assert stats.verifications == 5
        assert 0.0 < stats.p50 <= stats.p99
        snapshot = intro.snapshot()
        assert snapshot["fp1"]["requests"] == 2

    def test_capacity_evicts_least_recently_served(self):
        intro = ServiceIntrospection(capacity=2)
        for fingerprint in ("a", "b", "c"):
            intro.observe(fingerprint, "Q", 0.001, cached=True)
        assert intro.fingerprint("a") is None
        assert len(intro) == 2

    def test_slow_query_log_threshold_and_bound(self):
        log = SlowQueryLog(threshold=0.01, capacity=2)
        assert log.record("fp", "Q", 0.001) is None  # under threshold
        for position in range(3):
            assert log.record("fp", "Q", 0.02 + position) is not None
        assert len(log) == 2 and log.dropped == 1
        assert log.records()[-1].elapsed == pytest.approx(2.02)

    def test_slow_query_log_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record("fp", "Q", 100.0) is None


class TestServiceStats:
    def test_stats_attribute_and_call_coexist(self, graph, patterns):
        with QueryService(graph) as service:
            service.evaluate(patterns[0])
            service.evaluate(patterns[0])
            # attribute reads: the lifetime counters, unchanged contract
            assert service.stats.computed == 1
            assert service.stats.served == 2
            # calling it: the introspection snapshot
            snapshot = service.stats()
            assert snapshot["service"]["computed"] == 1
            assert snapshot is not service.stats

    def test_snapshot_consistent_with_cache_internals(self, graph, patterns):
        with QueryService(graph) as service:
            service.evaluate_many(patterns)          # all misses
            service.evaluate_many(patterns)          # all hits
            service.evaluate(patterns[0])            # one more hit
            snapshot = service.stats()

            cache_stats = service.cache.stats
            assert snapshot["cache"]["hits"] == cache_stats.hits
            assert snapshot["cache"]["misses"] == cache_stats.misses
            # the snapshot rounds to 4 decimals for stable display
            assert snapshot["cache"]["hit_rate"] == pytest.approx(
                cache_stats.hit_rate, abs=5e-5
            )
            assert snapshot["cache"]["entries"] == len(service.cache)

            fingerprints = snapshot["fingerprints"]
            assert len(fingerprints) == len(patterns)
            assert sum(entry["requests"] for entry in fingerprints.values()) == (
                cache_stats.hits + cache_stats.misses
            )
            assert sum(entry["cache_hits"] for entry in fingerprints.values()) == (
                cache_stats.hits
            )
            for entry in fingerprints.values():
                assert entry["p50_seconds"] <= entry["p99_seconds"]
                assert entry["computed"] == 1
            # a computed request costs real time; its p99 reflects that
            hottest = max(fingerprints.values(), key=lambda e: e["requests"])
            assert hottest["p99_seconds"] > 0.0

    def test_snapshot_covers_pool_graph_and_subscriptions(self, graph, patterns):
        with QueryService(graph) as service:
            subscription = service.subscribe(patterns[0])
            snapshot = service.stats()
            assert snapshot["subscriptions"] == 1
            assert snapshot["graph"]["version"] == graph.version
            assert snapshot["pool"]["worker_rebuilds"] == 0
            subscription.cancel()
            assert service.stats()["subscriptions"] == 0

    def test_introspection_bound_by_capacity(self, graph, patterns):
        with QueryService(graph, introspection_capacity=1) as service:
            service.evaluate_many(patterns)
            assert len(service.stats()["fingerprints"]) == 1


class TestSlowQueryRegression:
    def test_pathological_pattern_lands_in_log_with_counters(self, graph):
        """Satellite regression: with the threshold at 0.0 every served

        query is 'slow'; the pathological (most expensive) pattern must
        appear with its fingerprint and non-zero verification counters."""
        pathological = paper_pattern("Q3", p=2)
        with QueryService(graph, slow_query_threshold=0.0) as service:
            result = service.evaluate(pathological)
            records = service.stats()["slow_queries"]
        assert records, "threshold 0.0 must log every request"
        entry = next(
            record for record in records
            if record["fingerprint"] == result.fingerprint
        )
        assert entry["pattern"] == pathological.name
        assert not entry["cached"]
        assert entry["verifications"] > 0
        assert entry["elapsed_seconds"] >= 0.0

    def test_log_off_by_default(self, graph):
        with QueryService(graph) as service:
            service.evaluate(paper_pattern("Q1"))
            assert service.stats()["slow_queries"] == []

    def test_subscription_maintenance_is_logged_with_aff_size(self, graph):
        from repro.delta import GraphDelta

        pattern = paper_pattern("Q1")
        with QueryService(graph, slow_query_threshold=0.0) as service:
            service.subscribe(pattern)
            before = len(service.stats()["slow_queries"])
            node = next(iter(graph.nodes()))
            delta = GraphDelta(edge_inserts=(
                (node, f"obs-probe-{graph.version}", "follow"),
            ), node_inserts=((f"obs-probe-{graph.version}", "person", {}),))
            service.apply_delta(delta)
            records = service.stats()["slow_queries"][before:]
        assert any(r["aff_size"] >= 0 and r["pattern"] == pattern.name
                   for r in records)
