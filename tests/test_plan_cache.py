"""Tests for the two-level plan cache and its service / pool integration.

The invariants under test, in cache terms:

* **entry** keys carry the index-stats epoch ``(id(graph), graph.version)``
  and the engine options key — an engine change or a graph mutation misses;
* **programs** are keyed ``(fingerprint, options_key)`` only — an epoch miss
  re-resolves but never recompiles, so each unique fingerprint compiles at
  most once per process (the acceptance contract, asserted on both the
  coordinator and the pool-worker side).
"""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph
from repro.matching import QMatch
from repro.parallel import PQMatch
from repro.patterns import CountingQuantifier, QuantifiedGraphPattern
from repro.plan import (
    PlanCache,
    compile_plan,
    plan_compile_count,
    worker_plan_cache,
)
from repro.service import QueryService
from repro.service.patterns import canonicalize


def make_graph(name: str = "plan-cache-graph") -> PropertyGraph:
    graph = PropertyGraph(name)
    for person in ("u1", "u2", "u3", "u4"):
        graph.add_node(person, "person")
    graph.add_node("prod", "product")
    graph.add_edge("u1", "u2", "follow")
    graph.add_edge("u1", "u3", "follow")
    graph.add_edge("u2", "u4", "follow")
    graph.add_edge("u2", "prod", "recom")
    graph.add_edge("u3", "prod", "recom")
    return graph


def make_pattern(name: str = "cache-Q", prefix: str = "") -> QuantifiedGraphPattern:
    pattern = QuantifiedGraphPattern(name=name)
    pattern.add_node(f"{prefix}x", "person")
    pattern.add_node(f"{prefix}y", "person")
    pattern.add_node(f"{prefix}p", "product")
    pattern.set_focus(f"{prefix}x")
    pattern.add_edge(f"{prefix}x", f"{prefix}y", "follow",
                     CountingQuantifier.at_least(1))
    pattern.add_edge(f"{prefix}y", f"{prefix}p", "recom")
    return pattern


def star_pattern(label: str, name: str) -> QuantifiedGraphPattern:
    pattern = QuantifiedGraphPattern(name=name)
    pattern.add_node("x", "person")
    pattern.add_node("y", "person")
    pattern.set_focus("x")
    pattern.add_edge("x", "y", label)
    return pattern


class TestPlanCache:
    def test_miss_compiles_then_hits(self):
        cache = PlanCache()
        graph = make_graph()
        pattern = make_pattern()
        form = canonicalize(pattern)
        first = cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern,
                               form=form)
        second = cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern,
                                form=form)
        assert second is first
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "compiles": 1, "evictions": 0,
        }
        assert len(cache) == 1

    def test_options_key_change_compiles_a_separate_program(self):
        cache = PlanCache()
        graph = make_graph()
        pattern = make_pattern()
        form = canonicalize(pattern)
        plan_a = cache.plan_for(graph, form.fingerprint, ("qmatch", "A"), pattern,
                                form=form)
        plan_b = cache.plan_for(graph, form.fingerprint, ("qmatch", "B"), pattern,
                                form=form)
        assert plan_a is not plan_b
        assert cache.stats.compiles == 2
        assert cache.stats.misses == 2

    def test_epoch_change_misses_without_recompiling(self):
        cache = PlanCache()
        graph = make_graph()
        pattern = make_pattern()
        form = canonicalize(pattern)
        plan = cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern,
                              form=form)
        stale_resolution = plan.resolution_for(graph)
        graph.add_edge("u3", "u4", "follow")  # bumps graph.version
        again = cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern,
                               form=form)
        # Same program, new entry: statistics changed, closures did not.
        assert again is plan
        assert cache.stats.misses == 2
        assert cache.stats.compiles == 1
        assert plan.resolution_for(graph) is not stale_resolution

    def test_respelled_pattern_hits_the_same_program(self):
        cache = PlanCache()
        graph = make_graph()
        original = make_pattern()
        respelled = make_pattern(name="cache-Q#ren", prefix="ren_")
        form = canonicalize(original)
        assert canonicalize(respelled).fingerprint == form.fingerprint
        plan = cache.plan_for(graph, form.fingerprint, ("qmatch",), original,
                              form=form)
        again = cache.plan_for(graph, form.fingerprint, ("qmatch",), respelled)
        assert again is plan
        assert cache.stats.compiles == 1

    def test_lru_eviction_is_counted_and_recovered_without_recompile(self):
        cache = PlanCache(capacity=1)
        graph = make_graph()
        follow = star_pattern("follow", "lru-follow")
        recom = star_pattern("recom", "lru-recom")
        follow_form, recom_form = canonicalize(follow), canonicalize(recom)
        plan = cache.plan_for(graph, follow_form.fingerprint, ("qmatch",), follow)
        cache.plan_for(graph, recom_form.fingerprint, ("qmatch",), recom)
        assert cache.stats.evictions == 1
        assert len(cache) == 1
        # The evicted fingerprint re-enters as a miss; with capacity 1 the
        # program registry also evicted it, so this one does recompile.
        again = cache.plan_for(graph, follow_form.fingerprint, ("qmatch",), follow)
        assert again is not plan
        assert again.fingerprint == plan.fingerprint

    def test_purge_stale_drops_mutated_epochs(self):
        cache = PlanCache()
        graph = make_graph()
        pattern = make_pattern()
        form = canonicalize(pattern)
        cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern, form=form)
        assert cache.purge_stale() == 0
        graph.add_edge("u4", "prod", "recom")
        assert cache.purge_stale() == 1
        assert len(cache) == 0

    def test_clear_forgets_programs(self):
        cache = PlanCache()
        graph = make_graph()
        pattern = make_pattern()
        form = canonicalize(pattern)
        cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern, form=form)
        cache.clear()
        cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern, form=form)
        assert cache.stats.compiles == 2

    def test_describe_payload(self):
        cache = PlanCache()
        graph = make_graph()
        pattern = make_pattern()
        form = canonicalize(pattern)
        cache.plan_for(graph, form.fingerprint, ("qmatch",), pattern, form=form)
        info = cache.describe()
        assert info["entries"] == 1
        assert info["hits"] == 0 and info["misses"] == 1
        assert form.fingerprint in info["programs"]
        assert info["programs"][form.fingerprint]["nodes"] == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestServicePlanCache:
    def test_first_evaluation_compiles_result_cache_hides_the_plan(self):
        graph = make_graph()
        with QueryService(graph, name="plans-service") as service:
            pattern = make_pattern()
            first = service.evaluate(pattern)
            assert not first.cached
            assert service.plans.stats.as_dict() == {
                "hits": 0, "misses": 1, "compiles": 1, "evictions": 0,
            }
            # A result-cache hit never consults the plan cache at all.
            second = service.evaluate(pattern)
            assert second.cached
            assert service.plans.stats.hits == 0
            # A result-cache miss on the same fingerprint hits the warm plan.
            service.cache.clear()
            third = service.evaluate(pattern)
            assert not third.cached
            assert third.answer == first.answer
            assert service.plans.stats.hits == 1
            assert service.plans.stats.compiles == 1

    def test_graph_mutation_rebinds_the_plan_without_recompiling(self):
        graph = make_graph()
        with QueryService(graph, name="plans-epoch") as service:
            pattern = make_pattern()
            service.evaluate(pattern)
            assert service.plans.stats.compiles == 1
            graph.add_edge("u4", "u1", "follow")
            service.evaluate(pattern)
            assert service.plans.stats.misses == 2
            assert service.plans.stats.compiles == 1

    def test_unique_fingerprints_compile_exactly_once(self):
        graph = make_graph()
        uniques = [make_pattern(), star_pattern("follow", "S1"),
                   star_pattern("recom", "S2")]
        respelled = make_pattern(name="cache-Q#ren", prefix="ren_")
        before = plan_compile_count()
        with QueryService(graph, name="plans-once") as service:
            for _ in range(3):
                for pattern in uniques + [respelled]:
                    service.evaluate(pattern)
                service.cache.clear()
            assert service.plans.stats.compiles == len(uniques)
        assert plan_compile_count() - before == len(uniques)

    def test_stats_snapshot_and_introspect_surface_plans(self):
        graph = make_graph()
        with QueryService(graph, name="plans-stats") as service:
            service.evaluate(make_pattern())
            snapshot = service.stats_snapshot()
            assert snapshot["plan_misses"] == 1
            assert snapshot["plan_compiles"] == 1
            intro = service.introspect()
            assert intro["plans"]["entries"] == 1
            programs = intro["plans"]["programs"]
            (info,) = programs.values()
            assert info["order"].count(">") == 2

    def test_use_plans_false_disables_the_plan_cache(self):
        graph = make_graph()
        pattern = make_pattern()
        with QueryService(graph, name="plans-off", use_plans=False) as off, \
             QueryService(graph, name="plans-on") as on:
            assert off.evaluate(pattern).answer == on.evaluate(pattern).answer
            assert off.plans.stats.as_dict() == {
                "hits": 0, "misses": 0, "compiles": 0, "evictions": 0,
            }

    def test_opaque_engine_disables_plans(self):
        class OpaqueEngine:
            name = "opaque"

            def evaluate(self, pattern, graph, focus_restriction=None):
                return QMatch().evaluate(
                    pattern, graph, focus_restriction=focus_restriction
                )

        graph = make_graph()
        coordinator = PQMatch(num_workers=2, d=2, engine=OpaqueEngine())
        with QueryService(graph, coordinator, name="plans-opaque") as service:
            result = service.evaluate(make_pattern())
            assert service.plans.stats.misses == 0
            assert result.answer == QMatch().evaluate_answer(make_pattern(), graph)


class TestWorkerPlanCache:
    def test_worker_cache_is_a_process_singleton(self):
        from repro.plan import reset_worker_plan_cache

        reset_worker_plan_cache()
        cache = worker_plan_cache()
        assert worker_plan_cache() is cache
        reset_worker_plan_cache()
        assert worker_plan_cache() is not cache

    def test_process_pool_workers_compile_once_and_never_rebuild(self):
        graph = make_graph()
        patterns = [make_pattern(), star_pattern("follow", "P1")]
        coordinator = PQMatch(num_workers=2, d=2, engine=QMatch(),
                              executor="process")
        with QueryService(graph, coordinator, name="plans-pool") as service:
            baseline = {
                pattern.name: QMatch().evaluate_answer(pattern, graph)
                for pattern in patterns
            }
            first = service.evaluate_many(patterns)
            service.cache.clear()
            second = service.evaluate_many(patterns)
            for result, pattern in zip(first, patterns):
                assert set(result.answer) == baseline[pattern.name]
            assert [r.answer for r in first] == [r.answer for r in second]

            executor = coordinator.executor
            assert service.worker_rebuilds == 0
            # Round one: every (worker, fingerprint) pair misses and compiles;
            # round two is all hits. Compiles are bounded by workers×uniques.
            assert executor.last_worker_plan_hits > 0
            assert 0 < executor.last_worker_plan_compiles <= 2 * len(patterns)
            # A worker that serves several fragments misses once per fragment
            # graph but compiles each program only once (program reuse).
            assert executor.last_worker_plan_misses >= executor.last_worker_plan_compiles

            pool_intro = service.introspect()["pool"]
            assert pool_intro["worker_plan_hits"] == executor.last_worker_plan_hits
            assert pool_intro["worker_plan_compiles"] == (
                executor.last_worker_plan_compiles
            )
