"""Concurrency stress: submit/apply_delta/close interleaved across threads.

The property under load is **epoch atomicity**: every served answer reflects
the fleet strictly before or strictly after any delta batch — never a torn
read where one shard answered pre-delta and another post-delta.  The fixture
graph makes a torn read *observable*: one delta batch changes the answer on
BOTH islands at once, so the only legal answers are the full pre-set and the
full post-set; any mix means a shard was consulted across an epoch boundary.

``ThreadHarness`` (tests/fixtures.py) barrier-starts every worker and joins
with a deadline, so a deadlock fails the test with named culprits instead of
hanging pytest.
"""

from __future__ import annotations

import threading

import pytest

from fixtures import FakeClock, ThreadHarness, run_threads
from repro.delta import GraphDelta
from repro.graph import PropertyGraph
from repro.patterns import PatternBuilder
from repro.serve import AdmissionConfig, ShardedService
from repro.utils.errors import Overloaded, ServiceError


def _islands_graph(chain=6):
    graph = PropertyGraph("two-islands")
    for island in ("a", "b"):
        prev = None
        for index in range(chain):
            node = f"{island}{index}"
            graph.add_node(node, "person")
            if prev is not None:
                graph.add_edge(prev, node, "follow")
            prev = node
    return graph


def _islands_fleet(**kwargs):
    graph = _islands_graph()
    partition = {node: (0 if str(node).startswith("a") else 1) for node in graph.nodes()}
    return ShardedService(graph, num_shards=2, d=2, partition=partition, **kwargs)


def _two_followees_pattern():
    return (
        PatternBuilder("two-followees")
        .focus("xo", "person")
        .node("z", "person")
        .edge("xo", "z", "follow", at_least=2)
        .build()
    )


# Chain graphs give every node exactly one followee, so "≥ 2 followees" is
# empty; ONE delta batch then gives a0 and b0 their second followee at once.
PRE = frozenset()
POST = frozenset({"a0", "b0"})
EPOCH_DELTA = GraphDelta.build(
    edge_inserts=[("a0", "a2", "follow"), ("b0", "b2", "follow")]
)


# ---------------------------------------------------------------------------
# The headline stress: 8 threads, answers are pre- or post-delta, never a mix
# ---------------------------------------------------------------------------


def test_interleaved_submit_evaluate_delta_never_tears_an_epoch():
    fleet = _islands_fleet(admission=AdmissionConfig(max_pending=4096))
    pattern = _two_followees_pattern()
    observed = set()
    observed_lock = threading.Lock()

    def record(answer):
        assert answer in (PRE, POST), f"torn epoch: {sorted(map(repr, answer))}"
        with observed_lock:
            observed.add(answer)

    def submitter():
        for _ in range(25):
            try:
                future = fleet.submit(pattern)
            except Overloaded:
                continue
            record(future.result(timeout=30.0).answer)

    def evaluator():
        for _ in range(25):
            record(fleet.evaluate(pattern).answer)

    def mutator():
        for _ in range(12):
            inverse = fleet.apply_delta(EPOCH_DELTA)
            fleet.apply_delta(inverse)
            fleet.check_invariants()

    try:
        # 6 submitters + 1 direct evaluator + 1 mutator = 8 threads.
        run_threads([submitter] * 6 + [evaluator, mutator], timeout=120.0)
    finally:
        fleet.close()
    # Both epochs were actually observed (the interleaving did something),
    # and the cache/vector machinery never served a third answer.
    assert PRE in observed
    fleet.check_invariants()


def test_submitters_racing_close_resolve_or_refuse_cleanly():
    fleet = _islands_fleet()
    pattern = _two_followees_pattern()
    resolved = []
    refused = []
    lock = threading.Lock()
    ready = threading.Barrier(9, timeout=30.0)

    def submitter():
        ready.wait()
        for _ in range(40):
            try:
                future = fleet.submit(pattern)
            except (ServiceError, Overloaded):
                with lock:
                    refused.append(1)
                return
            result = future.result(timeout=30.0)
            with lock:
                resolved.append(result.answer)

    def closer():
        ready.wait()
        fleet.close()

    run_threads([submitter] * 8 + [closer], timeout=120.0)
    # Every submit either produced a real pre-close answer or refused loudly;
    # nothing hung and nothing returned garbage.
    assert all(answer == PRE for answer in resolved)
    assert fleet.admission.closed
    with pytest.raises(ServiceError):
        fleet.submit(pattern)


def test_concurrent_identical_submits_share_fanouts():
    fleet = _islands_fleet(admission=AdmissionConfig(max_pending=4096))
    pattern = _two_followees_pattern()

    def submitter():
        for _ in range(20):
            try:
                future = fleet.submit(pattern)
            except Overloaded:
                continue
            assert future.result(timeout=30.0).answer == PRE

    try:
        run_threads([submitter] * 8, timeout=120.0)
    finally:
        fleet.close()
    # The vector never moved, so at most one fan-out can ever have computed;
    # everything else was L1 hits or in-flight dedup.
    assert fleet.stats.fanout_rounds <= 1
    assert fleet.stats.deduplicated + fleet.cache.stats.hits >= 1


# ---------------------------------------------------------------------------
# The harness itself (a test-archetype PR tests its own instruments)
# ---------------------------------------------------------------------------


def test_fake_clock_advances_monotonically_and_thread_safely():
    clock = FakeClock(start=100.0)
    assert clock() == 100.0

    def advancer():
        for _ in range(1000):
            clock.advance(0.001)

    run_threads([advancer] * 4, timeout=30.0)
    assert clock() == pytest.approx(104.0)
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_thread_harness_reraises_worker_failures():
    def failing():
        raise AssertionError("worker-level failure")

    with pytest.raises(AssertionError, match="worker-level failure"):
        run_threads([failing, lambda: None], timeout=30.0)


def test_thread_harness_names_stuck_threads_instead_of_hanging():
    release = threading.Event()

    def stuck():
        release.wait(timeout=30.0)

    harness = ThreadHarness([stuck], name="stuck-demo").start()
    with pytest.raises(AssertionError, match="stuck-demo-0"):
        harness.join(timeout=0.2)
    release.set()
    harness.join(timeout=30.0)
