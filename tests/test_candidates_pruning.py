"""Tests for candidate filtering (FilterCandidate) and the pruning heuristics."""

from __future__ import annotations

import pytest

from repro.matching import (
    EnumMatcher,
    build_candidate_index,
    candidate_potential,
    label_candidates,
    potential_ordering,
)
from repro.patterns import PatternBuilder
from repro.utils import WorkCounter

from fixtures import build_q3


class TestCandidateIndex:
    def test_example5_upper_bound_pruning(self, paper_g1, pattern_q3):
        """Example 5 of the paper: x1 is removed from C(xo) because U(x1, e) = 1 < 2."""
        positive = pattern_q3.pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        assert "x1" not in index.candidate_set("xo")
        assert {"x2", "x3"} <= index.candidate_set("xo")
        assert index.pruned >= 1

    def test_upper_bounds_recorded(self, paper_g1, pattern_q3):
        positive = pattern_q3.pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        edge = next(e for e in positive.edges() if e.label == "follow")
        assert index.upper_bound(edge.key, "x3") == 3
        assert index.upper_bound(edge.key, "x2") == 2

    def test_simulation_filter_is_tighter(self, small_pokec, dataset_q1):
        positive = dataset_q1.pi()
        with_simulation = build_candidate_index(positive, small_pokec, use_simulation=True)
        without = build_candidate_index(positive, small_pokec, use_simulation=False)
        for node in positive.nodes():
            assert with_simulation.candidate_set(node) <= without.candidate_set(node)

    def test_filters_never_drop_true_matches(self, paper_g1, pattern_q2):
        """Soundness: candidates of the focus always contain the real answer."""
        answer = EnumMatcher().evaluate_answer(pattern_q2, paper_g1)
        for use_simulation in (True, False):
            index = build_candidate_index(pattern_q2, paper_g1, use_simulation=use_simulation)
            assert answer <= index.candidate_set("xo")

    def test_is_empty(self, paper_g1):
        pattern = (
            PatternBuilder()
            .focus("x", "person")
            .node("m", "missing_label")
            .edge("x", "m", "follow")
            .build()
        )
        index = build_candidate_index(pattern, paper_g1, use_simulation=False)
        assert index.is_empty()

    def test_counter_accumulates_pruned(self, paper_g1, pattern_q3):
        counter = WorkCounter()
        build_candidate_index(pattern_q3.pi(), paper_g1, use_simulation=False, counter=counter)
        assert counter.candidates_pruned >= 1


class TestGlobalPruneCheck:
    def test_lemma12_failure_when_too_few_candidates(self, paper_g1):
        """With p = 4, C(z1) has only 3 recommenders left: no match can exist."""
        positive = build_q3(p=4).pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        assert not index.global_prune_check()
        # And indeed the answer is empty.
        assert EnumMatcher().evaluate_answer(build_q3(p=4), paper_g1) == set()

    def test_lemma12_passes_when_enough_candidates(self, paper_g1):
        positive = build_q3(p=2).pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        assert index.global_prune_check()


class TestPotential:
    def test_potential_prefers_candidates_with_headroom(self, paper_g1, pattern_q3):
        positive = pattern_q3.pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        score_x3 = candidate_potential(positive, paper_g1, index, "xo", "x3")
        score_x2 = candidate_potential(positive, paper_g1, index, "xo", "x2")
        # x3 has three follow children with recom edges vs x2's two, so more headroom.
        assert score_x3 > score_x2

    def test_potential_ordering_is_sorted(self, paper_g1, pattern_q3):
        positive = pattern_q3.pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        ordering = potential_ordering(positive, paper_g1, index)
        for node in positive.nodes():
            assert set(ordering[node]) == index.candidate_set(node)
        assert ordering["xo"][0] == "x3"

    def test_ordering_with_restriction(self, paper_g1, pattern_q3):
        positive = pattern_q3.pi()
        index = build_candidate_index(positive, paper_g1, use_simulation=False)
        ordering = potential_ordering(
            positive, paper_g1, index, restrict_to={"xo": {"x2"}}
        )
        assert ordering["xo"] == ["x2"]

    def test_potential_of_leaf_node(self, paper_g1, pattern_q2):
        index = build_candidate_index(pattern_q2, paper_g1, use_simulation=False)
        score = candidate_potential(pattern_q2, paper_g1, index, "redmi", "redmi")
        assert score > 0.0

    def test_label_candidates_baseline(self, paper_g1, pattern_q2):
        candidates = label_candidates(pattern_q2, paper_g1)
        assert candidates["redmi"] == {"redmi"}
        assert len(candidates["xo"]) == 8
