"""Tests for the merged undirected CSR and its frontier-array BFS."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph, nodes_within_hops, random_labeled_graph
from repro.index import GraphIndex, merge_undirected
from repro.utils.errors import NodeNotFoundError

from fixtures import build_paper_g1


def _grid_graph(width: int = 4, height: int = 4) -> PropertyGraph:
    graph = PropertyGraph("grid")
    for x in range(width):
        for y in range(height):
            graph.add_node((x, y), "cell")
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                graph.add_edge((x, y), (x + 1, y), "right")
            if y + 1 < height:
                graph.add_edge((x, y), (x, y + 1), "up")
    return graph


class TestMergeUndirected:
    def test_rows_are_sorted_and_deduplicated(self):
        graph = PropertyGraph("multi")
        for node in "abc":
            graph.add_node(node, "n")
        # a and b are connected by two labels and in both directions: the
        # merged view must store the pair once.
        graph.add_edge("a", "b", "x")
        graph.add_edge("a", "b", "y")
        graph.add_edge("b", "a", "x")
        graph.add_edge("c", "a", "x")
        snapshot = GraphIndex.build(graph)
        merged = snapshot.neighborhoods()
        a = snapshot.node_id("a")
        row = list(merged.neighbors_ids(a))
        assert row == sorted(row)
        assert snapshot.to_nodes(row) == {"b", "c"}
        assert merged.degree(a) == 2

    def test_merged_matches_graph_neighbors_everywhere(self):
        graph = build_paper_g1()
        snapshot = GraphIndex.build(graph)
        merged = snapshot.neighborhoods()
        for node in graph.nodes():
            dense = snapshot.node_id(node)
            assert snapshot.to_nodes(merged.neighbors_ids(dense)) == graph.neighbors(node)

    def test_lazy_build_is_cached(self):
        snapshot = GraphIndex.build(build_paper_g1())
        assert snapshot.neighborhoods() is snapshot.neighborhoods()

    def test_direct_merge_equals_snapshot_view(self):
        snapshot = GraphIndex.build(build_paper_g1())
        direct = merge_undirected(snapshot.out, snapshot.inc)
        cached = snapshot.neighborhoods()
        assert list(direct.indptr) == list(cached.indptr)
        assert list(direct.indices) == list(cached.indices)


class TestFrontierBFS:
    @pytest.mark.parametrize("hops", [0, 1, 2, 3, 10])
    def test_matches_dict_bfs_on_grid(self, hops):
        graph = _grid_graph()
        snapshot = GraphIndex.build(graph)
        merged = snapshot.neighborhoods()
        for node in graph.nodes():
            expected = nodes_within_hops(graph, node, hops)
            reached = merged.nodes_within_hops_ids(snapshot.node_id(node), hops)
            assert snapshot.to_nodes(reached) == expected

    def test_matches_dict_bfs_on_random_graphs(self):
        for seed in (0, 1, 2):
            graph = random_labeled_graph(
                num_nodes=40, edge_probability=0.08, node_labels=["a", "b"],
                edge_labels=["e", "f"], seed=seed,
            )
            snapshot = GraphIndex.build(graph)
            merged = snapshot.neighborhoods()
            for node in graph.nodes():
                for hops in (1, 2):
                    assert snapshot.to_nodes(
                        merged.nodes_within_hops_ids(snapshot.node_id(node), hops)
                    ) == nodes_within_hops(graph, node, hops)

    def test_scratch_buffer_is_reset_between_calls(self):
        graph = _grid_graph()
        snapshot = GraphIndex.build(graph)
        merged = snapshot.neighborhoods()
        scratch = bytearray(snapshot.num_nodes)
        for node in graph.nodes():
            expected = nodes_within_hops(graph, node, 2)
            reached = merged.nodes_within_hops_ids(
                snapshot.node_id(node), 2, visited=scratch
            )
            assert snapshot.to_nodes(reached) == expected
        assert not any(scratch)

    def test_result_starts_with_source_in_bfs_order(self):
        graph = _grid_graph()
        snapshot = GraphIndex.build(graph)
        merged = snapshot.neighborhoods()
        source = snapshot.node_id((0, 0))
        reached = merged.nodes_within_hops_ids(source, 2)
        assert reached[0] == source
        # Discovery order is breadth-first: distances are non-decreasing.
        from repro.graph import bfs_levels

        levels = bfs_levels(graph, (0, 0), directed=False)
        order = [levels[snapshot.node_of(i)] for i in reached]
        assert order == sorted(order)

    def test_snapshot_parity_wrapper(self):
        graph = build_paper_g1()
        snapshot = GraphIndex.build(graph)
        for node in graph.nodes():
            assert snapshot.nodes_within_hops(node, 2) == nodes_within_hops(graph, node, 2)
        with pytest.raises(NodeNotFoundError):
            snapshot.nodes_within_hops("ghost", 1)


class TestSortedRowsAndCompiledRows:
    def test_csr_rows_are_sorted(self):
        graph = random_labeled_graph(
            num_nodes=30, edge_probability=0.12, node_labels=["a"],
            edge_labels=["e", "f"], seed=3,
        )
        snapshot = GraphIndex.build(graph)
        for csr in (snapshot.out, snapshot.inc):
            for label_id in range(csr.num_labels):
                for node_id in range(csr.num_nodes):
                    indices, start, end = csr.row(label_id, node_id)
                    row = list(indices[start:end])
                    assert row == sorted(row)

    def test_compiled_rows_match_graph_adjacency(self):
        graph = build_paper_g1()
        snapshot = GraphIndex.build(graph)
        for label in ("follow", "recom", "bad_rating"):
            label_id = snapshot.edge_label_id(label)
            out_rows = snapshot.compiled_rows(False, label_id)
            in_rows = snapshot.compiled_rows(True, label_id)
            for node in graph.nodes():
                successors = graph.successors(node, label)
                predecessors = graph.predecessors(node, label)
                assert out_rows.get(node, frozenset()) == successors
                assert in_rows.get(node, frozenset()) == predecessors
            # Memoised per (direction, label).
            assert snapshot.compiled_rows(False, label_id) is out_rows
