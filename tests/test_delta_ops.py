"""GraphDelta batches: validation, application order, inverses, versioning."""

from __future__ import annotations

import pickle

import pytest

from repro.delta import ABSENT, GraphDelta, apply_delta
from repro.graph import PropertyGraph
from repro.utils.errors import DeltaError

from fixtures import build_paper_g1


def snapshot_state(graph: PropertyGraph):
    """A comparable rendering of the graph's structure and attributes."""
    return (
        {node: graph.node_label(node) for node in graph.nodes()},
        sorted(graph.edges(), key=str),
        {node: dict(graph.node_attrs(node)) for node in graph.nodes() if graph.node_attrs(node)},
    )


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class TestBuild:
    def test_build_coerces_node_insert_forms(self):
        delta = GraphDelta.build(
            node_inserts=[("a", "person"), ("b", "person", {"age": 3})]
        )
        assert delta.node_inserts == (
            ("a", "person", ()),
            ("b", "person", (("age", 3),)),
        )

    def test_build_freezes_attr_order(self):
        delta = GraphDelta.build(node_inserts=[("a", "person", {"z": 1, "a": 2})])
        assert delta.node_inserts[0][2] == (("a", 2), ("z", 1))

    def test_size_and_structural(self):
        delta = GraphDelta.build(
            edge_inserts=[("a", "b", "follow")], attr_sets=[("a", "k", 1)]
        )
        assert delta.size == 2
        assert delta.is_structural()
        attr_only = GraphDelta.build(attr_sets=[("a", "k", 1)])
        assert not attr_only.is_structural()
        assert GraphDelta().is_empty()

    def test_touched_nodes_excludes_attr_sets(self):
        delta = GraphDelta.build(
            edge_inserts=[("a", "b", "follow")],
            edge_deletes=[("c", "d", "recom")],
            attr_sets=[("e", "k", 1)],
        )
        assert delta.touched_nodes() == {"a", "b", "c", "d"}

    def test_delta_is_picklable(self):
        delta = GraphDelta.build(
            node_inserts=[("a", "person", {"k": 1})],
            attr_sets=[("a", "k", ABSENT)],
        )
        clone = pickle.loads(pickle.dumps(delta))
        assert clone == delta
        # The ABSENT sentinel must round-trip to the singleton: identity is
        # how apply_delta distinguishes "remove" from "set to some value".
        assert clone.attr_sets[0][2] is ABSENT


# ---------------------------------------------------------------------------
# Validation (the graph must be untouched on rejection)
# ---------------------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize(
        "delta",
        [
            GraphDelta.build(node_inserts=[("x1", "person")]),  # exists
            GraphDelta.build(node_inserts=[("n", "person"), ("n", "person")]),
            GraphDelta.build(node_deletes=["missing"]),
            GraphDelta.build(node_deletes=["x1", "x1"]),
            GraphDelta.build(node_inserts=[("n", "person")], node_deletes=["n"]),
            GraphDelta.build(edge_inserts=[("x1", "v0", "follow")]),  # exists
            GraphDelta.build(
                edge_inserts=[("x1", "v1", "follow"), ("x1", "v1", "follow")]
            ),
            GraphDelta.build(edge_inserts=[("x1", "missing", "follow")]),
            GraphDelta.build(
                node_deletes=["v0"], edge_inserts=[("x1", "v0", "recom")]
            ),
            GraphDelta.build(edge_deletes=[("x1", "v1", "follow")]),  # missing
            GraphDelta.build(
                edge_deletes=[("x1", "v0", "follow"), ("x1", "v0", "follow")]
            ),
            GraphDelta.build(
                edge_inserts=[("x1", "v1", "follow")],
                edge_deletes=[("x1", "v1", "follow")],
            ),
            GraphDelta.build(node_deletes=["v0"], attr_sets=[("v0", "k", 1)]),
            GraphDelta.build(attr_sets=[("missing", "k", 1)]),
            GraphDelta.build(attr_sets=[("x1", 7, 1)]),  # non-string key
        ],
    )
    def test_rejected_batch_leaves_graph_untouched(self, delta):
        graph = build_paper_g1()
        before_state = snapshot_state(graph)
        before_version = graph.version
        with pytest.raises(DeltaError):
            apply_delta(graph, delta)
        assert snapshot_state(graph) == before_state
        assert graph.version == before_version

    def test_insert_edge_onto_inserted_node_is_valid(self):
        graph = build_paper_g1()
        inverse = apply_delta(
            graph,
            GraphDelta.build(
                node_inserts=[("n", "person")], edge_inserts=[("x1", "n", "follow")]
            ),
        )
        assert graph.has_edge("x1", "n", "follow")
        apply_delta(graph, inverse)
        assert not graph.has_node("n")


# ---------------------------------------------------------------------------
# Application and versioning
# ---------------------------------------------------------------------------


class TestApply:
    def test_structural_batch_bumps_version_once(self):
        graph = build_paper_g1()
        before = graph.version
        apply_delta(
            graph,
            GraphDelta.build(
                node_inserts=[("n", "person")],
                edge_inserts=[("x1", "n", "follow"), ("n", "redmi", "recom")],
                edge_deletes=[("x1", "v0", "follow")],
            ),
        )
        assert graph.version == before + 1

    def test_attribute_only_batch_does_not_bump_version(self):
        graph = build_paper_g1()
        before = graph.version
        inverse = apply_delta(graph, GraphDelta.build(attr_sets=[("x1", "k", 1)]))
        assert graph.version == before
        assert graph.node_attrs("x1") == {"k": 1}
        apply_delta(graph, inverse)
        assert graph.version == before
        assert "k" not in graph.node_attrs("x1")

    def test_node_delete_cascades_incident_edges(self):
        graph = build_paper_g1()
        edges_before = graph.num_edges
        inverse = apply_delta(graph, GraphDelta.build(node_deletes=["v2"]))
        # v2 had two in-edges (x2, x3 follow) and one out-edge (recom redmi).
        assert graph.num_edges == edges_before - 3
        assert not graph.has_node("v2")
        # The inverse records the cascade: all three edges come back with it.
        assert len(inverse.edge_inserts) == 3
        apply_delta(graph, inverse)
        assert graph.num_edges == edges_before


class TestInverse:
    def test_inverse_restores_structure_and_attributes(self):
        graph = build_paper_g1()
        graph.set_node_attr("x1", "age", 30)
        before_state = snapshot_state(graph)
        delta = GraphDelta.build(
            node_inserts=[("n", "person", {"fresh": True})],
            node_deletes=["v4"],
            edge_inserts=[("x1", "n", "follow")],
            edge_deletes=[("x2", "v1", "follow")],
            attr_sets=[("x1", "age", 31), ("x2", "new_attr", "v")],
        )
        inverse = apply_delta(graph, delta)
        assert snapshot_state(graph) != before_state
        apply_delta(graph, inverse)
        assert snapshot_state(graph) == before_state

    def test_double_rollback_roundtrips(self):
        graph = build_paper_g1()
        delta = GraphDelta.build(edge_inserts=[("x1", "v1", "follow")])
        inverse = apply_delta(graph, delta)
        inverse_of_inverse = apply_delta(graph, inverse)
        apply_delta(graph, inverse_of_inverse)
        assert graph.has_edge("x1", "v1", "follow")

    def test_inverse_removes_attribute_that_did_not_exist(self):
        graph = build_paper_g1()
        inverse = apply_delta(graph, GraphDelta.build(attr_sets=[("x3", "k", 9)]))
        assert inverse.attr_sets == (("x3", "k", ABSENT),)
        apply_delta(graph, inverse)
        assert dict(graph.node_attrs("x3")) == {}

    def test_inverse_of_insert_plus_attr_on_inserted_node_is_valid(self):
        """Regression: the inverse of a batch that inserts a node and sets an
        attribute on it must not carry an attr op for the node it deletes —
        that inverse would fail its own validation."""
        graph = build_paper_g1()
        before_state = snapshot_state(graph)
        inverse = apply_delta(
            graph,
            GraphDelta.build(
                node_inserts=[("n", "person")], attr_sets=[("n", "k", 1)]
            ),
        )
        apply_delta(graph, inverse)  # must not raise
        assert snapshot_state(graph) == before_state

    def test_self_loop_cascade_is_recorded_once(self):
        """Regression: deleting a node with a self-loop recorded the loop in
        both cascade passes, producing an inverse its own validation rejects."""
        graph = build_paper_g1()
        graph.add_edge("x1", "x1", "follow")
        before_state = snapshot_state(graph)
        inverse = apply_delta(graph, GraphDelta.build(node_deletes=["x1"]))
        assert inverse.edge_inserts.count(("x1", "x1", "follow")) == 1
        apply_delta(graph, inverse)  # must not raise
        assert snapshot_state(graph) == before_state

    def test_version_roundtrip_stays_monotone(self):
        graph = build_paper_g1()
        before = graph.version
        inverse = apply_delta(graph, GraphDelta.build(node_deletes=["v0"]))
        apply_delta(graph, inverse)
        # Rollback is just another batch: the counter moves forward, never back.
        assert graph.version == before + 2


class TestCollapseVersion:
    def test_collapse_is_monotone_and_idempotent(self):
        graph = PropertyGraph("collapse")
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        base = graph.version
        graph.add_edge("a", "b", "follow")
        graph.collapse_version(base)
        assert graph.version == base + 1
        graph.collapse_version(base)  # no-op: already at target
        assert graph.version == base + 1
        graph.collapse_version(base + 5)  # never moves the counter up
        assert graph.version == base + 1
