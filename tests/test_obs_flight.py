"""The flight recorder (:mod:`repro.obs.flight`) and its serving-tier feeds.

Unit contract first (bounded ring buffers, one global seq, disable knob,
JSON dump), then the wiring: query/delta/slow-query events from
``QueryService`` and ``ShardedService``, and — the regression this PR pins —
the shared cache's degradation **history**: two distinct fault kinds in one
process must both be retained, not just whichever happened last.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from fixtures import build_paper_g1, build_q2, build_q3
from repro.delta import GraphDelta
from repro.obs.flight import FlightRecorder
from repro.serve import ShardedService
from repro.service import QueryService


# ---------------------------------------------------------------------------
# Recorder unit contract
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_seq_is_monotone_across_kinds(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("query", fp="a")
        recorder.record("delta", size=1)
        recorder.record("query", fp="b")
        merged = recorder.events()
        assert [event.kind for event in merged] == ["query", "delta", "query"]
        assert [event.seq for event in merged] == [1, 2, 3]

    def test_per_kind_bounds_and_dropped(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(5):
            recorder.record("query", index=index)
        recorder.record("delta", size=1)
        queries = recorder.events("query")
        assert [event.data["index"] for event in queries] == [3, 4]
        # A query storm cannot evict the delta history.
        assert len(recorder.events("delta")) == 1
        assert recorder.dropped == 3

    def test_ad_hoc_kind_gets_its_own_buffer(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("degraded", reason="x")
        assert recorder.events("degraded")[0].data["reason"] == "x"

    def test_capacity_zero_disables(self):
        recorder = FlightRecorder(capacity=0)
        assert not recorder
        assert recorder.record("query", fp="a") is None
        assert len(recorder) == 0 and recorder.events() == ()

    def test_dump_json_roundtrips(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record("query", fingerprint="abc", answer=frozenset({1}))
        path = str(tmp_path / "flight.json")
        text = recorder.dump_json(path)
        on_disk = json.loads(open(path, encoding="utf-8").read())
        assert json.loads(text) == on_disk
        assert on_disk["events"]["query"][0]["fingerprint"] == "abc"

    def test_clear(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("query", fp="a")
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0


# ---------------------------------------------------------------------------
# QueryService feed
# ---------------------------------------------------------------------------


class TestServiceFeed:
    def test_query_events_record_computed_work_only(self):
        """One computed query → one event; the L1 hit stays off the recorder
        (the default hot path is two falsy checks, not an event per hit)."""
        with QueryService(build_paper_g1()) as service:
            pattern = build_q2()
            service.evaluate(pattern)
            service.evaluate(pattern)
            events = service.flight.events("query")
        assert [event.data["cache_route"] for event in events] == ["compute"]
        assert events[0].data["cached"] is False
        assert events[0].data["batch_size"] == 1

    def test_slow_query_events_when_threshold_crossed(self):
        with QueryService(
            build_paper_g1(), slow_query_threshold=0.0
        ) as service:
            service.evaluate(build_q2())
            slow = service.flight.events("slow_query")
        assert slow and slow[0].data["cache_route"] == "compute"

    def test_delta_events_record_index_route(self):
        with QueryService(build_paper_g1()) as service:
            service.evaluate(build_q2())
            service.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
            events = service.flight.events("delta")
        assert len(events) == 1
        assert events[0].data["index"] in ("refreshed", "rebuilt")

    def test_flight_in_introspection_and_disable_knob(self):
        with QueryService(build_paper_g1(), flight_capacity=0) as service:
            service.evaluate(build_q2())
            payload = service.introspect()
        assert payload["flight"]["capacity"] == 0
        assert payload["flight"]["recorded"] == 0


# ---------------------------------------------------------------------------
# ShardedService feed
# ---------------------------------------------------------------------------


class TestFleetFeed:
    def test_fleet_query_events_carry_fanout_and_route(self):
        with ShardedService(build_paper_g1(), num_shards=2) as fleet:
            pattern = build_q2()
            fleet.evaluate(pattern)
            fleet.evaluate(pattern)  # L1 hit — stays off the recorder
            events = fleet.flight.events("query")
            payload = fleet.introspect()
        assert [event.data["cache_route"] for event in events] == ["fanout"]
        assert [event.data["shard_fanout"] for event in events] == [2]
        assert payload["flight"]["recorded"] >= 1

    def test_fleet_delta_events_record_shard_routing(self):
        with ShardedService(build_paper_g1(), num_shards=2) as fleet:
            fleet.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
            events = fleet.flight.events("delta")
        assert len(events) == 1
        data = events[0].data
        assert data["structural"] is True
        assert data["shards_touched"] + data["shards_skipped"] == 2
        assert data["version"] == fleet.version_vector.key_text()


# ---------------------------------------------------------------------------
# Degradation history: two distinct fault kinds both retained (regression)
# ---------------------------------------------------------------------------


def test_two_distinct_fault_kinds_are_both_retained(tmp_path):
    """``last_degraded_reason`` alone forgets; the history and the flight

    recorder must hold BOTH a CRC mismatch and an embedded-key mismatch."""
    path = str(tmp_path / "shared.sqlite")
    with ShardedService(build_paper_g1(), num_shards=2, shared_cache=path) as producer:
        key_q2 = producer.evaluate(build_q2()).fingerprint
        producer.evaluate(build_q3(2))

    connection = sqlite3.connect(path)
    rows = connection.execute("SELECT cache_key, crc, payload FROM entries").fetchall()
    with connection:
        q2_rows = [row for row in rows if row[0].startswith(key_q2)]
        other_rows = [row for row in rows if not row[0].startswith(key_q2)]
        # Fault 1 on q2's row: flip a payload byte, CRC now lies.
        key, _crc, payload = q2_rows[0]
        mangled = bytes([payload[0] ^ 0xFF]) + payload[1:]
        connection.execute(
            "UPDATE entries SET payload = ? WHERE cache_key = ?", (mangled, key)
        )
        # Fault 2 on q3's row: transplant q2's pristine blob (CRC intact,
        # embedded key wrong).
        connection.execute(
            "UPDATE entries SET crc = ?, payload = ? WHERE cache_key = ?",
            (q2_rows[0][1], q2_rows[0][2], other_rows[0][0]),
        )
    connection.close()

    with ShardedService(build_paper_g1(), num_shards=2, shared_cache=path) as fleet:
        fleet.evaluate(build_q2())
        fleet.evaluate(build_q3(2))
        reasons = {entry["reason"] for entry in fleet.shared.degraded_reasons()}
        assert {"payload CRC mismatch", "embedded key mismatch"} <= reasons
        # The listener fed the same faults into the flight recorder, stamped.
        flight_reasons = {
            event.data["reason"] for event in fleet.flight.events("degraded")
        }
        assert {"payload CRC mismatch", "embedded key mismatch"} <= flight_reasons
        # And introspection exposes the ordered history.
        history = fleet.introspect()["shared_degraded"]
        assert [entry["reason"] for entry in history] == [
            entry["reason"] for entry in fleet.shared.degraded_reasons()
        ]


def test_degraded_history_is_bounded(tmp_path):
    from repro.serve import SharedResultCache

    cache = SharedResultCache(str(tmp_path / "s.sqlite"))
    for index in range(100):
        cache._note_degraded(f"synthetic {index}")
    reasons = cache.degraded_reasons()
    assert len(reasons) == 64
    assert reasons[-1]["reason"] == "synthetic 99"
    cache.close()


def test_broken_listener_never_breaks_degradation(tmp_path):
    from repro.serve import SharedResultCache

    cache = SharedResultCache(str(tmp_path / "s.sqlite"))
    cache.add_degraded_listener(lambda reason: (_ for _ in ()).throw(RuntimeError))
    cache._note_degraded("still fine")
    assert cache.last_degraded_reason == "still fine"
    cache.close()
