"""Unit tests for the compiled graph-index subsystem (``repro.index``)."""

from __future__ import annotations

import pickle

import pytest

from repro.graph import PropertyGraph, random_labeled_graph
from repro.index import GraphIndex, Interner, build_csr_pair, build_signatures
from repro.utils.errors import StaleIndexError

from fixtures import build_paper_g1


class TestInterner:
    def test_dense_ids_in_first_seen_order(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert len(interner) == 2
        assert interner.value_of(1) == "b"
        assert list(interner) == ["a", "b"]

    def test_get_returns_minus_one_for_unknown(self):
        interner = Interner(["x"])
        assert interner.get("x") == 0
        assert interner.get("missing") == -1
        assert "missing" not in interner
        with pytest.raises(KeyError):
            interner.id_of("missing")


class TestCSR:
    def test_rows_match_graph_adjacency(self):
        graph = random_labeled_graph(num_nodes=40, edge_probability=0.12, seed=3)
        index = GraphIndex.build(graph)
        for node in graph.nodes():
            node_id = index.node_id(node)
            for label in index.edge_labels:
                assert index.successors(node, label) == graph.successors(node, label)
                assert index.predecessors(node, label) == graph.predecessors(node, label)
                label_id = index.edge_label_id(label)
                assert index.out_degree_ids(node_id, label_id) == graph.out_degree(node, label)
                assert index.in_degree_ids(node_id, label_id) == graph.in_degree(node, label)
            assert index.out_degree_ids(node_id) == graph.out_degree(node)
            assert index.in_degree_ids(node_id) == graph.in_degree(node)

    def test_empty_graph(self):
        outgoing, incoming = build_csr_pair(0, 0, [])
        assert outgoing.num_nodes == 0 and incoming.num_nodes == 0
        graph = PropertyGraph("empty")
        index = GraphIndex.build(graph)
        assert index.num_nodes == 0
        assert index.nodes_with_label("anything") == set()


class TestSignatures:
    def test_bits_reflect_neighbourhoods(self):
        # 0 -[e0]-> 1 with node labels L0, L1.
        signatures = build_signatures(2, 2, [0, 1], [(0, 1, 0)])
        bit = signatures.bit(0, 1)  # edge label 0 toward node label 1
        assert signatures.out_sig[0] & bit
        assert not signatures.out_sig[1]
        assert signatures.in_sig[1] & signatures.bit(0, 0)
        assert signatures.satisfies(0, bit, 0)
        assert not signatures.satisfies(1, bit, 0)
        assert signatures.filter_ids([0, 1], bit, 0) == [0]

    def test_pattern_masks_soundness_on_paper_g1(self, pattern_q3):
        """Signature-filtered candidates still contain every simulation member."""
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        positive = pattern_q3.pi().stratified().graph
        from repro.graph.simulation import dual_simulation_relation

        relation = dual_simulation_relation(positive, graph, use_index=False)
        filtered = index.label_candidates_ids(positive, dual=True)
        for pattern_node, members in relation.items():
            kept = index.to_nodes(filtered[pattern_node])
            assert members <= kept

    def test_mask_is_impossible_for_absent_labels(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        pattern = PropertyGraph("pat")
        pattern.add_node("u", "person")
        pattern.add_node("w", "no_such_label")
        pattern.add_edge("u", "w", "follow")
        masks = index.pattern_masks(pattern, dual=True)
        assert masks["u"] is None
        candidates = index.label_candidates_ids(pattern, dual=True)
        assert candidates["u"] == set()


class TestSnapshot:
    def test_for_graph_caches_until_mutation(self):
        graph = build_paper_g1()
        first = GraphIndex.for_graph(graph)
        assert GraphIndex.for_graph(graph) is first
        graph.add_node("new", "person")
        assert first.is_stale()
        second = GraphIndex.for_graph(graph)
        assert second is not first
        assert not second.is_stale()
        assert "new" in second.nodes_with_label("person")

    def test_ensure_fresh_raises_on_stale(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        index.ensure_fresh()
        graph.remove_edge("x1", "v0", "follow")
        with pytest.raises(StaleIndexError):
            index.ensure_fresh()

    def test_version_ignores_attribute_updates(self):
        graph = build_paper_g1()
        index = GraphIndex.for_graph(graph)
        graph.set_node_attr("x1", "city", "prague")
        graph.add_node("x1", "person", vip=True)  # same label: attrs only
        assert not index.is_stale()

    def test_label_count_and_membership(self):
        graph = build_paper_g1()
        index = GraphIndex.build(graph)
        person_id = index.node_label_id("person")
        assert index.label_count(person_id) == 8
        assert index.nodes_with_label("person") == graph.nodes_with_label("person")
        assert index.nodes_with_label("Redmi_2A") == {"redmi"}

    def test_count_out_with_label_matches_dict_scan(self):
        graph = random_labeled_graph(num_nodes=30, edge_probability=0.15, seed=9)
        index = GraphIndex.build(graph)
        for node in graph.nodes():
            node_id = index.node_id(node)
            for edge_label in index.edge_labels:
                for target_label in index.node_labels:
                    expected = sum(
                        1
                        for child in graph.successors(node, edge_label)
                        if graph.node_label(child) == target_label
                    )
                    actual = index.count_out_with_label(
                        node_id,
                        index.edge_label_id(edge_label),
                        index.node_label_id(target_label),
                    )
                    assert actual == expected

    def test_pickling_a_graph_drops_the_cached_snapshot(self):
        graph = build_paper_g1()
        GraphIndex.for_graph(graph)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert clone.cached_index() is None
        assert clone.version == graph.version
