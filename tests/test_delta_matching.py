"""Graph-update incremental matching: AFF locality and answer maintenance.

``inc_qmatch_delta`` must return exactly ``Q(xo, G_post)`` while verifying
only focus candidates inside the affected area — the graph-update analogue of
the paper's Proposition 6 bound (verifications ≤ |AFF|).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.delta import GraphDelta, apply_delta, inc_qmatch_delta
from repro.delta.matching import affected_area
from repro.graph import PropertyGraph
from repro.matching import QMatch
from repro.patterns import PatternBuilder

from fixtures import build_paper_g1, build_paper_g2, build_q2, build_q3, build_q4

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def maintain(pattern, graph, delta, inverse, cached):
    """Run the maintenance and cross-check the answer against a cold engine."""
    answer, stats = inc_qmatch_delta(pattern, graph, delta, cached, inverse=inverse)
    cold = frozenset(QMatch().evaluate_answer(pattern, graph))
    assert answer == cold, f"maintained {set(answer)} != cold {set(cold)}"
    assert stats.verifications <= max(stats.aff_size, 1), (
        f"{stats.verifications} verifications > |AFF| = {stats.aff_size}"
    )
    return answer, stats


# ---------------------------------------------------------------------------
# Affected area
# ---------------------------------------------------------------------------


class TestAffectedArea:
    def test_insert_area_is_the_dhop_ball_of_the_endpoints(self):
        graph = build_paper_g1()
        delta = GraphDelta.insert_edge("x1", "v1", "follow")
        inverse = apply_delta(graph, delta)
        area = affected_area(graph, delta, 1, inverse=inverse)
        # 1 hop around {x1, v1} in the post-delta graph (undirected).
        assert area == {"x1", "v0", "v1", "x2", "redmi"}

    def test_delete_area_covers_the_severed_side(self):
        graph = build_paper_g1()
        delta = GraphDelta.delete_edge("x1", "v0", "follow")
        inverse = apply_delta(graph, delta)
        area = affected_area(graph, delta, 1, inverse=inverse)
        # x1 is isolated post-delta, but it used to reach v0 through the
        # removed edge — the overlay keeps both endpoints' balls in the area.
        assert {"x1", "v0", "redmi"} <= area

    def test_deleted_nodes_seed_but_do_not_join_the_area(self):
        graph = build_paper_g1()
        delta = GraphDelta.build(node_deletes=["v0"])
        inverse = apply_delta(graph, delta)
        area = affected_area(graph, delta, 1, inverse=inverse)
        assert "v0" not in area
        # Its former neighbours are affected through the cascade overlay.
        assert "x1" in area and "redmi" in area

    def test_radius_zero_area_is_the_touched_set(self):
        graph = build_paper_g1()
        delta = GraphDelta.insert_edge("x2", "v3", "follow")
        inverse = apply_delta(graph, delta)
        assert affected_area(graph, delta, 0, inverse=inverse) == {"x2", "v3"}

    def test_empty_delta_has_empty_area(self):
        graph = build_paper_g1()
        assert affected_area(graph, GraphDelta(), 2) == set()


# ---------------------------------------------------------------------------
# Answer maintenance on the paper's ground-truth examples
# ---------------------------------------------------------------------------


class TestIncQMatchDelta:
    def test_insert_creates_a_match(self):
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        assert cached == {"x2"}  # Example 3 of the paper
        # Give x1 a second recommending followee: x1 joins the answer.
        delta = GraphDelta.insert_edge("x1", "v1", "follow")
        inverse = apply_delta(graph, delta)
        answer, stats = maintain(pattern, graph, delta, inverse, cached)
        assert answer == {"x1", "x2"}
        assert stats.added == {"x1"} and stats.removed == set()

    def test_delete_destroys_a_match(self):
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        delta = GraphDelta.delete_edge("x2", "v1", "follow")
        inverse = apply_delta(graph, delta)
        answer, stats = maintain(pattern, graph, delta, inverse, cached)
        assert answer == set()
        assert stats.removed == {"x2"}

    def test_negated_edge_insert_destroys_a_match(self):
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        # x2 starts following the bad-rating reviewer: the negated branch of
        # Q3 now matches, so x2 falls out of the answer.
        delta = GraphDelta.insert_edge("x2", "v4", "follow")
        inverse = apply_delta(graph, delta)
        answer, _stats = maintain(pattern, graph, delta, inverse, cached)
        assert answer == set()

    def test_node_delete_maintains_through_the_cascade(self):
        graph = build_paper_g2()
        pattern = build_q4(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        assert cached == {"x5", "x6"}  # Example 4 of the paper
        delta = GraphDelta.build(node_deletes=["v8"])  # x6 loses one advisee
        inverse = apply_delta(graph, delta)
        answer, _stats = maintain(pattern, graph, delta, inverse, cached)
        assert answer == {"x5"}

    def test_universal_quantifier_maintained(self):
        graph = build_paper_g1()
        pattern = build_q2()
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        assert cached == {"x1", "x2"}  # Example 3 of the paper
        delta = GraphDelta.insert_edge("x1", "v4", "follow")
        inverse = apply_delta(graph, delta)
        answer, _stats = maintain(pattern, graph, delta, inverse, cached)
        assert answer == {"x2"}

    def test_attribute_only_delta_carries_everything(self):
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        delta = GraphDelta.build(attr_sets=[("x2", "age", 30)])
        inverse = apply_delta(graph, delta)
        answer, stats = inc_qmatch_delta(pattern, graph, delta, cached, inverse=inverse)
        assert answer == cached
        assert stats.verifications == 0
        assert stats.carried == len(cached)

    def test_far_away_churn_carries_the_cached_matches(self):
        graph = build_paper_g2()
        pattern = build_q4(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        # Churn confined to x4's corner: v5–v6 edges are ≥ 2 hops from x6's
        # advisees only through shared hubs, so x6 may still verify — but the
        # answer must be exact either way, and anything outside AFF carries.
        delta = GraphDelta.insert_edge("v5", "v6", "advisor")
        inverse = apply_delta(graph, delta)
        answer, stats = maintain(pattern, graph, delta, inverse, cached)
        assert answer == {"x5", "x6"}
        assert stats.carried == len(cached - stats.affected_area)

    def test_rollback_restores_the_cached_answer(self):
        graph = build_paper_g1()
        pattern = build_q3(p=2)
        cached = frozenset(QMatch().evaluate_answer(pattern, graph))
        delta = GraphDelta.insert_edge("x1", "v1", "follow")
        inverse = apply_delta(graph, delta)
        forward, _ = inc_qmatch_delta(pattern, graph, delta, cached, inverse=inverse)
        inverse_of_inverse = apply_delta(graph, inverse)
        restored, _ = inc_qmatch_delta(
            pattern, graph, inverse, forward, inverse=inverse_of_inverse
        )
        assert restored == cached


# ---------------------------------------------------------------------------
# The property: maintained answer == cold answer on random graphs and churn
# ---------------------------------------------------------------------------

NODE_LABELS = ["person", "product"]
EDGE_LABELS = ["follow", "recom"]


def _star_pattern(p: int):
    return (
        PatternBuilder(f"hyp-star-{p}")
        .focus("xo", "person")
        .node("z", "person")
        .edge("xo", "z", "follow", at_least=p)
        .build()
    )


@st.composite
def churn_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=50_000))
    rng = random.Random(seed)
    num_nodes = draw(st.integers(min_value=4, max_value=14))
    graph = PropertyGraph(f"hyp-churn-{seed}")
    for node in range(num_nodes):
        graph.add_node(node, "person" if rng.random() < 0.8 else "product")
    for _ in range(draw(st.integers(min_value=3, max_value=30))):
        source, target = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if source != target:
            label = rng.choice(EDGE_LABELS)
            if not graph.has_edge(source, target, label):
                graph.add_edge(source, target, label)

    edge_inserts, edge_deletes = [], []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if rng.random() < 0.5:
            source, target = rng.randrange(num_nodes), rng.randrange(num_nodes)
            label = rng.choice(EDGE_LABELS)
            edge = (source, target, label)
            if (
                source != target
                and not graph.has_edge(source, target, label)
                and edge not in edge_inserts
            ):
                edge_inserts.append(edge)
        else:
            existing = sorted(set(graph.edges()) - set(edge_deletes), key=str)
            if existing:
                edge_deletes.append(rng.choice(existing))
    node_deletes = []
    if draw(st.booleans()):
        victim = rng.randrange(num_nodes)
        incident = lambda e: victim in (e[0], e[1])  # noqa: E731
        if not any(incident(e) for e in edge_inserts + edge_deletes):
            node_deletes.append(victim)
    delta = GraphDelta.build(
        node_deletes=node_deletes,
        edge_inserts=edge_inserts,
        edge_deletes=edge_deletes,
    )
    p = draw(st.integers(min_value=1, max_value=2))
    return graph, delta, _star_pattern(p)


@settings(**SETTINGS)
@given(case=churn_cases())
def test_maintained_answer_equals_cold_answer(case):
    graph, delta, pattern = case
    if delta.is_empty():
        return
    cached = frozenset(QMatch().evaluate_answer(pattern, graph))
    inverse = apply_delta(graph, delta)
    answer, stats = inc_qmatch_delta(pattern, graph, delta, cached, inverse=inverse)
    assert answer == frozenset(QMatch().evaluate_answer(pattern, graph))
    assert stats.verifications <= max(stats.aff_size, 1)
