"""AdmissionQueue: bounds, policies, priorities, drain and close semantics."""

from __future__ import annotations

import threading

import pytest

from fixtures import run_threads
from repro.serve import AdmissionConfig, AdmissionQueue
from repro.utils.errors import Overloaded, ReproError, ServiceError


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------


def test_config_validates_eagerly():
    with pytest.raises(ReproError):
        AdmissionConfig(max_pending=0)
    with pytest.raises(ReproError):
        AdmissionConfig(policy="buffer")
    with pytest.raises(ReproError):
        AdmissionConfig(block_timeout=-1.0)


# ---------------------------------------------------------------------------
# Reject policy
# ---------------------------------------------------------------------------


def test_reject_policy_raises_overloaded_at_capacity():
    queue = AdmissionQueue(AdmissionConfig(max_pending=2, policy="reject"))
    queue.submit("a")
    queue.submit("b")
    with pytest.raises(Overloaded):
        queue.submit("c")
    assert queue.stats.admitted == 2 and queue.stats.rejected == 1
    # A drain frees capacity again.
    assert [payload for _, payload in queue.drain()] == ["a", "b"]
    queue.submit("c")
    assert len(queue) == 1


def test_overloaded_is_a_repro_error():
    assert issubclass(Overloaded, ReproError)
    assert issubclass(Overloaded, ServiceError)


# ---------------------------------------------------------------------------
# Block policy
# ---------------------------------------------------------------------------


def test_block_policy_waits_for_space():
    queue = AdmissionQueue(AdmissionConfig(max_pending=1, policy="block"))
    queue.submit("first")
    entered = threading.Event()

    def producer():
        entered.set()
        queue.submit("second")  # blocks until the drain below

    def consumer():
        assert entered.wait(timeout=10.0)
        while queue.stats.blocked == 0:  # wait until the producer is parked
            pass
        drained = queue.drain()
        assert [payload for _, payload in drained] == ["first"]

    run_threads([producer, consumer], timeout=30.0)
    assert [payload for _, payload in queue.drain()] == ["second"]
    assert queue.stats.blocked == 1 and queue.stats.rejected == 0


def test_block_policy_times_out_to_overloaded():
    queue = AdmissionQueue(
        AdmissionConfig(max_pending=1, policy="block", block_timeout=0.05)
    )
    queue.submit("first")
    with pytest.raises(Overloaded):
        queue.submit("second")
    assert queue.stats.rejected == 1


# ---------------------------------------------------------------------------
# Priorities and drain order
# ---------------------------------------------------------------------------


def test_drain_orders_by_priority_then_fifo():
    queue = AdmissionQueue(AdmissionConfig(max_pending=16))
    queue.submit("bulk-1", priority=5)
    queue.submit("hot-1", priority=0)
    queue.submit("bulk-2", priority=5)
    queue.submit("hot-2", priority=0)
    drained = queue.drain()
    assert [payload for _, payload in drained] == ["hot-1", "hot-2", "bulk-1", "bulk-2"]
    assert queue.stats.drained == 4 and queue.stats.high_water == 4


def test_drain_takes_everything_not_just_the_best_class():
    queue = AdmissionQueue()
    queue.submit("low", priority=9)
    queue.submit("high", priority=0)
    assert len(queue.drain()) == 2
    assert len(queue) == 0


# ---------------------------------------------------------------------------
# wait_for_work / close
# ---------------------------------------------------------------------------


def test_wait_for_work_times_out_and_wakes():
    queue = AdmissionQueue()
    assert not queue.wait_for_work(timeout=0.01)
    queue.submit("x")
    assert queue.wait_for_work(timeout=0.01)


def test_close_stops_admissions_but_drains_admitted():
    queue = AdmissionQueue()
    queue.submit("survivor")
    queue.close()
    with pytest.raises(ServiceError):
        queue.submit("late")
    # Graceful drain: the admitted payload is still there for the consumer.
    assert queue.wait_for_work(timeout=0.01)
    assert [payload for _, payload in queue.drain()] == ["survivor"]
    assert queue.drain() == []
    assert queue.closed


def test_close_wakes_blocked_producer():
    queue = AdmissionQueue(AdmissionConfig(max_pending=1, policy="block"))
    queue.submit("first")
    failures = []

    def producer():
        try:
            queue.submit("second")
        except ServiceError:
            failures.append("closed")

    def closer():
        while queue.stats.blocked == 0:
            pass
        queue.close()

    run_threads([producer, closer], timeout=30.0)
    assert failures == ["closed"]


# ---------------------------------------------------------------------------
# Concurrency smoke: many producers, one drainer, nothing lost
# ---------------------------------------------------------------------------


def test_concurrent_producers_lose_nothing():
    queue = AdmissionQueue(AdmissionConfig(max_pending=10_000))
    per_producer = 50
    collected = []
    done = threading.Event()

    def make_producer(tag):
        def producer():
            for index in range(per_producer):
                queue.submit((tag, index))

        return producer

    def drainer():
        while not done.is_set() or len(queue):
            queue.wait_for_work(timeout=0.01)
            collected.extend(payload for _, payload in queue.drain())

    producers = [make_producer(tag) for tag in range(8)]
    drain_thread = threading.Thread(target=drainer, daemon=True)
    drain_thread.start()
    run_threads(producers, timeout=60.0)
    done.set()
    drain_thread.join(timeout=30.0)
    assert not drain_thread.is_alive()
    assert sorted(collected) == sorted(
        (tag, index) for tag in range(8) for index in range(per_producer)
    )
