"""The metrics registry (:mod:`repro.obs.metrics`).

Contracts under test: instruments are created on first use and keep their
identity, dotted-name kind collisions raise, the null registry is falsy and
allocation-free on the disabled hot path, enable/disable swap the process
singleton, reset zeroes values without invalidating cached handles, and the
Prometheus-style text exposition is a faithful wire format — a hypothesis
property pins ``parse_exposition(registry.expose_text()) == registry.dump()``.
"""

from __future__ import annotations

import gc
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    CORE,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    active_metrics,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    parse_exposition,
)


class TestRegistrySemantics:
    def test_instruments_keep_identity_and_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("service.cache.hits")
        counter.inc()
        registry.counter("service.cache.hits").inc(2)
        assert registry.counter("service.cache.hits") is counter
        assert counter.value == 3

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool.workers")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_counts_and_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("match.seconds")
        for value in (0.0002, 0.002, 0.02, 0.2, 2.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(2.2222)
        assert 0.0 < histogram.quantile(0.5) <= histogram.quantile(0.99)
        # the tail bucket clamps to the largest finite bound
        histogram.observe(10_000.0)
        assert histogram.quantile(1.0) == DEFAULT_LATENCY_BUCKETS[-1]

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("index.build")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("index.build")

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("no spaces allowed")

    def test_counters_are_monotone(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="monotone"):
            registry.counter("x").inc(-1)

    def test_reset_zeroes_but_keeps_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        histogram = registry.histogram("a.c")
        counter.inc(7)
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0 and histogram.count == 0
        counter.inc()
        assert registry.counter("a.b").value == 1


class TestSingleton:
    def test_default_is_falsy_null_registry(self):
        registry = get_registry()
        assert registry is NULL_REGISTRY
        assert not registry
        assert not metrics_enabled()

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.histogram("y").observe(1.0)
        assert NULL_REGISTRY.dump() == {}
        assert NULL_REGISTRY.expose_text() == ""
        # one shared instrument serves every name and kind
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")

    def test_enable_disable_swap(self):
        registry = enable_metrics()
        try:
            assert get_registry() is registry
            assert metrics_enabled()
            # idempotent: re-enabling returns the same live registry
            assert enable_metrics() is registry
        finally:
            disable_metrics()
        assert get_registry() is NULL_REGISTRY

    def test_active_metrics_scopes_and_restores(self):
        with active_metrics() as registry:
            get_registry().counter("scoped").inc()
            assert registry.counter("scoped").value == 1
        assert not metrics_enabled()

    def test_disabled_hot_loop_allocates_nothing(self):
        """Satellite guard: the ``if registry:`` pattern on the disabled

        path must not accumulate allocations — the instrumented enumeration
        loop costs one global read and one falsy check per pass."""
        iterations = range(10_000)
        for _ in range(100):  # warm up any lazy caches
            registry = get_registry()
            if registry:
                registry.counter("hot.loop").inc()
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in iterations:
            registry = get_registry()
            if registry:
                registry.counter("hot.loop").inc()
        after = sys.getallocatedblocks()
        assert after - before <= 8  # no per-iteration allocation survives


class TestCoreCounters:
    def test_reset_and_slots(self):
        CORE.index_builds += 3
        CORE.index_refresh_rebuilds += 1
        assert CORE.as_dict()["index_builds"] == 3
        CORE.reset()
        assert CORE.as_dict() == {
            "index_builds": 0,
            "index_refreshes": 0,
            "index_refresh_rebuilds": 0,
        }
        with pytest.raises(AttributeError):
            CORE.some_new_counter = 1  # slotted on purpose


# ---------------------------------------------------------------------------
# Exposition round-trip (hypothesis)
# ---------------------------------------------------------------------------

_SEGMENT = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
_NAMES = st.builds(".".join, st.lists(_SEGMENT, min_size=1, max_size=3))
_FINITE = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)


@st.composite
def populated_registries(draw) -> MetricsRegistry:
    registry = MetricsRegistry()
    names = draw(st.lists(_NAMES, min_size=1, max_size=6, unique=True))
    for position, name in enumerate(names):
        kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
        if kind == "counter":
            registry.counter(name).inc(draw(st.integers(0, 10**6)))
        elif kind == "gauge":
            registry.gauge(name).set(draw(_FINITE))
        else:
            histogram = registry.histogram(name)
            for value in draw(st.lists(_FINITE, max_size=8)):
                histogram.observe(value)
    return registry


class TestExpositionRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(registry=populated_registries())
    def test_parse_exposition_reconstructs_dump(self, registry):
        assert parse_exposition(registry.expose_text()) == registry.dump()

    def test_empty_registry_round_trips(self):
        registry = MetricsRegistry()
        assert registry.expose_text() == ""
        assert parse_exposition("") == {}

    def test_flat_dict_collapses_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").observe(0.5)
        flat = registry.as_flat_dict()
        assert flat == {"a": 2, "b.count": 1, "b.sum": 0.5}
