"""Tests for the MKP assignment and the d-hop preserving partitioner DPar."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph, nodes_within_hops, ring_of_cliques, small_world_social_graph
from repro.parallel import DPar, KnapsackItem, base_partition, greedy_mkp, mkp_assign
from repro.utils import PartitionError


class TestMkp:
    def test_all_items_fit(self):
        items = [KnapsackItem(i, weight=2.0) for i in range(4)]
        assignment, unassigned = greedy_mkp(items, capacities=[4.0, 4.0])
        assert unassigned == []
        assert len(assignment) == 4
        loads = [0.0, 0.0]
        for item_id, bin_index in assignment.items():
            loads[bin_index] += 2.0
        assert all(load <= 4.0 for load in loads)

    def test_capacity_is_respected(self):
        items = [KnapsackItem("big", weight=10.0), KnapsackItem("small", weight=1.0)]
        assignment, unassigned = greedy_mkp(items, capacities=[5.0])
        assert "big" in unassigned
        assert assignment == {"small": 0}

    def test_preferred_bin_used_when_possible(self):
        items = [KnapsackItem("a", weight=1.0)]
        assignment, _ = greedy_mkp(items, capacities=[10.0, 10.0], preferred_bins={"a": 1})
        assert assignment["a"] == 1

    def test_preferred_bin_overflow_falls_back(self):
        items = [KnapsackItem("a", weight=5.0)]
        assignment, _ = greedy_mkp(items, capacities=[10.0, 1.0], preferred_bins={"a": 1})
        assert assignment["a"] == 0

    def test_lightest_items_packed_first(self):
        items = [KnapsackItem("heavy", weight=6.0), KnapsackItem("light", weight=2.0)]
        assignment, unassigned = greedy_mkp(items, capacities=[7.0])
        # The light item is considered first and fits; the heavy one no longer does.
        assert assignment == {"light": 0}
        assert unassigned == ["heavy"]

    def test_improvement_pass_recovers_unassigned(self):
        # Greedy puts the light items in the large bin; the exchange pass must
        # relocate one of them so the heavy item also fits somewhere.
        items = [
            KnapsackItem("w4", weight=4.0),
            KnapsackItem("w3", weight=3.0),
            KnapsackItem("w5", weight=5.0),
        ]
        greedy_assignment, greedy_unassigned = greedy_mkp(items, capacities=[7.0, 5.0])
        improved_assignment, improved_unassigned = mkp_assign(items, capacities=[7.0, 5.0])
        assert len(improved_unassigned) <= len(greedy_unassigned)
        assert len(improved_assignment) >= len(greedy_assignment)

    def test_mkp_assign_empty_items(self):
        assignment, unassigned = mkp_assign([], capacities=[3.0])
        assert assignment == {} and unassigned == []


class TestBasePartition:
    def test_blocks_cover_all_nodes_once(self, small_pokec):
        blocks = base_partition(small_pokec, 4, seed=1)
        union = set().union(*blocks)
        assert union == set(small_pokec.nodes())
        assert sum(len(block) for block in blocks) == small_pokec.num_nodes

    def test_blocks_are_balanced(self, small_pokec):
        blocks = base_partition(small_pokec, 4, seed=1)
        sizes = [len(block) for block in blocks]
        assert max(sizes) <= 2 * (small_pokec.num_nodes // 4 + 1)

    def test_invalid_fragment_count(self, small_pokec):
        with pytest.raises(PartitionError):
            base_partition(small_pokec, 0)


class TestBfsStrategyOrder:
    """The ``"bfs"`` strategy must grow regions breadth-first.

    Regression test: region growth used ``list.pop()`` (LIFO), which walked
    depth-first and scattered a start node's near neighbourhood across block
    boundaries, inflating the replication the d-hop extension adds.
    """

    @staticmethod
    def _path_graph(length: int):
        graph = PropertyGraph("path")
        for node in range(length):
            graph.add_node(node, "n")
        for node in range(length - 1):
            graph.add_edge(node, node + 1, "e")
        return graph

    @staticmethod
    def _replayed_start(graph, seed):
        """The BFS start node: first element of the seeded node shuffle."""
        from repro.utils.rng import ensure_rng

        nodes = list(graph.nodes())
        ensure_rng(seed).shuffle(nodes)
        return nodes[0]

    def test_interior_start_keeps_both_neighbors(self):
        graph = self._path_graph(10)
        # Pick a seed whose shuffled start is interior with room on both
        # sides; depth-first growth would then leave one neighbour out of
        # the start's block, breadth-first keeps both.
        seed = next(
            s for s in range(100) if 1 <= self._replayed_start(graph, s) <= 5
        )
        start = self._replayed_start(graph, seed)
        blocks = base_partition(graph, 2, seed=seed, strategy="bfs")
        home = next(block for block in blocks if start in block)
        assert {start - 1, start + 1} <= home

    def test_bfs_blocks_cover_all_nodes_once(self, small_pokec):
        blocks = base_partition(small_pokec, 3, seed=7, strategy="bfs")
        seen = set()
        for block in blocks:
            assert seen.isdisjoint(block)
            seen |= block
        assert seen == set(small_pokec.nodes())


class TestDPar:
    @pytest.fixture(scope="class")
    def partitioned(self):
        graph = ring_of_cliques(6, 5)
        partition = DPar(d=1, seed=3).partition(graph, 3)
        return graph, partition

    def test_partition_is_covering_and_complete(self, partitioned):
        _, partition = partitioned
        assert partition.is_covering()
        assert partition.is_complete()

    def test_every_node_has_exactly_one_owner(self, partitioned):
        graph, partition = partitioned
        owners = {}
        for fragment in partition.fragments:
            for node in fragment.owned_nodes:
                assert node not in owners, "a node is owned by two fragments"
                owners[node] = fragment.fragment_id
        assert set(owners) == set(graph.nodes())

    def test_owned_neighborhood_resides_in_fragment(self, partitioned):
        graph, partition = partitioned
        for fragment in partition.fragments:
            for node in fragment.owned_nodes:
                assert nodes_within_hops(graph, node, partition.d) <= fragment.node_set

    def test_statistics_fields(self, partitioned):
        _, partition = partitioned
        stats = partition.statistics()
        assert stats["fragments"] == 3.0
        assert 0.0 < stats["skew"] <= 1.0
        assert stats["replication"] >= 1.0
        assert stats["largest"] >= stats["smallest"]

    def test_fragments_reasonably_balanced_on_social_graph(self):
        graph = small_world_social_graph(400, 1200, seed=2)
        partition = DPar(d=1, seed=0).partition(graph, 4)
        assert partition.is_covering() and partition.is_complete()
        assert partition.skew() >= 0.3

    def test_fragment_graph_cached(self, partitioned):
        _, partition = partitioned
        fragment = partition.fragments[0]
        assert partition.fragment_graph(fragment) is partition.fragment_graph(fragment)

    def test_extend_to_larger_radius(self, partitioned):
        graph, partition = partitioned
        extended = DPar(d=1, seed=3).extend(partition, 2)
        assert extended.d == 2
        assert extended.is_covering() and extended.is_complete()
        # Ownership never changes during an extension.
        for before, after in zip(partition.fragments, extended.fragments):
            assert before.owned_nodes == after.owned_nodes
            assert before.node_set <= after.node_set

    def test_extend_cannot_shrink(self, partitioned):
        _, partition = partitioned
        with pytest.raises(PartitionError):
            DPar(d=1).extend(partition, 0)
        assert DPar(d=1).extend(partition, 1) is partition

    def test_invalid_parameters(self):
        with pytest.raises(PartitionError):
            DPar(d=-1)
        with pytest.raises(PartitionError):
            DPar(capacity_factor=0.5)
        with pytest.raises(PartitionError):
            DPar().partition(PropertyGraph(), 0)

    def test_owner_of(self, partitioned):
        graph, partition = partitioned
        some_node = next(iter(graph.nodes()))
        owner = partition.owner_of(some_node)
        assert owner is not None
        assert some_node in partition.fragments[owner].owned_nodes
        assert partition.owner_of("not-a-node") is None

    def test_owner_of_agrees_with_fragments_for_every_node(self, partitioned):
        """The prebuilt node → fragment map must equal a full fragment scan."""
        graph, partition = partitioned
        for node in graph.nodes():
            expected = next(
                fragment.fragment_id
                for fragment in partition.fragments
                if node in fragment.owned_nodes
            )
            assert partition.owner_of(node) == expected

    def test_single_fragment_partition(self, small_yago):
        partition = DPar(d=2, seed=1).partition(small_yago, 1)
        assert partition.num_fragments == 1
        assert partition.is_complete() and partition.is_covering()
        assert partition.fragments[0].node_set == set(small_yago.nodes())
