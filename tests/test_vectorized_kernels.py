"""Satellite guards for the sorted-run merge-intersection kernels.

Pins ``repro.plan.vectorized``'s kernels against the pure-python frozenset
oracle over adversarial run shapes (empty, singleton, duplicate-free sorted,
heavily skewed lengths — the galloping trigger), and asserts the scratch-
buffer path (:func:`intersect_into`) allocates nothing per probe at steady
state, the contract that makes it safe inside the enumeration loop.
"""

import gc
import sys
from array import array
from functools import reduce

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import active_metrics
from repro.plan.vectorized import (
    GALLOP_FACTOR,
    VectorizedStats,
    intersect2,
    intersect_into,
    intersect_k,
    intersect_reference,
)


def run_of(values) -> array:
    """A sorted duplicate-free ``array('i')`` run from arbitrary ints."""
    return array("i", sorted(set(values)))


sorted_runs = st.lists(
    st.lists(st.integers(min_value=0, max_value=500), max_size=60).map(run_of),
    min_size=1,
    max_size=5,
)

# Heavily skewed shapes: one short run probing one long run — the length
# ratio clears GALLOP_FACTOR so the galloping/binary-probe path runs.
skewed_pairs = st.tuples(
    st.lists(st.integers(min_value=0, max_value=5000), max_size=6).map(run_of),
    st.lists(
        st.integers(min_value=0, max_value=5000), min_size=200, max_size=400
    ).map(run_of),
)


class TestKernelsAgainstOracle:
    @given(runs=sorted_runs)
    @settings(max_examples=300, deadline=None)
    def test_intersect_k_equals_frozenset_reduce(self, runs):
        expected = sorted(reduce(frozenset.intersection, map(frozenset, runs)))
        assert list(intersect_k(runs)) == expected
        assert intersect_reference(runs) == expected

    @given(pair=skewed_pairs)
    @settings(max_examples=200, deadline=None)
    def test_galloping_path_matches_oracle(self, pair):
        short, long_run = pair
        expected = intersect_reference([short, long_run])
        # Both argument orders hit the same (swapped-shorter-first) kernel.
        assert list(intersect2(short, long_run)) == expected
        assert list(intersect2(long_run, short)) == expected

    @given(runs=sorted_runs)
    @settings(max_examples=200, deadline=None)
    def test_intersect_into_windowed(self, runs):
        a, b = runs[0], runs[-1]
        a_lo, a_hi = len(a) // 3, len(a)
        b_lo, b_hi = 0, (2 * len(b) + 2) // 3
        out = array("i", bytes(max(len(a), len(b), 1) * a.itemsize))
        k = intersect_into(a, a_lo, a_hi, b, b_lo, b_hi, out)
        expected = intersect_reference([a[a_lo:a_hi], b[b_lo:b_hi]])
        assert list(out[:k]) == expected

    @given(runs=sorted_runs)
    @settings(max_examples=200, deadline=None)
    def test_intersect_into_may_alias_an_input(self, runs):
        a, b = runs[0], runs[-1]
        expected = intersect_reference([a, b])
        for aliased_source in (a, b):
            aliased = array("i", aliased_source)
            other = b if aliased_source is a else a
            k = intersect_into(
                aliased, 0, len(aliased), other, 0, len(other), aliased
            )
            assert list(aliased[:k]) == expected

    def test_empty_and_singleton_shapes(self):
        empty = array("i")
        one = array("i", [7])
        assert list(intersect_k([empty, run_of(range(10))])) == []
        assert list(intersect_k([one])) == [7]
        assert list(intersect_k([one, run_of([5, 7, 9])])) == [7]
        assert list(intersect2(empty, empty)) == []
        with pytest.raises(ValueError):
            intersect_k([])
        with pytest.raises(ValueError):
            intersect_reference([])

    def test_result_never_aliases_an_input_run(self):
        # intersect_k copies even the single-run fast case: callers may
        # mutate the result without corrupting the (immutable) CSR runs.
        run = run_of(range(5))
        result = intersect_k([run])
        assert result is not run
        result[0] = 99
        assert run[0] == 0


class TestStats:
    def test_galloping_steps_counted_on_skewed_runs(self):
        stats = VectorizedStats()
        short = run_of([3, 400])
        long_run = run_of(range(GALLOP_FACTOR * 100))
        intersect2(short, long_run, stats)
        assert stats.galloping_steps == len(short)
        stats_linear = VectorizedStats()
        intersect2(run_of(range(8)), run_of(range(10)), stats_linear)
        assert stats_linear.galloping_steps == 0

    def test_flush_is_noop_without_registry_and_moves_counters_with(self):
        stats = VectorizedStats()
        stats.probes = 4
        stats.galloping_steps = 9
        stats.flush()  # disabled registry: swallowed, still reset
        assert stats.probes == 0 and stats.galloping_steps == 0
        with active_metrics() as registry:
            stats.probes = 2
            stats.galloping_steps = 5
            stats.flush()
            dump = registry.dump()
            assert dump["plan.vectorized.probes"]["value"] == 2
            assert dump["plan.vectorized.galloping_steps"]["value"] == 5


class TestAllocationFreeProbes:
    def test_intersect_into_allocates_nothing_at_steady_state(self):
        """The per-probe contract: intersecting into a reusable scratch
        array must not allocate — neither on the linear merge nor on the
        galloping path — so the enumeration can probe millions of pools
        without touching the allocator."""
        a = run_of(range(0, 600, 3))
        b = run_of(range(0, 600, 2))
        short = run_of([30, 90, 270])
        long_run = run_of(range(0, 4000, 2))
        out = array("i", bytes(max(len(a), len(b)) * a.itemsize))
        for _ in range(100):  # warm up lazy caches / specialisation
            intersect_into(a, 0, len(a), b, 0, len(b), out)
            intersect_into(short, 0, len(short), long_run, 0, len(long_run), out)
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            intersect_into(a, 0, len(a), b, 0, len(b), out)
            intersect_into(short, 0, len(short), long_run, 0, len(long_run), out)
        after = sys.getallocatedblocks()
        assert after - before <= 8  # no per-probe allocation survives
