"""Tests for the fluent builder and the textual pattern DSL."""

from __future__ import annotations

import pytest

from repro.patterns import (
    CountingQuantifier,
    PatternBuilder,
    parse_pattern,
    parse_quantifier,
    pattern_to_text,
)
from repro.utils import ParseError, PatternError


class TestBuilder:
    def test_builds_the_paper_q1(self):
        q1 = (
            PatternBuilder("Q1")
            .focus("xo", "person")
            .node("club", "music_club")
            .node("z", "person")
            .node("y", "album")
            .edge("xo", "club", "in")
            .edge("xo", "z", "follow", at_least_percent=80)
            .edge("z", "y", "like")
            .edge("xo", "y", "like")
            .build()
        )
        assert q1.size_signature() == (4, 4, 80.0, 0)
        assert q1.quantifier("xo", "z", "follow").is_ratio

    def test_requires_focus(self):
        builder = PatternBuilder().node("a", "person")
        with pytest.raises(PatternError):
            builder.build()

    def test_rejects_multiple_quantifier_keywords(self):
        builder = PatternBuilder().focus("a", "person").node("b", "person")
        with pytest.raises(PatternError):
            builder.edge("a", "b", "follow", at_least=2, universal=True)

    def test_all_quantifier_keywords(self):
        pattern = (
            PatternBuilder("K")
            .focus("a", "person")
            .node("b", "person")
            .node("c", "person")
            .node("d", "person")
            .node("e", "person")
            .node("f", "person")
            .edge("a", "b", "r1", at_least=2)
            .edge("a", "c", "r2", exactly=3)
            .edge("a", "d", "r3", more_than=1)
            .edge("a", "e", "r4", universal=True)
            .negated_edge("a", "f", "r5")
            .build()
        )
        by_label = {edge.label: edge.quantifier for edge in pattern.edges()}
        assert by_label["r1"] == CountingQuantifier.at_least(2)
        assert by_label["r2"] == CountingQuantifier.exactly(3)
        assert by_label["r3"] == CountingQuantifier.more_than(1)
        assert by_label["r4"].is_universal
        assert by_label["r5"].is_negation

    def test_explicit_quantifier_object(self):
        pattern = (
            PatternBuilder()
            .focus("a", "person")
            .node("b", "person")
            .edge("a", "b", "follow", quantifier=CountingQuantifier.ratio_at_least(55))
            .build()
        )
        assert pattern.quantifier("a", "b", "follow").value == 55

    def test_build_validates_by_default(self):
        builder = (
            PatternBuilder()
            .focus("a", "person")
            .node("b", "person")
            .node("c", "person")
            .negated_edge("a", "b", "r")
            .negated_edge("b", "c", "r")
        )
        with pytest.raises(Exception):
            builder.build()
        # skipping validation is possible for experimentation
        assert builder.build(validate=False).num_edges == 2

    def test_peek_returns_pattern_under_construction(self):
        builder = PatternBuilder().focus("a", "person")
        assert builder.peek().num_nodes == 1


class TestQuantifierParsing:
    @pytest.mark.parametrize(
        "text, expected",
        [
            (">= 3", CountingQuantifier.at_least(3)),
            ("= 0", CountingQuantifier.negation()),
            ("> 2", CountingQuantifier.more_than(2)),
            (">= 80%", CountingQuantifier.ratio_at_least(80)),
            ("= 100%", CountingQuantifier.universal()),
            ("forall", CountingQuantifier.universal()),
            ("exists", CountingQuantifier.existential()),
            (">=80%", CountingQuantifier.ratio_at_least(80)),
        ],
    )
    def test_parse_quantifier(self, text, expected):
        assert parse_quantifier(text) == expected

    @pytest.mark.parametrize("text", ["<= 3", "at least 3", ">= 2.5", ""])
    def test_parse_quantifier_errors(self, text):
        with pytest.raises(ParseError):
            parse_quantifier(text)


SAMPLE = """
# Q2 of the paper
focus xo : person
node  z  : person
node  redmi : Redmi_2A
edge  xo -follow-> z [= 100%]
edge  z  -recom->  redmi
"""


class TestPatternDsl:
    def test_parse_sample(self):
        pattern = parse_pattern(SAMPLE, name="Q2")
        assert pattern.focus == "xo"
        assert pattern.num_nodes == 3
        assert pattern.quantifier("xo", "z", "follow").is_universal
        assert pattern.quantifier("z", "redmi", "recom").is_existential

    def test_round_trip(self):
        pattern = parse_pattern(SAMPLE)
        again = parse_pattern(pattern_to_text(pattern))
        assert again == pattern

    def test_round_trip_with_negation_and_counts(self, pattern_q3):
        text = pattern_to_text(pattern_q3)
        assert "= 0" in text and ">= 2" in text
        assert parse_pattern(text) == pattern_q3

    def test_missing_focus(self):
        with pytest.raises(ParseError):
            parse_pattern("node a : person\nnode b : person\nedge a -r-> b")

    def test_two_focus_declarations(self):
        with pytest.raises(ParseError):
            parse_pattern("focus a : person\nfocus b : person\nedge a -r-> b")

    def test_undeclared_node_in_edge(self):
        with pytest.raises(ParseError):
            parse_pattern("focus a : person\nedge a -r-> ghost")

    def test_unparseable_line(self):
        with pytest.raises(ParseError):
            parse_pattern("focus a : person\nthis is not a declaration")

    def test_comments_and_blanks_ignored(self):
        text = "focus a : person\n\n# just a comment\nnode b : person\nedge a -r-> b  # inline"
        pattern = parse_pattern(text)
        assert pattern.num_edges == 1
