"""Tests for the shared utilities: RNG, timing, tables, counters, errors."""

from __future__ import annotations

import random
import time

import pytest

from repro.utils import (
    EdgeNotFoundError,
    NodeNotFoundError,
    ReproError,
    StopwatchRegistry,
    Timer,
    WorkCounter,
    ensure_rng,
    format_seconds,
    render_kv,
    render_series,
    render_table,
    sample_without_replacement,
    weighted_choice,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_ensure_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_weighted_choice_respects_weights(self):
        rng = ensure_rng(0)
        picks = [weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(20)]
        assert set(picks) == {"b"}

    def test_weighted_choice_validation(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])

    def test_sample_without_replacement(self):
        rng = ensure_rng(0)
        sample = sample_without_replacement(rng, list(range(10)), 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_sample_with_exclusions_and_small_pool(self):
        rng = ensure_rng(0)
        sample = sample_without_replacement(rng, [1, 2, 3], 10, exclude={2})
        assert sorted(sample) == [1, 3]


class TestTiming:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_timer_unstarted(self):
        assert Timer().elapsed == 0.0

    def test_stopwatch_accumulates(self):
        registry = StopwatchRegistry()
        for _ in range(3):
            with registry.measure("phase"):
                time.sleep(0.002)
        assert registry.total("phase") >= 0.006
        assert registry.mean("phase") > 0.0
        assert registry.counts["phase"] == 3
        assert "phase" in registry.as_dict()
        registry.reset()
        assert registry.total("phase") == 0.0

    def test_unknown_phase_is_zero(self):
        assert StopwatchRegistry().total("nothing") == 0.0

    @pytest.mark.parametrize(
        "seconds, expected_unit",
        [(2.0, "s"), (0.005, "ms"), (0.0000005, "µs")],
    )
    def test_format_seconds(self, seconds, expected_unit):
        assert expected_unit in format_seconds(seconds)


class TestTables:
    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [["alpha", 1], ["b", 22.5]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        series = render_series("time", [1, 2], [0.5, 0.7])
        assert "time" in series and "0.5" in series

    def test_render_kv(self):
        block = render_kv({"answers": 10, "speedup": 2.5}, title="stats")
        assert "answers" in block and "2.5" in block
        assert render_kv({}, title="empty") == "empty"


class TestCounters:
    def test_bump_and_merge(self):
        a = WorkCounter(verifications=1, extensions=2)
        a.bump("cache_hits", 3)
        b = WorkCounter(verifications=4, quantifier_checks=5)
        b.bump("cache_hits")
        a.merge(b)
        assert a.verifications == 5
        assert a.extensions == 2
        assert a.quantifier_checks == 5
        assert a.extras["cache_hits"] == 4

    def test_total_work_and_dict(self):
        counter = WorkCounter(verifications=1, extensions=2, quantifier_checks=3)
        assert counter.total_work() == 6
        assert counter.as_dict()["extensions"] == 2

    def test_copy_is_independent(self):
        counter = WorkCounter(verifications=1)
        counter.bump("x")
        clone = counter.copy()
        clone.verifications += 1
        clone.bump("x")
        assert counter.verifications == 1
        assert counter.extras["x"] == 1


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(NodeNotFoundError, ReproError)
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_messages(self):
        assert "ghost" in str(NodeNotFoundError("ghost"))
        assert "follow" in str(EdgeNotFoundError("a", "b", "follow"))
        assert "->" in str(EdgeNotFoundError("a", "b"))
