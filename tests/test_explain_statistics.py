"""Tests for match explanations and graph statistics."""

from __future__ import annotations

import pytest

from repro.graph.statistics import (
    degree_histogram,
    graph_statistics,
    neighborhood_size_bound,
)
from repro.matching import QMatch
from repro.matching.explain import explain_match
from repro.utils import MatchingError


class TestExplainMatch:
    def test_explains_a_positive_match(self, paper_g1, pattern_q2):
        explanation = explain_match(pattern_q2, paper_g1, "x1")
        assert explanation.is_match and explanation.positive_match
        assert explanation.witness is not None
        assert explanation.witness["xo"] == "x1"
        assert all(item.satisfied for item in explanation.evidence)
        assert "MATCH" in explanation.describe()

    def test_explains_a_quantifier_failure(self, paper_g1, pattern_q2):
        """x3 fails Q2 because only 2 of its 3 followees recommend the phone."""
        explanation = explain_match(pattern_q2, paper_g1, "x3")
        assert not explanation.is_match
        follow_evidence = next(
            item for item in explanation.evidence if item.edge.label == "follow"
        )
        assert not follow_evidence.satisfied
        assert follow_evidence.total_children == 3
        assert follow_evidence.counted_children == {"v2", "v3"}

    def test_explains_a_negation_violation(self, paper_g1, pattern_q3):
        """x3 satisfies Π(Q3) but follows the detractor v4."""
        explanation = explain_match(pattern_q3, paper_g1, "x3")
        assert explanation.positive_match
        assert not explanation.is_match
        assert explanation.violated_negations
        violated = explanation.violated_negations[0]
        assert "v4" in violated.counted_children
        assert "negation violated" in explanation.describe()

    def test_explanations_agree_with_qmatch(self, paper_g1, pattern_q3):
        answer = QMatch().evaluate_answer(pattern_q3, paper_g1)
        for candidate in ("x1", "x2", "x3"):
            explanation = explain_match(pattern_q3, paper_g1, candidate)
            assert explanation.is_match == (candidate in answer)

    def test_non_candidate_node(self, paper_g1, pattern_q2):
        explanation = explain_match(pattern_q2, paper_g1, "redmi")
        assert not explanation.is_match
        assert not explanation.positive_match

    def test_unknown_node_raises(self, paper_g1, pattern_q2):
        with pytest.raises(MatchingError):
            explain_match(pattern_q2, paper_g1, "ghost")


class TestGraphStatistics:
    def test_summary_fields(self, paper_g1):
        stats = graph_statistics(paper_g1)
        assert stats.num_nodes == paper_g1.num_nodes
        assert stats.num_edges == paper_g1.num_edges
        assert stats.node_label_counts["person"] == 8
        assert stats.edge_label_counts["follow"] == 6
        assert stats.max_in_degree == 5  # the phone has five reviewers pointing at it
        assert "graph paper-G1" in stats.describe()

    def test_degree_histogram(self, paper_g1):
        out_hist = degree_histogram(paper_g1, "out")
        assert out_hist[3] == 1  # x3 follows three reviewers
        assert sum(out_hist.values()) == paper_g1.num_nodes
        total_hist = degree_histogram(paper_g1, "total")
        assert sum(k * v for k, v in total_hist.items()) == 2 * paper_g1.num_edges
        with pytest.raises(ValueError):
            degree_histogram(paper_g1, "sideways")

    def test_neighborhood_size_bound(self, small_pokec):
        report = neighborhood_size_bound(small_pokec, d=2, num_workers=4, sample_size=50)
        assert report["sum_neighborhood_sizes"] > 0
        assert report["budget"] == pytest.approx(small_pokec.size() / 4)
        assert report["implied_cd"] > 0
        with pytest.raises(ValueError):
            neighborhood_size_bound(small_pokec, d=-1, num_workers=4)
        with pytest.raises(ValueError):
            neighborhood_size_bound(small_pokec, d=1, num_workers=0)

    def test_statistics_on_empty_graph(self):
        from repro.graph import PropertyGraph

        stats = graph_statistics(PropertyGraph("empty"))
        assert stats.num_nodes == 0 and stats.num_edges == 0
        report = neighborhood_size_bound(PropertyGraph("empty"), d=1, num_workers=2)
        assert report["sum_neighborhood_sizes"] == 0.0
