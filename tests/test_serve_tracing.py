"""Fleet-wide tracing: one served query ⇒ one connected span tree.

The acceptance contract of this suite: a query submitted to a 4-shard
:class:`ShardedService` whose shards run the **process** pool backend yields
a single connected span tree — ``serve.submit`` → synthetic admission wait →
``serve.batch`` → ``serve.fanout`` → per-shard ``service.batch`` →
``pool.round`` → ``worker.fragment`` spans recorded in *other processes* and
shipped back piggybacked.  Deltas get the same treatment
(``serve.delta`` → ``serve.delta.shard`` → ``service.delta`` with the
refresh-vs-rebuild outcome), and the trees stay connected under an
8-thread submit/apply_delta/close interleave.
"""

from __future__ import annotations

import os
import threading
from collections import defaultdict

import pytest

from fixtures import build_paper_g1, build_q2, run_threads
from repro.delta import GraphDelta
from repro.graph.generators import small_world_social_graph
from repro.obs.trace import (
    active_tracing,
    build_span_tree,
    format_span_tree,
    get_tracer,
)
from repro.parallel import PQMatch
from repro.patterns import PatternBuilder
from repro.serve import AdmissionConfig, ShardedService
from repro.utils.errors import Overloaded, ServiceError


def _group_by_trace(records):
    groups = defaultdict(list)
    for record in records:
        groups[record.trace_id].append(record)
    return groups


def _assert_connected(records):
    """Every trace has exactly one root and every parent resolves in-trace."""
    for trace_id, group in _group_by_trace(records).items():
        ids = {record.span_id for record in group}
        roots = [record for record in group if record.parent_id is None]
        assert len(roots) == 1, (
            f"trace {trace_id} has {len(roots)} roots: "
            f"{[record.name for record in roots]}"
        )
        for record in group:
            if record.parent_id is not None:
                assert record.parent_id in ids, (
                    f"trace {trace_id}: {record.name} parented outside its trace"
                )


# ---------------------------------------------------------------------------
# Acceptance: 4 shards, process backend, remote worker spans, one tree
# ---------------------------------------------------------------------------


def test_four_shard_fleet_query_yields_one_connected_tree_with_remote_spans():
    graph = small_world_social_graph(60, 140, seed=11)
    from repro.datasets.workloads import workload_patterns

    pattern = workload_patterns(graph, count=1, seed=7)[0]
    fleet = ShardedService(
        graph,
        num_shards=4,
        d=2,
        coordinator_factory=lambda shard: PQMatch(
            num_workers=2, d=2, executor="process"
        ),
    )
    with active_tracing() as tracer:
        with fleet:
            result = fleet.submit(pattern).result(timeout=300)
        records = tracer.records()
    assert not result.cached

    # one submit → one trace → one connected tree, rooted at serve.submit
    assert len({record.trace_id for record in records}) == 1
    _assert_connected(records)
    roots = build_span_tree(records)
    assert len(roots) == 1 and roots[0].record.name == "serve.submit"
    names = {record.name for record in records}
    assert {
        "serve.submit",
        "serve.admission.wait",
        "serve.batch",
        "serve.fanout",
        "service.batch",
        "pool.round",
    } <= names

    # fan-out reached all 4 shards inside the one tree...
    batches = [record for record in records if record.name == "service.batch"]
    assert len(batches) == 4

    # ...and ≥1 worker span per shard pool was recorded in another process.
    remote = [
        record
        for record in records
        if record.name == "worker.fragment" and record.pid != os.getpid()
    ]
    assert remote
    assert "(remote)" in format_span_tree(records, show_times=False)


# ---------------------------------------------------------------------------
# Thread-backend unit contracts (fast)
# ---------------------------------------------------------------------------


def test_submitted_query_tree_contains_admission_wait():
    with active_tracing() as tracer:
        with ShardedService(build_paper_g1(), num_shards=2) as fleet:
            fleet.submit(build_q2()).result(timeout=60)
        records = tracer.records()
    _assert_connected(records)
    assert len({record.trace_id for record in records}) == 1
    wait = next(r for r in records if r.name == "serve.admission.wait")
    submit = next(r for r in records if r.name == "serve.submit")
    assert wait.parent_id == submit.span_id
    assert wait.wall >= 0.0


def test_deduplicated_submit_is_annotated_and_childless():
    """A rider's trace is just its submit span, marked deduplicated; the

    leader's trace carries the shared serve.batch subtree."""
    with active_tracing() as tracer:
        with ShardedService(build_paper_g1(), num_shards=2) as fleet:
            # hold the evaluate lock so the second submit rides the first
            with fleet._evaluate_lock:
                first = fleet.submit(build_q2())
                second = fleet.submit(build_q2())
                assert second is first
            first.result(timeout=60)
        records = tracer.records()
    _assert_connected(records)
    submits = [r for r in records if r.name == "serve.submit"]
    assert len(submits) == 2
    assert sum(1 for r in submits if r.tag("deduplicated") == "True") == 1


def test_direct_evaluate_tree_has_no_admission_spans():
    with active_tracing() as tracer:
        with ShardedService(build_paper_g1(), num_shards=2) as fleet:
            fleet.evaluate(build_q2())
        records = tracer.records()
    _assert_connected(records)
    roots = build_span_tree(records)
    assert len(roots) == 1 and roots[0].record.name == "serve.batch"
    assert all(record.name != "serve.admission.wait" for record in records)


def test_delta_tree_routes_shards_with_refresh_outcomes():
    with active_tracing() as tracer:
        with ShardedService(build_paper_g1(), num_shards=2) as fleet:
            touched = None
            fleet.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
            touched = fleet.stats.shards_touched
        records = tracer.records()
    _assert_connected(records)
    roots = build_span_tree(records)
    assert len(roots) == 1
    root = roots[0].record
    assert root.name == "serve.delta"
    assert int(root.tag("touched")) == touched
    shard_spans = [r for r in records if r.name == "serve.delta.shard"]
    assert len(shard_spans) == touched
    assert all(r.parent_id == root.span_id for r in shard_spans)
    # each touched shard's own service.delta span nests under its routing
    # span and names its index maintenance outcome
    service_spans = [r for r in records if r.name == "service.delta"]
    shard_ids = {r.span_id for r in shard_spans}
    for record in service_spans:
        assert record.parent_id in shard_ids
        assert record.tag("index") in ("refreshed", "rebuilt")


def test_untraced_fleet_records_nothing():
    with ShardedService(build_paper_g1(), num_shards=2) as fleet:
        fleet.submit(build_q2()).result(timeout=60)
        fleet.apply_delta(GraphDelta.insert_edge("x1", "v1", "follow"))
    assert get_tracer().records() == ()


# ---------------------------------------------------------------------------
# Satellite (a): serve-tier fields on the slow-query log
# ---------------------------------------------------------------------------


def test_slow_query_log_carries_serve_tier_fields():
    with ShardedService(
        build_paper_g1(), num_shards=2, slow_query_threshold=0.0
    ) as fleet:
        pattern = build_q2()
        fleet.submit(pattern).result(timeout=60)
        fleet.evaluate(pattern)  # L1 hit
        entries = [record.as_dict() for record in
                   fleet.introspection.slow_queries.records()]
    computed = next(e for e in entries if e["cache_route"] == "fanout")
    hit = next(e for e in entries if e["cache_route"] == "l1")
    assert computed["shard_fanout"] == 2 and not computed["cached"]
    assert hit["shard_fanout"] == 0 and hit["cached"]
    # the submitted request actually waited in admission (>= 0 is all wall
    # clocks guarantee, but the field must be present and numeric)
    assert computed["admission_wait_seconds"] >= 0.0


# ---------------------------------------------------------------------------
# Satellite (c): connectedness under an 8-thread interleave
# ---------------------------------------------------------------------------


def test_span_trees_stay_connected_under_8_thread_interleave():
    graph = build_paper_g1()
    patterns = [build_q2()]
    fleet = ShardedService(
        graph, num_shards=2, admission=AdmissionConfig(max_pending=4096)
    )
    stop = threading.Event()

    def submitter():
        while not stop.is_set():
            try:
                future = fleet.submit(patterns[0])
            except (ServiceError, Overloaded):
                return
            try:
                future.result(timeout=60.0)
            except Exception:
                return

    def mutator(worker: int):
        node = f"traced-{worker}"
        for _ in range(10):
            if stop.is_set():
                return
            try:
                inverse = fleet.apply_delta(
                    GraphDelta.build(
                        node_inserts=[(node, "person")],
                        edge_inserts=[("x1", node, "follow")],
                    )
                )
                fleet.apply_delta(inverse)
            except ServiceError:
                return

    def closer():
        # let the others interleave a little, then slam the door
        import time

        time.sleep(0.15)
        stop.set()
        fleet.close()

    with active_tracing() as tracer:
        try:
            run_threads(
                [submitter] * 5
                + [lambda: mutator(0), lambda: mutator(1)]
                + [closer],
                timeout=120.0,
            )
        finally:
            fleet.close()
        records = tracer.records()

    assert records, "the interleave produced no spans at all"
    _assert_connected(records)
    # every query trace is rooted at its submit (or a direct serve.batch from
    # the dispatcher's fallback path); delta traces at serve.delta
    for roots in build_span_tree(records):
        assert roots.record.name in ("serve.submit", "serve.batch", "serve.delta")
