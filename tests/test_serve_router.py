"""ShardedService unit tests: byte-identity, caching, routing, lifecycle.

The exhaustive randomized oracle check lives in ``test_property_based.py``;
concurrency hammering in ``test_serve_stress.py``; storage faults in
``test_serve_faults.py``.  This file pins the router's unit-level contract.
"""

from __future__ import annotations

import time

import pytest

from fixtures import build_paper_g1, build_q2, build_q3
from repro.delta import GraphDelta
from repro.graph import PropertyGraph
from repro.graph.generators import small_world_social_graph
from repro.matching.qmatch import QMatch
from repro.parallel import PQMatch
from repro.patterns import PatternBuilder
from repro.serve import AdmissionConfig, ShardedService, SharedResultCache
from repro.service import QueryService
from repro.utils.errors import Overloaded, ServiceError


def _oracle_answer(graph, pattern):
    with QueryService(graph.copy()) as oracle:
        return oracle.evaluate(pattern).answer


def _islands_fleet(num_per_island=6, **kwargs):
    """Two disconnected chains, one shard each — delta isolation is exact."""
    graph = PropertyGraph("two-islands")
    for island in ("a", "b"):
        prev = None
        for index in range(num_per_island):
            node = f"{island}{index}"
            graph.add_node(node, "person")
            if prev is not None:
                graph.add_edge(prev, node, "follow")
            prev = node
    partition = {node: (0 if str(node).startswith("a") else 1) for node in graph.nodes()}
    return ShardedService(graph, num_shards=2, d=2, partition=partition, **kwargs)


def _follow_pattern(at_least=1):
    return (
        PatternBuilder("followers")
        .focus("xo", "person")
        .node("z", "person")
        .edge("xo", "z", "follow", at_least=at_least)
        .build()
    )


# ---------------------------------------------------------------------------
# Byte-identity with the single-service oracle
# ---------------------------------------------------------------------------


def test_paper_answers_survive_sharding():
    graph = build_paper_g1()
    expected_q2 = _oracle_answer(graph, build_q2())
    expected_q3 = _oracle_answer(graph, build_q3(2))
    for num_shards in (1, 2, 3):
        with ShardedService(build_paper_g1(), num_shards=num_shards) as fleet:
            assert fleet.evaluate(build_q2()).answer == expected_q2
            assert fleet.evaluate(build_q3(2)).answer == expected_q3
            fleet.check_invariants()


def test_fresh_results_carry_summed_counters_cached_do_not():
    with ShardedService(build_paper_g1(), num_shards=2) as fleet:
        fresh = fleet.evaluate(build_q3(2))
        assert not fresh.cached and fresh.counter is not None
        total = {}
        for counter in fleet.last_round_counters.values():
            for key, value in counter.as_dict().items():
                total[key] = total.get(key, 0) + value
        assert fresh.counter.as_dict() == total
        again = fleet.evaluate(build_q3(2))
        assert again.cached and again.counter is None
        assert again.answer == fresh.answer


def test_evaluate_many_keeps_input_order_and_coalesces():
    graph = small_world_social_graph(40, 90, seed=11)
    from repro.datasets.workloads import workload_patterns

    queries = workload_patterns(graph, count=3, seed=7)
    with ShardedService(graph, num_shards=3) as fleet:
        warm = fleet.evaluate(queries[0])  # pre-warm one of the three
        results = fleet.evaluate_many(queries + [queries[0]])
        assert [r.pattern for r in results] == [q.name for q in queries] + [queries[0].name]
        assert results[0].cached and results[0].answer == warm.answer
        assert results[-1].answer == warm.answer
        # The two misses cost exactly one fan-out round, not one per pattern.
        assert fleet.stats.fanout_rounds == 2


# ---------------------------------------------------------------------------
# Version-vector caching across deltas
# ---------------------------------------------------------------------------


def test_delta_bumps_only_reached_components_and_invalidates():
    with _islands_fleet() as fleet:
        pattern = _follow_pattern()
        before = fleet.evaluate(pattern)
        vector_before = fleet.version_vector
        fleet.apply_delta(GraphDelta.insert_edge("a0", "a3", "follow"))
        vector_after = fleet.version_vector
        # Only shard 0 (island "a") absorbed the delta.
        assert vector_after[0] == vector_before[0] + 1
        assert vector_after[1] == vector_before[1]
        assert fleet.stats.shards_touched == 1 and fleet.stats.shards_skipped == 1
        # The pre-delta entry is unreachable under the new vector: recompute.
        after = fleet.evaluate(pattern)
        assert not after.cached
        assert after.answer == _oracle_answer(fleet.graph, pattern)
        fleet.check_invariants()


def test_inverse_delta_restores_vector_and_answers():
    with _islands_fleet() as fleet:
        pattern = _follow_pattern(at_least=2)
        original = fleet.evaluate(pattern).answer
        inverse = fleet.apply_delta(
            GraphDelta.build(
                node_inserts=[("a-new", "person")],
                edge_inserts=[("a0", "a-new", "follow")],
            )
        )
        changed = fleet.evaluate(pattern).answer
        assert changed != original  # a0 gained a second followee
        fleet.apply_delta(inverse)
        restored = fleet.evaluate(pattern)
        assert restored.answer == original
        fleet.check_invariants()


def test_attr_only_delta_bumps_nothing():
    with _islands_fleet() as fleet:
        vector = fleet.version_vector
        fleet.apply_delta(GraphDelta.build(attr_sets=[("a0", "mood", "curious")]))
        assert fleet.version_vector == vector
        for shard in fleet.shards:
            if shard.graph.has_node("a0"):
                assert dict(shard.graph.node_attrs("a0"))["mood"] == "curious"


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------


def test_pattern_radius_beyond_halo_is_refused():
    with ShardedService(build_paper_g1(), num_shards=2, d=1) as fleet:
        with pytest.raises(ServiceError, match="radius"):
            fleet.evaluate(build_q3(2))  # radius 2 > d=1


def test_mismatched_shard_engines_are_refused():
    def factory(shard):
        return PQMatch(
            num_workers=2, d=2, engine=QMatch(use_incremental=shard.shard_id == 0)
        )

    with pytest.raises(ServiceError, match="engine configuration"):
        ShardedService(build_paper_g1(), num_shards=2, coordinator_factory=factory)


def test_closed_fleet_refuses_work():
    fleet = ShardedService(build_paper_g1(), num_shards=2)
    fleet.close()
    fleet.close()  # idempotent
    with pytest.raises(ServiceError):
        fleet.evaluate(build_q2())
    with pytest.raises(ServiceError):
        fleet.submit(build_q2())


# ---------------------------------------------------------------------------
# Admission front door
# ---------------------------------------------------------------------------


def test_submit_resolves_to_the_evaluate_answer():
    with ShardedService(build_paper_g1(), num_shards=2) as fleet:
        expected = _oracle_answer(fleet.graph, build_q3(2))
        future = fleet.submit(build_q3(2))
        result = future.result(timeout=30.0)
        assert result.answer == expected


def test_submit_deduplicates_in_flight_identical_queries():
    with ShardedService(build_paper_g1(), num_shards=2) as fleet:
        with fleet._evaluate_lock:  # park the dispatcher before its fan-out
            first = fleet.submit(build_q2())
            second = fleet.submit(build_q2())
            assert second is first
            assert fleet.stats.deduplicated == 1
        assert first.result(timeout=30.0).answer == second.result(timeout=30.0).answer
        # The in-flight table is drained once the round resolves.
        assert fleet.introspect()["inflight"] == 0


def test_submit_overload_rejects_beyond_queue_capacity():
    config = AdmissionConfig(max_pending=1, policy="reject")
    with ShardedService(build_paper_g1(), num_shards=2, admission=config) as fleet:
        with fleet._evaluate_lock:
            running = fleet.submit(build_q2())
            # Wait for the dispatcher to claim it (then it parks on the lock),
            # so the queue is empty again and timing is deterministic.
            deadline = time.monotonic() + 30.0
            while not running.running():
                assert time.monotonic() < deadline, "dispatcher never claimed"
                time.sleep(0.001)
            queued = fleet.submit(build_q3(2))  # fills the 1-slot queue
            with pytest.raises(Overloaded):
                fleet.submit(build_q3(3))
        assert running.result(timeout=30.0) and queued.result(timeout=30.0)


def test_close_drains_admitted_work():
    fleet = ShardedService(build_paper_g1(), num_shards=2)
    future = fleet.submit(build_q2())
    fleet.close()  # joins the dispatcher: admitted work finished first
    assert future.done()
    assert future.result(timeout=0).answer == _oracle_answer(
        build_paper_g1(), build_q2()
    )


# ---------------------------------------------------------------------------
# L2 shared cache integration
# ---------------------------------------------------------------------------


def test_second_fleet_reads_first_fleets_shared_store(tmp_path):
    path = str(tmp_path / "shared.sqlite")
    graph_a = small_world_social_graph(30, 60, seed=21)
    graph_b = small_world_social_graph(30, 60, seed=21)  # identical rebuild
    from repro.datasets.workloads import workload_patterns

    queries = workload_patterns(graph_a, count=2, seed=3)
    with ShardedService(graph_a, num_shards=2, shared_cache=path) as producer:
        cold = [producer.evaluate(q) for q in queries]
        assert all(not r.cached for r in cold)
    with ShardedService(graph_b, num_shards=2, shared_cache=path) as consumer:
        warm = [consumer.evaluate(q) for q in queries]
        assert all(r.cached for r in warm)
        assert [r.answer for r in warm] == [r.answer for r in cold]
        assert consumer.stats.shared_hits == 2
        assert consumer.stats.fanout_rounds == 0


def test_borrowed_shared_handle_survives_fleet_close(tmp_path):
    store = SharedResultCache(str(tmp_path / "shared.sqlite"))
    with ShardedService(build_paper_g1(), num_shards=2, shared_cache=store) as fleet:
        fleet.evaluate(build_q2())
    # Borrowed, not owned: the fleet's close must not close our handle.
    assert store.entry_count() == 1
    store.close()


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


def test_stats_snapshot_and_introspect_shapes():
    with ShardedService(
        build_paper_g1(), num_shards=2, shared_cache=None
    ) as fleet:
        fleet.evaluate(build_q2())
        snapshot = fleet.stats_snapshot()
        for key in ("served", "cache_hits", "admission_admitted", "worker_rebuilds"):
            assert key in snapshot
        view = fleet.introspect()
        assert view["version_vector"] == list(fleet.version_vector)
        assert view["shared"] is None and view["inflight"] == 0
        assert len(view["shards"]) == 2
        assert all(entry["service"]["served"] >= 1 for entry in view["shards"])


def test_shared_cache_stats_do_not_collide_with_router_stats(tmp_path):
    path = str(tmp_path / "shared.sqlite")
    graph_a = build_paper_g1()
    with ShardedService(graph_a, num_shards=2, shared_cache=path) as fleet:
        fleet.evaluate(build_q2())
        snapshot = fleet.stats_snapshot()
        # Router's L2-promote count and the handle's own hit count are
        # distinct keys: a fresh store has 0 hits but the key must exist.
        assert snapshot["shared_hits"] == 0
        assert snapshot["shared_cache_stores"] == 1
        assert snapshot["shared_cache_hits"] == 0
