"""Tests for cross-process fragment shipping: payloads, specs, persistent pools.

The contract under test (PR 3's tentpole): a fragment crosses the process
boundary exactly once, as the flat-buffer snapshot bytes of
:mod:`repro.index.serialize`, and pool workers *decode* — never recompile —
the compiled :class:`GraphIndex`.  The ``GraphIndex.build`` call counter is
read on both sides of the boundary to pin that down.
"""

from __future__ import annotations

import pickle

import pytest

from repro.datasets import benchmark_graph, paper_pattern
from repro.index.snapshot import build_call_count
from repro.matching import DMatchOptions, QMatch
from repro.parallel import (
    DPar,
    FragmentPayload,
    FragmentTask,
    PQMatch,
    ProcessExecutor,
    SerialExecutor,
    engine_from_spec,
    engine_to_spec,
    pqmatch_s_engine,
)


@pytest.fixture(scope="module")
def shipping_graph():
    """A private graph (not the shared session fixture), so build-counter
    assertions are not perturbed by other tests' cached indexes."""
    return benchmark_graph("pokec", scale=0.4, seed=17)


@pytest.fixture(scope="module")
def shipping_patterns():
    return [paper_pattern("Q1"), paper_pattern("Q3", p=2)]


class TestEngineSpec:
    def test_qmatch_round_trip(self):
        engine = QMatch(
            use_incremental=False,
            options=DMatchOptions(use_index=False, early_exit=False),
            name="custom",
        )
        spec = engine_to_spec(engine)
        assert spec[0] == "qmatch"
        rebuilt = engine_from_spec(spec)
        assert type(rebuilt) is QMatch
        assert rebuilt.use_incremental == engine.use_incremental
        assert rebuilt.options == engine.options
        assert rebuilt.name == engine.name

    def test_opaque_fallback(self):
        sentinel = object.__new__(SerialExecutor)  # any non-QMatch object
        kind, payload = engine_to_spec(sentinel)
        assert kind == "opaque"
        assert engine_from_spec((kind, payload)) is sentinel

    def test_fragment_task_pickles_spec_not_engine(self, paper_g1, pattern_q2):
        task = FragmentTask(3, paper_g1, {"x1"}, pattern_q2, QMatch(name="tagged"))
        state = task.__getstate__()
        assert "engine" not in state
        assert state["engine_spec"][0] == "qmatch"
        clone = pickle.loads(pickle.dumps(task))
        assert type(clone.engine) is QMatch
        assert clone.engine.name == "tagged"
        assert clone.run().answer == task.run().answer


class TestFragmentPayload:
    def _partition(self, graph, n=2, d=2):
        return DPar(d=d, seed=0).partition(graph, n)

    def test_materialise_restores_graph_attrs_and_index(self, shipping_graph):
        partition = self._partition(shipping_graph)
        fragment = next(f for f in partition.fragments if f.owned_nodes)
        fragment_graph = partition.fragment_graph(fragment)
        payload = FragmentPayload.from_fragment(
            fragment.fragment_id, fragment_graph, fragment.owned_nodes
        )
        builds_before = build_call_count()
        rebuilt = payload.materialise()
        assert build_call_count() == builds_before  # decoded, not recompiled
        assert rebuilt == fragment_graph  # nodes, labels, attrs and edges
        assert rebuilt.cached_index() is not None

    def test_payload_run_matches_in_process_task(self, shipping_graph, shipping_patterns):
        partition = self._partition(shipping_graph)
        pattern = shipping_patterns[0]
        for fragment in partition.fragments:
            if not fragment.owned_nodes:
                continue
            fragment_graph = partition.fragment_graph(fragment)
            payload = FragmentPayload.from_fragment(
                fragment.fragment_id, fragment_graph, fragment.owned_nodes
            )
            task = FragmentTask(
                fragment.fragment_id, fragment_graph, set(fragment.owned_nodes),
                pattern, QMatch(),
            )
            assert payload.run(pattern, QMatch()).answer == task.run().answer

    def test_cache_key_tracks_content(self, shipping_graph):
        partition = self._partition(shipping_graph)
        fragment = next(f for f in partition.fragments if f.owned_nodes)
        fragment_graph = partition.fragment_graph(fragment)
        first = FragmentPayload.from_fragment(
            fragment.fragment_id, fragment_graph, fragment.owned_nodes
        )
        again = FragmentPayload.from_fragment(
            fragment.fragment_id, fragment_graph, fragment.owned_nodes
        )
        assert first.cache_key == again.cache_key
        mutated = fragment_graph.copy()
        mutated.add_node("brand-new", "person")
        other = FragmentPayload.from_fragment(
            fragment.fragment_id, mutated, fragment.owned_nodes
        )
        assert other.cache_key != first.cache_key


class TestProcessExecutor:
    def _tasks(self, graph, pattern, partition):
        return [
            FragmentTask(
                fragment.fragment_id,
                partition.fragment_graph(fragment),
                set(fragment.owned_nodes),
                pattern,
                QMatch(),
            )
            for fragment in partition.fragments
            if fragment.owned_nodes
        ]

    def test_matches_serial_and_caches_pool(self, shipping_graph, shipping_patterns):
        partition = DPar(d=2, seed=0).partition(shipping_graph, 2)
        tasks = self._tasks(shipping_graph, shipping_patterns[0], partition)
        serial_results = SerialExecutor().run(tasks)
        with ProcessExecutor(max_workers=2) as executor:
            first = executor.run(tasks)
            pool = executor._pool
            assert pool is not None
            second = executor.run(tasks)
            # Same payload epoch: the pool and payload cache are reused.
            assert executor._pool is pool
            assert executor.last_worker_rebuilds == 0
        assert [r.answer for r in first] == [r.answer for r in serial_results]
        assert [r.answer for r in second] == [r.answer for r in serial_results]

    def test_epoch_change_recreates_pool(self, shipping_graph, shipping_patterns):
        pattern = shipping_patterns[0]
        partition_a = DPar(d=2, seed=0).partition(shipping_graph, 2)
        partition_b = DPar(d=2, seed=1).partition(shipping_graph, 3)
        with ProcessExecutor(max_workers=2) as executor:
            executor.run(self._tasks(shipping_graph, pattern, partition_a))
            pool = executor._pool
            executor.run(self._tasks(shipping_graph, pattern, partition_b))
            assert executor._pool is not pool
            assert executor.last_worker_rebuilds == 0


class TestNoWorkerRecompile:
    def test_workers_never_build_for_a_cached_partition(
        self, shipping_graph, shipping_patterns
    ):
        """The regression the snapshot layer exists for: for one partition,
        ``GraphIndex.build`` runs on the coordinator only (once for the source
        graph, once per fragment payload) and *zero* times inside the pool —
        and once the partition is cached, re-evaluating patterns builds
        nothing anywhere."""
        # A graph private to this test: the shared module fixture may already
        # carry a cached source index, which would skew the build accounting.
        graph = benchmark_graph("pokec", scale=0.4, seed=23)
        engine = pqmatch_s_engine(num_workers=2, d=2, executor="process")
        try:
            builds_before = build_call_count()
            first = [engine.evaluate_answer(q, graph) for q in shipping_patterns]
            coordinator_builds = build_call_count() - builds_before
            fragments = [f for f in engine._partition.fragments if f.owned_nodes]
            # One build for the source graph (the partitioner's CSR BFS) plus
            # one per shipped fragment payload — all on the coordinator.
            assert coordinator_builds == 1 + len(fragments)
            assert engine.executor.last_worker_rebuilds == 0

            builds_before = build_call_count()
            second = [engine.evaluate_answer(q, graph) for q in shipping_patterns]
            assert build_call_count() == builds_before  # fully cached rerun
            assert engine.executor.last_worker_rebuilds == 0
            assert second == first
        finally:
            engine.close()

    def test_pqmatch_process_equals_serial(self, shipping_graph, shipping_patterns):
        serial = pqmatch_s_engine(num_workers=3, d=2)
        with pqmatch_s_engine(num_workers=3, d=2, executor="process") as process:
            for pattern in shipping_patterns:
                assert process.evaluate_answer(pattern, shipping_graph) == (
                    serial.evaluate_answer(pattern, shipping_graph)
                )
            assert process.executor.last_worker_rebuilds == 0

    def test_mutation_invalidates_partition_and_reships(self, shipping_patterns):
        """An in-place structural mutation must re-partition (the cached
        fragments describe the old structure) and, via the fresh payload
        checksums, recreate the worker pool — never answer from stale
        fragments."""
        graph = benchmark_graph("pokec", scale=0.4, seed=29)
        pattern = shipping_patterns[0]
        with pqmatch_s_engine(num_workers=2, d=2, executor="process") as engine:
            engine.evaluate_answer(pattern, graph)
            partition_before = engine._partition
            pool_before = engine.executor._pool
            source = next(iter(engine._partition.fragments[0].owned_nodes))
            graph.add_node("mutation-probe", graph.node_label(source))
            answer = engine.evaluate_answer(pattern, graph)
            assert engine._partition is not partition_before
            assert engine.executor._pool is not pool_before
            assert engine.executor.last_worker_rebuilds == 0
            assert answer == QMatch().evaluate_answer(pattern, graph)

    def test_coordinator_close_releases_executor(self, shipping_graph, shipping_patterns):
        engine = PQMatch(num_workers=2, d=2, executor="process", seed=0)
        engine.evaluate(shipping_patterns[0], shipping_graph)
        assert engine._executor is not None
        engine.close()
        assert engine._executor is None
