"""Process-pool delta shipping: mutations must not re-ship or recompile.

The persistent pool's contract across an applied graph batch: the pool object
survives, tasks carry the sub-delta as a chain for workers to replay on their
cached fragments, and ``last_worker_rebuilds`` stays zero — the delta
travels, the fragment does not.
"""

from __future__ import annotations

import pytest

from repro.delta import GraphDelta, apply_delta
from repro.graph import small_world_social_graph
from repro.matching import QMatch
from repro.parallel import PQMatch

from fixtures import build_q3


@pytest.fixture
def churn_setup():
    graph = small_world_social_graph(60, 180, seed=11)
    coordinator = PQMatch(num_workers=2, d=2, executor="process")
    yield graph, coordinator
    coordinator.close()


def insert_only_delta(graph, seed=0):
    nodes = sorted(graph.nodes(), key=str)
    label = sorted({l for _, _, l in graph.edges()})[0]
    inserts = []
    for offset in range(seed, seed + 9, 3):
        source = nodes[offset % len(nodes)]
        target = nodes[(offset * 5 + 7) % len(nodes)]
        edge = (source, target, label)
        if source != target and not graph.has_edge(*edge) and edge not in inserts:
            inserts.append(edge)
    return GraphDelta.build(edge_inserts=inserts)


def test_delta_keeps_pool_alive_and_workers_rebuild_free(churn_setup):
    graph, coordinator = churn_setup
    pattern = build_q3(p=2)
    before = coordinator.evaluate_answer(pattern, graph)
    assert before == QMatch().evaluate_answer(pattern, graph)
    executor = coordinator.executor
    pool = executor._pool
    assert pool is not None

    delta = insert_only_delta(graph)
    inverse = apply_delta(graph, delta)
    updates = coordinator.apply_delta(graph, delta, inverse)
    assert updates, "churn inside fragments must produce updates"
    assert executor.deltas_shipped > 0

    after = coordinator.evaluate_answer(pattern, graph)
    assert after == QMatch().evaluate_answer(pattern, graph)
    assert executor._pool is pool, "the mutation recreated the pool"
    assert executor.last_worker_rebuilds == 0


def test_chained_deltas_replay_in_order(churn_setup):
    graph, coordinator = churn_setup
    pattern = build_q3(p=2)
    coordinator.evaluate_answer(pattern, graph)
    executor = coordinator.executor
    pool = executor._pool

    # Two mutations land before the next query: the worker replays both hops.
    for seed in (1, 23):
        delta = insert_only_delta(graph, seed=seed)
        inverse = apply_delta(graph, delta)
        coordinator.apply_delta(graph, delta, inverse)

    answer = coordinator.evaluate_answer(pattern, graph)
    assert answer == QMatch().evaluate_answer(pattern, graph)
    assert executor._pool is pool
    assert executor.last_worker_rebuilds == 0


def test_query_between_each_delta(churn_setup):
    graph, coordinator = churn_setup
    pattern = build_q3(p=2)
    coordinator.evaluate_answer(pattern, graph)
    executor = coordinator.executor
    pool = executor._pool
    for seed in (2, 31, 47):
        delta = insert_only_delta(graph, seed=seed)
        inverse = apply_delta(graph, delta)
        coordinator.apply_delta(graph, delta, inverse)
        assert coordinator.evaluate_answer(pattern, graph) == QMatch().evaluate_answer(
            pattern, graph
        )
    assert executor._pool is pool
    assert executor.last_worker_rebuilds == 0


def test_node_delete_falls_back_to_reship_without_worker_rebuilds(churn_setup):
    """A node-deleting batch cannot be replayed as an index refresh
    (``refresh_ok=False``), so the executor forgets the payload and the next
    run re-ships the fragment fresh — correct answers, still zero worker
    recompiles (the worker decodes the new snapshot, it never builds)."""
    graph, coordinator = churn_setup
    pattern = build_q3(p=2)
    coordinator.evaluate_answer(pattern, graph)
    executor = coordinator.executor

    victim = sorted(graph.nodes(), key=str)[0]
    delta = GraphDelta.build(node_deletes=[victim])
    inverse = apply_delta(graph, delta)
    coordinator.apply_delta(graph, delta, inverse)

    answer = coordinator.evaluate_answer(pattern, graph)
    assert answer == QMatch().evaluate_answer(pattern, graph)
    assert executor.last_worker_rebuilds == 0


def test_threaded_backend_apply_delta_is_transparent():
    graph = small_world_social_graph(60, 180, seed=11)
    pattern = build_q3(p=2)
    with PQMatch(num_workers=4, d=2, executor="thread") as coordinator:
        coordinator.evaluate_answer(pattern, graph)
        delta = insert_only_delta(graph)
        inverse = apply_delta(graph, delta)
        coordinator.apply_delta(graph, delta, inverse)
        assert coordinator.evaluate_answer(pattern, graph) == QMatch().evaluate_answer(
            pattern, graph
        )
