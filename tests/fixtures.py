"""Importable builders for the paper's example graphs and patterns.

This module exists so that both the test suite and the benchmarks can import
the shared builders **explicitly** (``from fixtures import build_q3``).  The
builders used to live in ``tests/conftest.py``, but pytest imports every
``conftest.py`` under the top-level module name ``conftest`` — with both
``tests/conftest.py`` and ``benchmarks/conftest.py`` present, whichever is
imported first shadows the other, and ``from conftest import build_q3``
resolved to the *benchmarks* conftest.  A plainly named helper module has no
such collision.

Everything here is a plain function (no pytest dependency); the fixtures in
``tests/conftest.py`` are thin wrappers around these builders.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from repro.graph import PropertyGraph
from repro.patterns import CountingQuantifier, PatternBuilder

__all__ = [
    "build_paper_g1",
    "build_paper_g2",
    "build_q2",
    "build_q3",
    "build_q4",
    "build_triangle",
    "quantifier",
    "FakeClock",
    "ThreadHarness",
    "run_threads",
]


# --------------------------------------------------------------------------
# Paper Figure 2, graph G1: a small social graph around the "Redmi 2A" phone.
# --------------------------------------------------------------------------


def build_paper_g1() -> PropertyGraph:
    """G1 of Fig. 2: x1–x3 follow reviewers v0–v4 of the Redmi 2A phone.

    * x1 follows v0; v0 recommends the phone.
    * x2 follows v1 and v2; both recommend the phone.
    * x3 follows v2, v3 and v4; v2 and v3 recommend it, v4 gives a bad rating.
    """
    graph = PropertyGraph("paper-G1")
    for person in ("x1", "x2", "x3", "v0", "v1", "v2", "v3", "v4"):
        graph.add_node(person, "person")
    graph.add_node("redmi", "Redmi_2A")
    graph.add_edge("x1", "v0", "follow")
    graph.add_edge("x2", "v1", "follow")
    graph.add_edge("x2", "v2", "follow")
    graph.add_edge("x3", "v2", "follow")
    graph.add_edge("x3", "v3", "follow")
    graph.add_edge("x3", "v4", "follow")
    for reviewer in ("v0", "v1", "v2", "v3"):
        graph.add_edge(reviewer, "redmi", "recom")
    graph.add_edge("v4", "redmi", "bad_rating")
    return graph


def build_q2():
    """Q2 of the paper: everyone xo follows recommends the Redmi 2A."""
    return (
        PatternBuilder("Q2")
        .focus("xo", "person")
        .node("z", "person")
        .node("redmi", "Redmi_2A")
        .edge("xo", "z", "follow", universal=True)
        .edge("z", "redmi", "recom")
        .build()
    )


def build_q3(p: int = 2):
    """Q3 of the paper: ≥ p followees recommend the phone, none gives a bad rating."""
    return (
        PatternBuilder("Q3")
        .focus("xo", "person")
        .node("z1", "person")
        .node("z2", "person")
        .node("redmi", "Redmi_2A")
        .edge("xo", "z1", "follow", at_least=p)
        .edge("z1", "redmi", "recom")
        .edge("xo", "z2", "follow", negated=True)
        .edge("z2", "redmi", "bad_rating")
        .build()
    )


# --------------------------------------------------------------------------
# Paper Figure 2, graph G2: a small knowledge graph of professors/advisees.
# --------------------------------------------------------------------------


def build_paper_g2() -> PropertyGraph:
    """G2 of Fig. 2: UK professors x4–x6 and the students v5–v9 they advised.

    x4, x5 and x6 are UK professors who each advised two students that are UK
    professors themselves; only x4 additionally holds a PhD, so with p = 2 the
    pattern Q4 answers {x5, x6} (Example 4 of the paper).
    """
    graph = PropertyGraph("paper-G2")
    for person in ("x4", "x5", "x6", "v5", "v6", "v7", "v8", "v9"):
        graph.add_node(person, "person")
    graph.add_node("prof", "prof")
    graph.add_node("phd", "PhD")
    graph.add_node("uk", "UK")
    for professor in ("x4", "x5", "x6", "v5", "v6", "v7", "v8", "v9"):
        graph.add_edge(professor, "prof", "is_a")
        graph.add_edge(professor, "uk", "in")
    graph.add_edge("x4", "phd", "is_a")
    graph.add_edge("v5", "phd", "is_a")
    advisor_pairs = [
        ("x4", "v5"),
        ("x4", "v6"),
        ("x5", "v6"),
        ("x5", "v7"),
        ("x6", "v8"),
        ("x6", "v9"),
    ]
    for advisor, student in advisor_pairs:
        graph.add_edge(advisor, student, "advisor")
    return graph


def build_q4(p: int = 2):
    """Q4 of the paper over the conftest vocabulary ('advisor' edges)."""
    return (
        PatternBuilder("Q4")
        .focus("xo", "person")
        .node("prof", "prof")
        .node("uk", "UK")
        .node("phd", "PhD")
        .node("z", "person")
        .edge("xo", "prof", "is_a")
        .edge("xo", "uk", "in")
        .edge("xo", "phd", "is_a", negated=True)
        .edge("xo", "z", "advisor", at_least=p)
        .edge("z", "prof", "is_a")
        .edge("z", "uk", "in")
        .build()
    )


# --------------------------------------------------------------------------
# Miscellaneous helpers
# --------------------------------------------------------------------------


def build_triangle() -> PropertyGraph:
    """A 3-cycle with one label; handy for exercising the generic engine."""
    graph = PropertyGraph("triangle")
    for node in ("a", "b", "c"):
        graph.add_node(node, "N")
    graph.add_edge("a", "b", "e")
    graph.add_edge("b", "c", "e")
    graph.add_edge("c", "a", "e")
    return graph


def quantifier(op: str, value, is_ratio: bool = False) -> CountingQuantifier:
    """Terse quantifier constructor used by a few parametrized tests."""
    return CountingQuantifier(op, value, is_ratio)


# --------------------------------------------------------------------------
# Deterministic concurrency helpers (the serve-tier stress/fault suites)
# --------------------------------------------------------------------------


class FakeClock:
    """A manually advanced clock for deterministic time-dependent tests.

    ``clock()`` returns the current fake time; :meth:`advance` moves it.
    Thread-safe, monotone by construction — tests control exactly when time
    passes instead of sleeping and hoping.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("a clock cannot go backwards")
        with self._lock:
            self._now += seconds
            return self._now


class ThreadHarness:
    """Run worker callables in lockstep with a barrier, join with a deadline.

    The stress suites need two properties no bare ``threading.Thread`` gives:

    * a **start barrier** so every worker begins its hammering at the same
      instant (maximising interleavings instead of accidentally serialising);
    * a **deadline on join** — a worker deadlocking must fail the test with a
      named culprit, never hang the whole pytest process.

    Worker exceptions are captured and re-raised (first one wins) from
    :meth:`join`, so assertion failures inside threads fail the test.
    """

    def __init__(self, workers: Sequence[Callable[[], None]], name: str = "stress") -> None:
        self._barrier = threading.Barrier(len(workers))
        self._errors: List[BaseException] = []
        self._errors_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._run, args=(worker,), name=f"{name}-{index}", daemon=True
            )
            for index, worker in enumerate(workers)
        ]

    def _run(self, worker: Callable[[], None]) -> None:
        try:
            self._barrier.wait(timeout=30.0)
            worker()
        except BaseException as error:  # noqa: BLE001 — reported via join()
            with self._errors_lock:
                self._errors.append(error)

    def start(self) -> "ThreadHarness":
        for thread in self._threads:
            thread.start()
        return self

    def join(self, timeout: float = 60.0) -> None:
        """Join every worker within *timeout* total; raise on stragglers.

        Raises ``AssertionError`` naming the stuck threads on deadline, and
        re-raises the first captured worker exception otherwise.
        """
        import time

        end = time.monotonic() + timeout
        stuck = []
        for thread in self._threads:
            remaining = end - time.monotonic()
            thread.join(timeout=max(0.0, remaining))
            if thread.is_alive():
                stuck.append(thread.name)
        if stuck:
            raise AssertionError(f"threads did not finish within {timeout}s: {stuck}")
        with self._errors_lock:
            if self._errors:
                raise self._errors[0]


def run_threads(
    workers: Sequence[Callable[[], None]],
    timeout: float = 60.0,
    name: str = "stress",
) -> None:
    """Barrier-start *workers*, join them under *timeout*, re-raise failures."""
    ThreadHarness(workers, name=name).start().join(timeout=timeout)
