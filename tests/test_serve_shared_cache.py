"""SharedResultCache unit tests: the sqlite L2 and its integrity gates.

Fault *injection* (truncation, byte flips, locks, mid-write kills against a
live fleet) lives in ``test_serve_faults.py``; this file pins the handle's
own contract — keying, round-trips, schema skew, closed semantics.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.serve import SharedResultCache
from repro.serve.shared_cache import SCHEMA_VERSION
from repro.utils.errors import ReproError

FP = "c" * 64
OPT = "(engine='qmatch')"
VER = "3:1:4"


@pytest.fixture
def store(tmp_path):
    cache = SharedResultCache(str(tmp_path / "shared.sqlite"))
    yield cache
    cache.close()


def test_store_lookup_round_trip(store):
    answer = frozenset({"a", ("tuple", 1), 7})
    assert store.store(FP, OPT, VER, answer)
    assert store.lookup(FP, OPT, VER) == answer
    assert store.stats.hits == 1 and store.stats.stores == 1
    assert store.entry_count() == 1


def test_miss_on_any_key_component(store):
    store.store(FP, OPT, VER, {"x"})
    assert store.lookup("d" * 64, OPT, VER) is None
    assert store.lookup(FP, "(engine='other')", VER) is None
    assert store.lookup(FP, OPT, "3:1:5") is None
    assert store.stats.misses == 3 and store.stats.degraded == 0


def test_replace_overwrites_in_place(store):
    store.store(FP, OPT, VER, {"old"})
    store.store(FP, OPT, VER, {"new"})
    assert store.lookup(FP, OPT, VER) == frozenset({"new"})
    assert store.entry_count() == 1


def test_cross_handle_sharing(tmp_path):
    path = str(tmp_path / "shared.sqlite")
    with SharedResultCache(path) as writer:
        writer.store(FP, OPT, VER, {"shared-answer"})
    with SharedResultCache(path) as reader:
        assert reader.lookup(FP, OPT, VER) == frozenset({"shared-answer"})
        assert reader.stats.hits == 1


def test_schema_version_skew_degrades_everything(tmp_path):
    path = str(tmp_path / "shared.sqlite")
    with SharedResultCache(path) as writer:
        writer.store(FP, OPT, VER, {"x"})
    connection = sqlite3.connect(path)
    with connection:
        connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
    connection.close()
    with SharedResultCache(path) as skewed:
        # A foreign writer owns the file: reads degrade, writes are dropped.
        assert skewed.lookup(FP, OPT, VER) is None
        assert not skewed.store(FP, OPT, "9:9", {"y"})
        assert skewed.stats.degraded == 2 and skewed.stats.hits == 0
        assert skewed.entry_count() is None
    # The original (matching-version) handle still works and the foreign
    # entry was never clobbered.
    connection = sqlite3.connect(path)
    count = connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
    connection.close()
    assert count == 1


def test_unopenable_path_degrades_not_raises(tmp_path):
    missing_dir = tmp_path / "does" / "not" / "exist" / "db.sqlite"
    cache = SharedResultCache(str(missing_dir))
    assert cache.stats.degraded >= 1
    assert cache.lookup(FP, OPT, VER) is None
    assert not cache.store(FP, OPT, VER, {"x"})
    cache.close()


def test_embedded_key_gate_rejects_transplanted_blob(tmp_path):
    """A CRC-valid payload copied under another row must never be served."""
    path = str(tmp_path / "shared.sqlite")
    store = SharedResultCache(path)
    store.store(FP, OPT, "1:1", {"answer-at-1:1"})
    donor_key = SharedResultCache.cache_key(FP, OPT, "1:1")
    target_key = SharedResultCache.cache_key(FP, OPT, "2:2")
    connection = sqlite3.connect(path)
    with connection:
        crc, payload = connection.execute(
            "SELECT crc, payload FROM entries WHERE cache_key = ?", (donor_key,)
        ).fetchone()
        connection.execute(
            "INSERT OR REPLACE INTO entries (cache_key, crc, payload) VALUES (?, ?, ?)",
            (target_key, crc, payload),
        )
    connection.close()
    # CRC passes (the blob is intact) but the embedded key betrays the splice.
    assert store.lookup(FP, OPT, "2:2") is None
    assert store.last_degraded_reason == "embedded key mismatch"
    # The legitimate row is untouched.
    assert store.lookup(FP, OPT, "1:1") == frozenset({"answer-at-1:1"})
    store.close()


def test_closed_handle_raises_repro_error_not_degrades(store):
    store.close()
    with pytest.raises(ReproError):
        store.lookup(FP, OPT, VER)
    with pytest.raises(ReproError):
        store.store(FP, OPT, VER, {"x"})


def test_close_is_idempotent_and_repr_is_cheap(store):
    store.close()
    store.close()
    assert "SharedResultCache" in repr(store)
