"""Tests for the synthetic datasets, the paper patterns/rules and the bench harness."""

from __future__ import annotations

import pytest

from repro.bench import EngineSpec, records_to_table, run_engines, summarize_records
from repro.datasets import (
    DATASET_NAMES,
    PokecConfig,
    YagoConfig,
    benchmark_graph,
    paper_pattern,
    paper_rule,
    pokec_like_graph,
    workload_patterns,
    yago_like_graph,
    zipf_workload,
)
from repro.matching import EnumMatcher, QMatch
from repro.utils import ReproError


class TestPokecLike:
    def test_vocabulary(self, small_pokec):
        labels = small_pokec.node_labels()
        assert {"person", "album", "product", "music_club", "Redmi_2A"} <= labels
        edge_labels = {label for _, _, label in small_pokec.edges()}
        assert {"follow", "like", "recom", "buy", "in"} <= edge_labels

    def test_determinism(self):
        config = PokecConfig(num_users=80, seed=3)
        assert pokec_like_graph(config) == pokec_like_graph(config)

    def test_planted_q1_cohort_matches(self, small_pokec):
        answer = QMatch().evaluate_answer(paper_pattern("Q1"), small_pokec)
        assert answer, "the planted 80%-likers cohort should produce Q1 matches"

    def test_planted_q2_cohort_matches(self, small_pokec):
        answer = QMatch().evaluate_answer(paper_pattern("Q2"), small_pokec)
        assert answer

    def test_planted_q3_cohort_and_negation(self, small_pokec):
        q3 = paper_pattern("Q3", p=2)
        result = QMatch().evaluate(q3, small_pokec)
        assert result.positive_answer, "the >= p branch should have matches"
        assert result.answer < result.positive_answer, (
            "the planted detractor followers should be removed by the negated edge"
        )

    def test_scaling_changes_size_not_vocabulary(self):
        small = benchmark_graph("pokec", scale=0.3, seed=2)
        larger = benchmark_graph("pokec", scale=0.6, seed=2)
        assert larger.num_nodes > small.num_nodes
        assert small.node_labels() == larger.node_labels()


class TestYagoLike:
    def test_vocabulary(self, small_yago):
        labels = small_yago.node_labels()
        assert {"person", "prof", "PhD", "UK", "USA", "prize", "university"} <= labels
        edge_labels = {label for _, _, label in small_yago.edges()}
        assert {"is_a", "advised", "in", "won", "citizen_of", "graduated"} <= edge_labels

    def test_determinism(self):
        config = YagoConfig(num_persons=100, seed=9)
        assert yago_like_graph(config) == yago_like_graph(config)

    def test_planted_q4_cohort_matches(self, small_yago):
        answer = QMatch().evaluate_answer(paper_pattern("Q4", p=2), small_yago)
        assert answer, "the planted UK professors without a PhD should match Q4"

    def test_planted_q5_cohort_matches(self, small_yago):
        answer = QMatch().evaluate_answer(paper_pattern("Q5"), small_yago)
        assert answer

    def test_planted_r7_cohort_matches(self, small_yago):
        evaluation = paper_rule("R7").evaluate(small_yago)
        assert evaluation.support > 0
        assert evaluation.confidence > 0.5


class TestZipfWorkload:
    def _patterns(self, count=8):
        return [paper_pattern("Q1", ratio=10.0 * (rank + 1)) for rank in range(count)]

    def test_deterministic_and_complete(self):
        patterns = self._patterns()
        one = zipf_workload(patterns, 40, seed=3)
        two = zipf_workload(patterns, 40, seed=3)
        assert [p.name for p in one] == [p.name for p in two]
        assert len(one) == 40
        # length >= uniques: the round-robin seeding guarantees full coverage
        assert {id(p) for p in one} == {id(p) for p in patterns}

    def test_skew_favours_top_ranks(self):
        patterns = self._patterns()
        stream = zipf_workload(patterns, 400, exponent=1.5, seed=9)
        counts = [sum(1 for p in stream if p is pattern) for pattern in patterns]
        assert counts[0] > counts[-1]
        assert counts[0] >= max(counts[1:])

    def test_short_stream_still_honours_the_exponent(self):
        """length < uniques must draw by weight, not return a uniform prefix."""
        patterns = self._patterns()
        stream = zipf_workload(patterns, 4, exponent=50.0, seed=11)
        assert len(stream) == 4
        # With an extreme exponent the head rank dominates completely.
        assert all(p is patterns[0] for p in stream)

    def test_validation(self):
        patterns = self._patterns(2)
        with pytest.raises(ReproError):
            zipf_workload([], 5)
        with pytest.raises(ReproError):
            zipf_workload(patterns, -1)
        with pytest.raises(ReproError):
            zipf_workload(patterns, 5, exponent=0.0)
        assert zipf_workload(patterns, 0) == []


class TestBenchmarkGraphFactory:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_datasets_build(self, name):
        graph = benchmark_graph(name, scale=0.2, seed=1)
        assert graph.num_nodes > 0
        assert graph.num_edges > 0

    def test_unknown_dataset(self):
        with pytest.raises(ReproError):
            benchmark_graph("twitter")

    def test_invalid_scale(self):
        with pytest.raises(ReproError):
            benchmark_graph("pokec", scale=0.0)

    def test_unknown_pattern_and_rule(self):
        with pytest.raises(ReproError):
            paper_pattern("Q9")
        with pytest.raises(ReproError):
            paper_rule("R9")

    def test_paper_patterns_validate(self):
        for name in ("Q1", "Q2", "Q3", "Q4", "Q5"):
            paper_pattern(name).validate()

    def test_workload_patterns_are_valid_and_deterministic(self, small_pokec):
        first = workload_patterns(small_pokec, count=3, seed=7)
        second = workload_patterns(small_pokec, count=3, seed=7)
        assert first == second
        for pattern in first:
            pattern.validate()
            assert pattern.size_signature()[3] == 1


class TestBenchHarness:
    def test_run_engines_produces_records(self, small_pokec, dataset_q1):
        engines = [
            EngineSpec("QMatch", lambda: QMatch()),
            EngineSpec("Enum", lambda: EnumMatcher()),
        ]
        records = run_engines(engines, [dataset_q1], small_pokec)
        assert len(records) == 2
        answers = {record.answer_size for record in records}
        assert len(answers) == 1, "all engines must report the same answer size"

    def test_summary_and_table(self, small_pokec, dataset_q1):
        engines = [EngineSpec("QMatch", lambda: QMatch())]
        records = run_engines(engines, [dataset_q1], small_pokec)
        summary = summarize_records(records)
        assert summary["QMatch"]["queries"] == 1
        table = records_to_table(records, title="demo")
        assert "QMatch" in table and "demo" in table

    def test_parallel_engine_extras(self, small_pokec, dataset_q1):
        from repro.parallel import pqmatch_engine

        engines = [EngineSpec("PQMatch", lambda: pqmatch_engine(num_workers=2))]
        records = run_engines(engines, [dataset_q1], small_pokec)
        assert "work_speedup" in records[0].extras


class TestUpdateWorkload:
    def _graph(self):
        from repro.graph import small_world_social_graph

        return small_world_social_graph(50, 120, seed=3)

    def _patterns(self, graph):
        return workload_patterns(graph, count=3, seed=5)

    def test_deterministic_and_replayable(self):
        from repro.datasets import update_workload
        from repro.delta import apply_delta

        graph = self._graph()
        patterns = self._patterns(graph)
        first = update_workload(graph, patterns, 40, update_fraction=0.4, seed=9)
        second = update_workload(graph, patterns, 40, update_fraction=0.4, seed=9)
        assert [op.kind for op in first] == [op.kind for op in second]
        assert [op.delta for op in first if op.is_update] == [
            op.delta for op in second if op.is_update
        ]
        # Every delta must apply cleanly when the stream is replayed in order
        # (the generator simulated the stream against a scratch copy).
        replay = graph.copy()
        for op in first:
            if op.is_update:
                apply_delta(replay, op.delta)

    def test_source_graph_is_never_mutated(self):
        from repro.datasets import update_workload

        graph = self._graph()
        reference = self._graph()
        update_workload(graph, self._patterns(graph), 40, update_fraction=0.5, seed=2)
        assert graph == reference and graph.version == reference.version

    def test_mix_and_op_kinds(self):
        from repro.datasets import update_workload

        graph = self._graph()
        stream = update_workload(
            graph, self._patterns(graph), 200, update_fraction=0.3, seed=7
        )
        updates = [op for op in stream if op.is_update]
        queries = [op for op in stream if not op.is_update]
        assert updates and queries
        assert 0.15 < len(updates) / len(stream) < 0.45
        assert all(op.delta is not None and op.pattern is None for op in updates)
        assert all(op.pattern is not None and op.delta is None for op in queries)
        assert any(op.delta.edge_inserts for op in updates)
        assert any(op.delta.edge_deletes for op in updates)

    def test_batches_never_insert_and_delete_the_same_edge(self):
        """Regression: within one multi-op batch, a delete draw could pick an
        edge inserted earlier in the same batch (and vice versa), producing a
        delta that GraphDelta validation rejects on replay."""
        from repro.datasets import update_workload
        from repro.delta import apply_delta
        from repro.graph import small_world_social_graph

        graph = small_world_social_graph(30, 70, seed=0)
        patterns = workload_patterns(graph, count=2, seed=1)
        replay = graph.copy()
        for seed in range(6):
            stream = update_workload(
                graph, patterns, 60, update_fraction=0.6, ops_per_update=4, seed=seed
            )
            for op in stream:
                if op.is_update:
                    assert not set(op.delta.edge_inserts) & set(op.delta.edge_deletes)
            scratch = replay.copy()
            for op in stream:
                if op.is_update:
                    apply_delta(scratch, op.delta)  # must never raise

    def test_stream_always_has_exactly_length_elements(self):
        """Regression: a batch whose every op fails to draw (near-complete
        graph) used to be dropped, shortening the stream below `length`."""
        from repro.datasets import update_workload
        from repro.graph import PropertyGraph

        graph = PropertyGraph("dense")
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_edge("a", "b", "follow")
        graph.add_edge("b", "a", "follow")  # every non-loop edge present
        patterns = self._patterns(self._graph())
        for seed in range(5):
            stream = update_workload(
                graph, patterns, 50, update_fraction=0.8, ops_per_update=2, seed=seed
            )
            assert len(stream) == 50

    def test_zipf_skew_favours_early_patterns(self):
        from repro.datasets import update_workload

        graph = self._graph()
        patterns = self._patterns(graph)
        stream = update_workload(
            graph, patterns, 300, update_fraction=0.0, exponent=1.5, seed=4
        )
        counts = [0] * len(patterns)
        for op in stream:
            counts[patterns.index(op.pattern)] += 1
        assert counts[0] > counts[-1]

    def test_validation(self):
        from repro.datasets import update_workload

        graph = self._graph()
        patterns = self._patterns(graph)
        with pytest.raises(ReproError):
            update_workload(graph, [], 10)
        with pytest.raises(ReproError):
            update_workload(graph, patterns, -1)
        with pytest.raises(ReproError):
            update_workload(graph, patterns, 10, update_fraction=1.0)
        with pytest.raises(ReproError):
            update_workload(graph, patterns, 10, ops_per_update=0)
        with pytest.raises(ReproError):
            update_workload(graph, patterns, 10, exponent=0.0)
