"""Tests for the generic subgraph-isomorphism engine (procedure Match)."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph
from repro.matching import (
    count_isomorphisms,
    exists_isomorphism,
    find_isomorphisms,
    label_candidates,
)
from repro.patterns import PatternBuilder, QuantifiedGraphPattern
from repro.utils import MatchingError, WorkCounter


def path_pattern():
    return (
        PatternBuilder("path")
        .focus("a", "person")
        .node("b", "person")
        .node("p", "product")
        .edge("a", "b", "follow")
        .edge("b", "p", "recom")
        .build()
    )


@pytest.fixture
def small_social() -> PropertyGraph:
    graph = PropertyGraph("social")
    for person in ("u1", "u2", "u3"):
        graph.add_node(person, "person")
    graph.add_node("prod", "product")
    graph.add_edge("u1", "u2", "follow")
    graph.add_edge("u1", "u3", "follow")
    graph.add_edge("u2", "prod", "recom")
    graph.add_edge("u3", "prod", "recom")
    return graph


class TestEnumeration:
    def test_all_isomorphisms_found(self, small_social):
        pattern = path_pattern()
        assignments = list(find_isomorphisms(pattern, small_social))
        assert len(assignments) == 2
        assert {a["b"] for a in assignments} == {"u2", "u3"}
        for assignment in assignments:
            assert assignment["a"] == "u1"
            assert assignment["p"] == "prod"

    def test_labels_must_match(self, small_social):
        pattern = (
            PatternBuilder()
            .focus("a", "robot")
            .node("b", "person")
            .edge("a", "b", "follow")
            .build()
        )
        assert list(find_isomorphisms(pattern, small_social)) == []

    def test_edge_labels_must_match(self, small_social):
        pattern = (
            PatternBuilder()
            .focus("a", "person")
            .node("b", "person")
            .edge("a", "b", "likes")
            .build()
        )
        assert not exists_isomorphism(pattern, small_social)

    def test_injectivity(self, triangle_graph):
        # A 2-node pattern with edges both ways requires two distinct nodes.
        pattern = (
            PatternBuilder()
            .focus("u", "N")
            .node("v", "N")
            .edge("u", "v", "e")
            .edge("v", "u", "e")
            .build()
        )
        assignments = list(find_isomorphisms(pattern, triangle_graph))
        assert assignments == []  # the triangle has no 2-cycle

    def test_cycle_pattern_on_triangle(self, triangle_graph):
        pattern = (
            PatternBuilder()
            .focus("u1", "N")
            .node("u2", "N")
            .node("u3", "N")
            .edge("u1", "u2", "e")
            .edge("u2", "u3", "e")
            .edge("u3", "u1", "e")
            .build()
        )
        assert count_isomorphisms(pattern, triangle_graph) == 3  # three rotations

    def test_empty_pattern_rejected(self, small_social):
        with pytest.raises(MatchingError):
            list(find_isomorphisms(QuantifiedGraphPattern(), small_social))


class TestAnchorsAndLimits:
    def test_anchor_restricts_search(self, small_social):
        pattern = path_pattern()
        anchored = list(find_isomorphisms(pattern, small_social, anchor={"b": "u2"}))
        assert len(anchored) == 1
        assert anchored[0]["b"] == "u2"

    def test_inconsistent_anchor_yields_nothing(self, small_social):
        pattern = path_pattern()
        assert list(find_isomorphisms(pattern, small_social, anchor={"a": "u2"})) == []
        # u2 follows nobody, so anchoring the focus there cannot extend.

    def test_anchor_on_unknown_pattern_node(self, small_social):
        with pytest.raises(MatchingError):
            list(find_isomorphisms(path_pattern(), small_social, anchor={"ghost": "u1"}))

    def test_anchor_violating_injectivity(self, small_social):
        pattern = path_pattern()
        assert (
            list(
                find_isomorphisms(
                    pattern, small_social, anchor={"a": "u1", "b": "u1"}
                )
            )
            == []
        )

    def test_limit_stops_enumeration(self, small_social):
        pattern = path_pattern()
        assert len(list(find_isomorphisms(pattern, small_social, limit=1))) == 1

    def test_exists_isomorphism(self, small_social):
        assert exists_isomorphism(path_pattern(), small_social)
        assert not exists_isomorphism(path_pattern(), PropertyGraph())


class TestCandidatesAndCounters:
    def test_label_candidates(self, small_social):
        candidates = label_candidates(path_pattern(), small_social)
        assert candidates["a"] == {"u1", "u2", "u3"}
        assert candidates["p"] == {"prod"}

    def test_explicit_candidates_restrict_search(self, small_social):
        pattern = path_pattern()
        candidates = label_candidates(pattern, small_social)
        candidates["b"] = {"u2"}
        assignments = list(find_isomorphisms(pattern, small_social, candidates=candidates))
        assert {a["b"] for a in assignments} == {"u2"}

    def test_counter_records_extensions(self, small_social):
        counter = WorkCounter()
        list(find_isomorphisms(path_pattern(), small_social, counter=counter))
        assert counter.extensions > 0

    def test_candidate_order_is_respected(self, small_social):
        pattern = path_pattern()
        ordering = {"b": ["u3", "u2"]}
        first = next(
            iter(find_isomorphisms(pattern, small_social, candidate_order=ordering))
        )
        assert first["b"] == "u3"


class TestLabelCandidateAliasing:
    """Aliasing audit for ``label_candidates`` (the ``nodes_with_label`` bug
    class from the index layer: handing out a set someone else also holds).
    """

    def test_clearing_returned_pools_leaves_graph_and_future_calls_intact(
        self, small_social
    ):
        pattern = path_pattern()
        for pool in label_candidates(pattern, small_social).values():
            pool.clear()
        assert small_social.nodes_with_label("person") == {"u1", "u2", "u3"}
        fresh = label_candidates(pattern, small_social)
        assert fresh["a"] == {"u1", "u2", "u3"}
        assert fresh["p"] == {"prod"}
        small_social.validate()

    def test_same_label_pattern_nodes_get_independent_pools(self, small_social):
        candidates = label_candidates(path_pattern(), small_social)
        assert candidates["a"] == candidates["b"]
        assert candidates["a"] is not candidates["b"]
        candidates["a"].discard("u1")
        assert "u1" in candidates["b"]

    def test_memoizing_graph_cannot_leak_its_internal_set(self):
        # A graph that memoises label lookups (or returns a frozenset) must
        # still yield one independent *mutable* pool per pattern node.
        class SharingGraph:
            def __init__(self):
                self.shared = {"u1", "u2", "u3", "prod"}

            def nodes_with_label(self, label):
                return self.shared  # the same object, every call

        graph = SharingGraph()
        candidates = label_candidates(path_pattern(), graph)
        pools = list(candidates.values())
        assert all(pools[0] is not pool for pool in pools[1:])
        assert all(pool is not graph.shared for pool in pools)
        candidates["a"].clear()
        assert candidates["b"] == graph.shared
        assert graph.shared == {"u1", "u2", "u3", "prod"}

        class FrozenGraph:
            def nodes_with_label(self, label):
                return frozenset({"u1"})

        frozen = label_candidates(path_pattern(), FrozenGraph())
        frozen["a"].add("u2")  # pools must be mutable sets
        assert frozen["b"] == {"u1"}
