"""Canonicalization and fingerprints (:mod:`repro.service.patterns`).

The contract under test: the fingerprint is invariant under variable
renaming, edge insertion order and quantifier spelling, and *only* under
those — changing labels, quantifiers, topology or the focus changes it.
Soundness for caching is pinned by the hypothesis property at the bottom:
serving a renamed pattern must produce answers byte-identical to evaluating
the original cold.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import paper_pattern
from repro.matching.qmatch import QMatch
from repro.patterns.builder import PatternBuilder
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.service.patterns import (
    canonicalize,
    normalize_quantifier,
    pattern_fingerprint,
)
from repro.utils.errors import PatternError

from test_property_based import labeled_graphs, quantified_patterns

PAPER_PATTERNS = ["Q1", "Q2", "Q3", "Q4", "Q5"]


def _renamed(pattern: QuantifiedGraphPattern, seed: int = 0) -> QuantifiedGraphPattern:
    """A randomly renamed copy of *pattern* (same structure, fresh names)."""
    rng = random.Random(seed)
    nodes = list(pattern.nodes())
    fresh = [f"renamed_{index}" for index in range(len(nodes))]
    rng.shuffle(fresh)
    clone = pattern.relabel_nodes(dict(zip(nodes, fresh)))
    clone.name = f"{pattern.name}#renamed{seed}"
    return clone


class TestInvariance:
    @pytest.mark.parametrize("name", PAPER_PATTERNS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rename_preserves_fingerprint(self, name, seed):
        pattern = paper_pattern(name)
        assert pattern_fingerprint(_renamed(pattern, seed)) == pattern_fingerprint(pattern)

    def test_edge_insertion_order_is_irrelevant(self):
        forward = QuantifiedGraphPattern(name="fwd")
        backward = QuantifiedGraphPattern(name="bwd")
        for target in (forward, backward):
            for node, label in [("x", "person"), ("y", "person"), ("p", "product")]:
                target.add_node(node, label)
            target.set_focus("x")
        edges = [
            ("x", "y", "follow", CountingQuantifier.at_least(2)),
            ("y", "p", "recom", None),
            ("x", "p", "like", None),
        ]
        for source, target_node, label, quantifier in edges:
            forward.add_edge(source, target_node, label, quantifier)
        for source, target_node, label, quantifier in reversed(edges):
            backward.add_edge(source, target_node, label, quantifier)
        assert pattern_fingerprint(forward) == pattern_fingerprint(backward)

    def test_quantifier_spelling_normalised(self):
        strict = (PatternBuilder("gt").focus("x", "person").node("y", "product")
                  .edge("x", "y", "buy", more_than=1).build())
        inclusive = (PatternBuilder("ge").focus("x", "person").node("y", "product")
                     .edge("x", "y", "buy", at_least=2).build())
        assert pattern_fingerprint(strict) == pattern_fingerprint(inclusive)

    def test_ratio_value_types_normalised(self):
        as_int = (PatternBuilder("i").focus("x", "person").node("y", "person")
                  .edge("x", "y", "follow", at_least_percent=80).build())
        as_float = (PatternBuilder("f").focus("x", "person").node("y", "person")
                    .edge("x", "y", "follow", at_least_percent=80.0).build())
        assert pattern_fingerprint(as_int) == pattern_fingerprint(as_float)

    def test_pattern_name_is_irrelevant(self):
        one = paper_pattern("Q1")
        two = paper_pattern("Q1")
        two.name = "totally-different"
        assert pattern_fingerprint(one) == pattern_fingerprint(two)

    def test_symmetric_branches_survive_swapping(self):
        def build(first, second):
            pattern = QuantifiedGraphPattern(name="sym")
            pattern.add_node("x", "person")
            pattern.set_focus("x")
            for branch in (first, second):
                pattern.add_node(branch, "person")
                pattern.add_edge("x", branch, "follow")
            return pattern

        assert pattern_fingerprint(build("a", "b")) == pattern_fingerprint(build("b", "a"))


class TestDistinction:
    def test_paper_patterns_pairwise_distinct(self):
        fingerprints = {name: pattern_fingerprint(paper_pattern(name)) for name in PAPER_PATTERNS}
        assert len(set(fingerprints.values())) == len(PAPER_PATTERNS)

    def test_node_label_matters(self):
        person = (PatternBuilder("p").focus("x", "person").node("y", "person")
                  .edge("x", "y", "follow").build())
        product = (PatternBuilder("q").focus("x", "person").node("y", "product")
                   .edge("x", "y", "follow").build())
        assert pattern_fingerprint(person) != pattern_fingerprint(product)

    def test_quantifier_matters(self):
        base = (PatternBuilder("b").focus("x", "person").node("y", "person")
                .edge("x", "y", "follow", at_least=2).build())
        other = (PatternBuilder("o").focus("x", "person").node("y", "person")
                 .edge("x", "y", "follow", at_least=3).build())
        assert pattern_fingerprint(base) != pattern_fingerprint(other)

    def test_focus_position_matters(self):
        forward = QuantifiedGraphPattern(name="fwd")
        for pattern in (forward,):
            pattern.add_node("a", "person")
            pattern.add_node("b", "person")
            pattern.add_edge("a", "b", "follow")
        forward.set_focus("a")
        backward = forward.copy()
        backward.set_focus("b")
        assert pattern_fingerprint(forward) != pattern_fingerprint(backward)

    def test_edge_direction_matters(self):
        out_edge = (PatternBuilder("out").focus("x", "person").node("y", "person")
                    .edge("x", "y", "follow").build())
        in_edge = QuantifiedGraphPattern(name="in")
        in_edge.add_node("x", "person")
        in_edge.add_node("y", "person")
        in_edge.add_edge("y", "x", "follow")
        in_edge.set_focus("x")
        assert pattern_fingerprint(out_edge) != pattern_fingerprint(in_edge)


class TestCanonicalForm:
    def test_focus_required(self):
        pattern = QuantifiedGraphPattern(name="no-focus")
        pattern.add_node("x", "person")
        with pytest.raises(PatternError):
            canonicalize(pattern)

    def test_normalize_quantifier_tokens(self):
        assert normalize_quantifier(CountingQuantifier.negation()) == ("!",)
        assert normalize_quantifier(CountingQuantifier.existential()) == ("#", ">=", "1")
        assert normalize_quantifier(CountingQuantifier.more_than(2)) == ("#", ">=", "3")
        assert normalize_quantifier(CountingQuantifier.universal()) == ("%", "=", "100.0")

    @pytest.mark.parametrize("name", PAPER_PATTERNS)
    def test_as_pattern_round_trips_fingerprint(self, name):
        form = canonicalize(paper_pattern(name))
        rebuilt = form.as_pattern()
        assert canonicalize(rebuilt).fingerprint == form.fingerprint
        assert rebuilt.num_nodes == form.num_nodes
        assert rebuilt.num_edges == form.num_edges

    def test_as_pattern_preserves_answers(self, paper_g2, pattern_q4):
        rebuilt = canonicalize(pattern_q4).as_pattern()
        engine = QMatch()
        assert engine.evaluate_answer(rebuilt, paper_g2) == engine.evaluate_answer(
            pattern_q4, paper_g2
        )

    def test_order_maps_every_node(self, pattern_q3):
        form = canonicalize(pattern_q3)
        assert sorted(form.order.values()) == list(range(pattern_q3.num_nodes))
        assert set(form.order) == set(pattern_q3.nodes())


# ---------------------------------------------------------------------------
# Hypothesis: rename-invariance and answer soundness on random inputs
# ---------------------------------------------------------------------------


@given(pattern=quantified_patterns(), seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_renamed_pattern_has_same_fingerprint(pattern, seed):
    assert pattern_fingerprint(_renamed(pattern, seed)) == pattern_fingerprint(pattern)


@given(graph=labeled_graphs(), pattern=quantified_patterns(), seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_canonical_rebuild_is_answer_preserving(graph, pattern, seed):
    """Canonical identity is sound: equal fingerprints ⇒ identical answers."""
    renamed = _renamed(pattern, seed)
    assert pattern_fingerprint(renamed) == pattern_fingerprint(pattern)
    engine = QMatch()
    expected = engine.evaluate_answer(pattern, graph)
    assert engine.evaluate_answer(renamed, graph) == expected
    assert engine.evaluate_answer(canonicalize(pattern).as_pattern(), graph) == expected
