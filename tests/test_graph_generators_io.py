"""Tests for the synthetic graph generators and graph I/O round-trips."""

from __future__ import annotations

import pytest

from repro.graph import (
    PropertyGraph,
    default_label_alphabet,
    graph_from_json,
    graph_to_json,
    random_labeled_graph,
    read_edge_list,
    read_json,
    ring_of_cliques,
    small_world_social_graph,
    write_edge_list,
    write_json,
)
from repro.utils import GraphError


class TestSmallWorldGenerator:
    def test_sizes_are_respected(self):
        graph = small_world_social_graph(200, 600, seed=1)
        assert graph.num_nodes == 200
        assert graph.num_edges == pytest.approx(600, abs=60)

    def test_determinism_per_seed(self):
        a = small_world_social_graph(120, 360, seed=42)
        b = small_world_social_graph(120, 360, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = small_world_social_graph(120, 360, seed=1)
        b = small_world_social_graph(120, 360, seed=2)
        assert a != b

    def test_labels_come_from_alphabet(self):
        labels = ["X", "Y"]
        graph = small_world_social_graph(50, 100, node_labels=labels, seed=3)
        assert graph.node_labels() <= set(labels)

    def test_default_alphabet_size(self):
        assert len(default_label_alphabet()) == 30
        assert default_label_alphabet(5) == ["L0", "L1", "L2", "L3", "L4"]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            small_world_social_graph(0, 10)
        with pytest.raises(ValueError):
            small_world_social_graph(10, -1)

    def test_single_node_graph(self):
        graph = small_world_social_graph(1, 10, seed=1)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_degree_distribution_is_skewed(self):
        """The preferential-attachment pass should create a heavy tail."""
        graph = small_world_social_graph(300, 1500, seed=9)
        degrees = sorted((graph.out_degree(n) + graph.in_degree(n)) for n in graph.nodes())
        top_share = sum(degrees[-30:]) / sum(degrees)
        assert top_share > 0.15  # top 10% of nodes carry a disproportionate share


class TestSimpleGenerators:
    def test_random_labeled_graph_probability_bounds(self):
        with pytest.raises(ValueError):
            random_labeled_graph(5, 1.5)
        graph = random_labeled_graph(10, 0.0, seed=1)
        assert graph.num_edges == 0
        full = random_labeled_graph(5, 1.0, seed=1)
        assert full.num_edges == 5 * 4

    def test_ring_of_cliques_structure(self):
        graph = ring_of_cliques(3, 4)
        assert graph.num_nodes == 12
        # each clique: 4*3 directed edges; 3 bridges
        assert graph.num_edges == 3 * 12 + 3
        graph.validate()

    def test_ring_of_cliques_invalid(self):
        with pytest.raises(ValueError):
            ring_of_cliques(0, 3)


class TestIo:
    def test_edge_list_round_trip(self, tmp_path):
        graph = small_world_social_graph(60, 150, seed=4)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, name=graph.name)
        assert loaded == graph

    def test_json_round_trip_preserves_attrs(self, tmp_path):
        graph = PropertyGraph("attrs")
        graph.add_node("a", "person", city="Presov", age=30)
        graph.add_node("b", "person")
        graph.add_edge("a", "b", "follow")
        path = tmp_path / "graph.json"
        write_json(graph, path)
        loaded = read_json(path)
        assert loaded == graph
        assert loaded.node_attrs("a")["city"] == "Presov"

    def test_json_dict_round_trip(self):
        graph = random_labeled_graph(12, 0.2, seed=2)
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_malformed_edge_list_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("N a person\nE a\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("X what is this\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# header\n\nN 1 person\nN 2 person\nE 1 2 follow\n", encoding="utf-8")
        graph = read_edge_list(path)
        assert graph.num_nodes == 2
        assert graph.has_edge(1, 2, "follow")
