"""The version-aware LRU result cache (:mod:`repro.service.cache`).

The invalidation contract mirrors the index layer's staleness discipline:
structural mutations (which bump ``PropertyGraph.version``) make entries
unreachable, attribute-only updates (which do not) keep them live.
"""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph
from repro.service.cache import ResultCache
from repro.utils.errors import ReproError


def _graph(name="g"):
    graph = PropertyGraph(name)
    graph.add_node("a", "person")
    graph.add_node("b", "person")
    graph.add_edge("a", "b", "follow")
    return graph


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        assert cache.lookup(graph, "fp1") is None
        stored = cache.store(graph, "fp1", {"a", "b"})
        assert stored == frozenset({"a", "b"})
        hit = cache.lookup(graph, "fp1")
        assert hit == frozenset({"a", "b"})
        assert isinstance(hit, frozenset)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_empty_answers_are_cached_too(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp-empty", set())
        assert cache.lookup(graph, "fp-empty") == frozenset()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            ResultCache(capacity=0)

    def test_distinct_fingerprints_do_not_alias(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.store(graph, "fp2", {"b"})
        assert cache.lookup(graph, "fp1") == frozenset({"a"})
        assert cache.lookup(graph, "fp2") == frozenset({"b"})

    def test_distinct_graphs_do_not_alias(self):
        cache = ResultCache(capacity=4)
        one, two = _graph("one"), _graph("two")
        cache.store(one, "fp", {"a"})
        assert cache.lookup(two, "fp") is None
        assert cache.lookup(one, "fp") == frozenset({"a"})

    def test_options_key_partitions_entries(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"}, options_key=("qmatch", True))
        assert cache.lookup(graph, "fp", options_key=("qmatch", False)) is None
        assert cache.lookup(graph, "fp", options_key=("qmatch", True)) == frozenset({"a"})


class TestLRU:
    def test_eviction_beyond_capacity(self):
        cache = ResultCache(capacity=2)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.store(graph, "fp2", {"b"})
        cache.store(graph, "fp3", {"a", "b"})
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(graph, "fp1") is None  # oldest evicted
        assert cache.lookup(graph, "fp3") is not None

    def test_hit_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.store(graph, "fp2", {"b"})
        assert cache.lookup(graph, "fp1") is not None  # fp1 now most recent
        cache.store(graph, "fp3", {"a"})
        assert cache.lookup(graph, "fp2") is None  # fp2 was least recent
        assert cache.lookup(graph, "fp1") is not None

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=2)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.lookup(graph, "fp1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1 and cache.stats.insertions == 1


class TestVersionInvalidation:
    def test_structural_mutation_invalidates(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.add_edge("b", "a", "follow")  # bumps graph.version
        assert cache.lookup(graph, "fp") is None

    def test_node_removal_invalidates(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.remove_edge("a", "b", "follow")
        assert cache.lookup(graph, "fp") is None

    def test_attribute_update_does_not_invalidate(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.set_node_attr("a", "city", "Edinburgh")
        assert cache.lookup(graph, "fp") == frozenset({"a"})

    def test_fresh_entry_after_mutation(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.add_node("c", "person")
        cache.store(graph, "fp", {"a", "c"})
        assert cache.lookup(graph, "fp") == frozenset({"a", "c"})

    def test_pinned_version_files_under_lookup_time_version(self):
        """An answer computed against version V must land under V even when
        the graph mutates before store() runs — never under the new version."""
        cache = ResultCache(capacity=4)
        graph = _graph()
        observed = graph.version
        graph.add_node("c", "person")  # mutation interleaves with computation
        cache.store(graph, "fp", {"a"}, version=observed)
        assert cache.lookup(graph, "fp") is None  # current version: no entry
        assert cache.lookup(graph, "fp", version=observed) == frozenset({"a"})


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        assert cache.stats.hit_rate == 1.0  # untouched cache, by convention
        cache.lookup(graph, "fp")
        cache.store(graph, "fp", {"a"})
        cache.lookup(graph, "fp")
        assert cache.stats.hit_rate == 0.5
        payload = cache.stats.as_dict()
        assert payload["hits"] == 1 and payload["misses"] == 1
        assert "repr" not in payload  # flat numeric dict only

    def test_repr_is_informative(self):
        cache = ResultCache(capacity=4)
        text = repr(cache)
        assert "ResultCache" in text and "0/4" in text
