"""The version-aware LRU result cache (:mod:`repro.service.cache`).

The invalidation contract mirrors the index layer's staleness discipline:
structural mutations (which bump ``PropertyGraph.version``) make entries
unreachable, attribute-only updates (which do not) keep them live.
"""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph
from repro.service.cache import ResultCache
from repro.utils.errors import ReproError


def _graph(name="g"):
    graph = PropertyGraph(name)
    graph.add_node("a", "person")
    graph.add_node("b", "person")
    graph.add_edge("a", "b", "follow")
    return graph


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        assert cache.lookup(graph, "fp1") is None
        stored = cache.store(graph, "fp1", {"a", "b"})
        assert stored == frozenset({"a", "b"})
        hit = cache.lookup(graph, "fp1")
        assert hit == frozenset({"a", "b"})
        assert isinstance(hit, frozenset)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_empty_answers_are_cached_too(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp-empty", set())
        assert cache.lookup(graph, "fp-empty") == frozenset()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            ResultCache(capacity=0)

    def test_distinct_fingerprints_do_not_alias(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.store(graph, "fp2", {"b"})
        assert cache.lookup(graph, "fp1") == frozenset({"a"})
        assert cache.lookup(graph, "fp2") == frozenset({"b"})

    def test_distinct_graphs_do_not_alias(self):
        cache = ResultCache(capacity=4)
        one, two = _graph("one"), _graph("two")
        cache.store(one, "fp", {"a"})
        assert cache.lookup(two, "fp") is None
        assert cache.lookup(one, "fp") == frozenset({"a"})

    def test_options_key_partitions_entries(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"}, options_key=("qmatch", True))
        assert cache.lookup(graph, "fp", options_key=("qmatch", False)) is None
        assert cache.lookup(graph, "fp", options_key=("qmatch", True)) == frozenset({"a"})


class TestLRU:
    def test_eviction_beyond_capacity(self):
        cache = ResultCache(capacity=2)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.store(graph, "fp2", {"b"})
        cache.store(graph, "fp3", {"a", "b"})
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(graph, "fp1") is None  # oldest evicted
        assert cache.lookup(graph, "fp3") is not None

    def test_hit_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.store(graph, "fp2", {"b"})
        assert cache.lookup(graph, "fp1") is not None  # fp1 now most recent
        cache.store(graph, "fp3", {"a"})
        assert cache.lookup(graph, "fp2") is None  # fp2 was least recent
        assert cache.lookup(graph, "fp1") is not None

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=2)
        graph = _graph()
        cache.store(graph, "fp1", {"a"})
        cache.lookup(graph, "fp1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1 and cache.stats.insertions == 1


class TestVersionInvalidation:
    def test_structural_mutation_invalidates(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.add_edge("b", "a", "follow")  # bumps graph.version
        assert cache.lookup(graph, "fp") is None

    def test_node_removal_invalidates(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.remove_edge("a", "b", "follow")
        assert cache.lookup(graph, "fp") is None

    def test_attribute_update_does_not_invalidate(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.set_node_attr("a", "city", "Edinburgh")
        assert cache.lookup(graph, "fp") == frozenset({"a"})

    def test_fresh_entry_after_mutation(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        cache.store(graph, "fp", {"a"})
        graph.add_node("c", "person")
        cache.store(graph, "fp", {"a", "c"})
        assert cache.lookup(graph, "fp") == frozenset({"a", "c"})

    def test_pinned_version_files_under_lookup_time_version(self):
        """An answer computed against version V must land under V even when
        the graph mutates before store() runs — never under the new version."""
        cache = ResultCache(capacity=4)
        graph = _graph()
        observed = graph.version
        graph.add_node("c", "person")  # mutation interleaves with computation
        cache.store(graph, "fp", {"a"}, version=observed)
        assert cache.lookup(graph, "fp") is None  # current version: no entry
        assert cache.lookup(graph, "fp", version=observed) == frozenset({"a"})


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        graph = _graph()
        assert cache.stats.hit_rate == 1.0  # untouched cache, by convention
        cache.lookup(graph, "fp")
        cache.store(graph, "fp", {"a"})
        cache.lookup(graph, "fp")
        assert cache.stats.hit_rate == 0.5
        payload = cache.stats.as_dict()
        assert payload["hits"] == 1 and payload["misses"] == 1
        assert "repr" not in payload  # flat numeric dict only

    def test_repr_is_informative(self):
        cache = ResultCache(capacity=4)
        text = repr(cache)
        assert "ResultCache" in text and "0/4" in text


class TestPurgeStale:
    def test_purge_drops_superseded_versions_only(self):
        cache = ResultCache(capacity=8)
        graph = _graph()
        cache.store(graph, "old", {"a"})
        graph.add_node("c", "person")  # structural bump: "old" is now stale
        cache.store(graph, "new", {"b"})
        assert cache.purge_stale() == 1
        assert cache.stats.purged == 1
        assert cache.lookup(graph, "new") == frozenset({"b"})

    def test_store_sweeps_automatically_past_the_interval(self):
        cache = ResultCache(capacity=64, purge_interval=3)
        graph = _graph()
        cache.store(graph, "stale", {"a"})
        graph.add_node("c", "person")
        for position in range(3):  # the third insert crosses the interval
            cache.store(graph, f"fp{position}", {"a"})
        assert cache.stats.purged == 1

    def test_stale_entries_do_not_pin_their_graph(self):
        """The satellite regression: a mutated-and-forgotten graph must not
        stay alive behind unreachable cache entries."""
        import gc
        import weakref

        cache = ResultCache(capacity=64, purge_interval=2)
        graph = _graph("pinned")
        ref = weakref.ref(graph)
        cache.store(graph, "entry", {"a"})
        graph.add_node("c", "person")  # entry now stale, but still pins graph
        keeper = _graph("keeper")
        del graph
        gc.collect()
        assert ref() is not None, "precondition: the stale entry pins the graph"
        cache.store(keeper, "k1", {"a"})
        cache.store(keeper, "k2", {"a"})  # crosses purge_interval: sweep runs
        gc.collect()
        assert ref() is None, "purge_stale must release the mutated graph"

    def test_purge_interval_validation(self):
        with pytest.raises(ReproError):
            ResultCache(capacity=4, purge_interval=0)


class TestCarryForward:
    def test_carry_forward_moves_entries_atomically(self):
        cache = ResultCache(capacity=8)
        graph = _graph()
        old_version = graph.version
        cache.store(graph, "fp", {"a"})
        graph.add_node("c", "person")
        carried = cache.carry_forward(
            graph, [("fp", None)], old_version, graph.version
        )
        assert carried == 1
        assert cache.stats.migrated == 1
        assert cache.lookup(graph, "fp") == frozenset({"a"})
        assert cache.lookup(graph, "fp", version=old_version) is None

    def test_carry_forward_ignores_unknown_fingerprints(self):
        cache = ResultCache(capacity=8)
        graph = _graph()
        assert cache.carry_forward(graph, [("ghost", None)], 0, 1) == 0

    def test_fingerprints_for_lists_only_the_requested_version(self):
        cache = ResultCache(capacity=8)
        graph = _graph()
        first_version = graph.version
        cache.store(graph, "fp1", {"a"})
        graph.add_node("c", "person")
        cache.store(graph, "fp2", {"b"})
        assert cache.fingerprints_for(graph, first_version) == (("fp1", None),)
        assert cache.fingerprints_for(graph, graph.version) == (("fp2", None),)
