"""Vectorized execution equivalence: dense runs vs the frozenset path.

The contract under test (the vectorized tentpole): ``vectorized=True`` is an
execution-strategy switch, never a semantics switch — answers, node matches
and every ``WorkCounter`` field are byte-identical to the frozenset path, the
dense state declines (rather than guesses) on any input it cannot serve
identically, and the satellite fixes (the no-copy focus restriction, the
per-label locality hoist, the per-epoch run cache) change *work*, not
results.
"""

from __future__ import annotations

import itertools
import random
from array import array

import pytest

from repro.graph.digraph import PropertyGraph
from repro.index.snapshot import GraphIndex
from repro.matching import DMatchOptions, QMatch, build_candidate_index
from repro.matching.dmatch import WorkCounter, _local_candidate_pools, dmatch
from repro.matching.enumerate import evaluate_positive_by_enumeration
from repro.matching.generic import MatchContext, find_isomorphisms
from repro.obs.metrics import active_metrics
from repro.parallel import PQMatch
from repro.patterns import CountingQuantifier, QuantifiedGraphPattern
from repro.plan.vectorized import (
    EMPTY_LOCALITY,
    DenseRunCache,
    build_dense_state,
    intersect_reference,
)
from repro.service import QueryService


def social_graph(seed: int, nodes: int = 60, edges: int = 900) -> PropertyGraph:
    rng = random.Random(seed)
    graph = PropertyGraph()
    for index in range(nodes):
        graph.add_node(f"n{index}", label="person" if index % 3 else "product")
    for _ in range(edges):
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b:
            try:
                graph.add_edge(
                    f"n{a}",
                    f"n{b}",
                    label=rng.choice(["follow", "like", "recom"]),
                )
            except Exception:
                pass
    return graph


def quantified_patterns():
    quantifier = CountingQuantifier
    chain = QuantifiedGraphPattern(name="chain")
    chain.add_node("x", "person")
    chain.add_node("y", "person")
    chain.add_node("p", "product")
    chain.add_edge("x", "y", "follow", quantifier.at_least(2))
    chain.add_edge("y", "p", "like", quantifier.existential())
    chain.set_focus("x")

    exact = QuantifiedGraphPattern(name="exact")
    exact.add_node("x", "person")
    exact.add_node("z", "person")
    exact.add_edge("x", "z", "follow", quantifier.exactly(1))
    exact.set_focus("x")

    ratio = QuantifiedGraphPattern(name="ratio")
    ratio.add_node("x", "person")
    ratio.add_node("y", "person")
    ratio.add_node("p", "product")
    ratio.add_edge("x", "y", "follow", quantifier.at_least(1))
    ratio.add_edge("x", "p", "recom", quantifier.ratio_at_least(20.0))
    ratio.set_focus("x")
    return [chain, exact, ratio]


def counter_fields(counter: WorkCounter):
    return (counter.verifications, counter.extensions, counter.quantifier_checks)


# ---------------------------------------------------------------------------
# DMatch-level byte identity
# ---------------------------------------------------------------------------


class TestDMatchByteIdentity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_option_combinations_identical(self, seed):
        """Answers, node matches and WorkCounter fields match the frozenset
        path across every (simulation, potential, locality, early-exit)
        combination — the hard acceptance bar of the vectorized mode."""
        graph = social_graph(seed)
        for pattern in quantified_patterns():
            for sim, pot, loc, early in itertools.product((False, True), repeat=4):
                base = DMatchOptions(
                    use_simulation=sim,
                    use_potential=pot,
                    use_locality=loc,
                    early_exit=early,
                )
                vectorized = DMatchOptions(
                    use_simulation=sim,
                    use_potential=pot,
                    use_locality=loc,
                    early_exit=early,
                    vectorized=True,
                )
                plain_counter, dense_counter = WorkCounter(), WorkCounter()
                plain = dmatch(pattern, graph, options=base, counter=plain_counter)
                dense = dmatch(
                    pattern, graph, options=vectorized, counter=dense_counter
                )
                label = (pattern.name, sim, pot, loc, early)
                assert plain.answer == dense.answer, label
                assert plain.node_matches == dense.node_matches, label
                assert counter_fields(plain_counter) == counter_fields(
                    dense_counter
                ), label

    def test_matches_enumeration_oracle(self):
        """Both paths agree with the plan-free full-enumeration oracle."""
        graph = social_graph(7)
        for pattern in quantified_patterns():
            oracle, _ = evaluate_positive_by_enumeration(pattern, graph)
            for vectorized in (False, True):
                options = DMatchOptions(vectorized=vectorized)
                assert dmatch(pattern, graph, options=options).answer == oracle

    def test_focus_restriction_shapes_identical(self):
        """The no-copy ``intersection_update`` accepts any iterable
        restriction — set, frozenset, tuple — with identical results (the
        satellite-1 audit: no ``& set(...)`` throwaway copies)."""
        graph = social_graph(11)
        pattern = quantified_patterns()[0]
        unrestricted = dmatch(pattern, graph).answer
        some = sorted(unrestricted)[: max(1, len(unrestricted) // 2)]
        expected = unrestricted & set(some)
        for shape in (set(some), frozenset(some), tuple(some), list(some)):
            for vectorized in (False, True):
                options = DMatchOptions(vectorized=vectorized)
                outcome = dmatch(
                    pattern, graph, options=options, focus_restriction=shape
                )
                assert outcome.answer == expected


# ---------------------------------------------------------------------------
# find_isomorphisms-level byte identity
# ---------------------------------------------------------------------------


class TestIsomorphismByteIdentity:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_streams_identical(self, seed):
        graph = social_graph(seed)
        for pattern in quantified_patterns():
            stratified = pattern.stratified()
            plain = list(find_isomorphisms(stratified, graph))
            dense = list(find_isomorphisms(stratified, graph, vectorized=True))
            assert plain == dense  # same matches, same emission order

    def test_anchored_and_limited_identical(self):
        graph = social_graph(6)
        pattern = quantified_patterns()[0].stratified()
        plain_context = MatchContext(pattern, graph)
        dense_context = MatchContext(pattern, graph, vectorized=True)
        assert dense_context._dense is not None
        focus_pool = sorted(plain_context.candidates["x"])
        for candidate in focus_pool[:10]:
            anchor = {"x": candidate}
            plain_counter, dense_counter = WorkCounter(), WorkCounter()
            plain = list(
                plain_context.isomorphisms(anchor=anchor, counter=plain_counter)
            )
            dense = list(
                dense_context.isomorphisms(anchor=anchor, counter=dense_counter)
            )
            assert plain == dense
            assert counter_fields(plain_counter) == counter_fields(dense_counter)
            limited_plain = list(
                plain_context.isomorphisms(anchor=anchor, limit=2)
            )
            limited_dense = list(
                dense_context.isomorphisms(anchor=anchor, limit=2)
            )
            assert limited_plain == limited_dense


# ---------------------------------------------------------------------------
# Dense-state soundness guards
# ---------------------------------------------------------------------------


class TestDenseStateGuards:
    def _state_inputs(self, graph, pattern):
        stratified = pattern.stratified()
        context = MatchContext(stratified, graph, vectorized=True)
        snapshot = GraphIndex.for_graph(graph)
        return context, snapshot, stratified

    def test_ghost_candidate_declines(self):
        graph = social_graph(8)
        pattern = quantified_patterns()[1]
        context, snapshot, stratified = self._state_inputs(graph, pattern)
        candidates = {node: set(pool) for node, pool in context.candidates.items()}
        candidates["x"].add("ghost-node")
        state = build_dense_state(
            snapshot,
            stratified,
            context.adjacency,
            context._pattern_labels,
            candidates,
            context.order,
        )
        assert state is None

    def test_mislabeled_candidate_declines(self):
        graph = social_graph(8)
        pattern = quantified_patterns()[1]
        context, snapshot, stratified = self._state_inputs(graph, pattern)
        product = next(iter(graph.nodes_with_label("product")))
        candidates = {node: set(pool) for node, pool in context.candidates.items()}
        candidates["x"].add(product)  # a product in a person pool
        state = build_dense_state(
            snapshot,
            stratified,
            context.adjacency,
            context._pattern_labels,
            candidates,
            context.order,
        )
        assert state is None

    def test_non_injective_str_ranks_decline(self):
        """Two distinct nodes with one ``str`` form (``1`` and ``"1"``) make
        rank-sorting ambiguous — the dense path must refuse, the frozenset
        path must still serve."""
        graph = PropertyGraph()
        graph.add_node(1, label="person")
        graph.add_node("1", label="person")
        graph.add_node("p", label="product")
        graph.add_edge(1, "p", label="like")
        graph.add_edge("1", "p", label="like")
        pattern = QuantifiedGraphPattern(name="tiny")
        pattern.add_node("x", "person")
        pattern.add_node("y", "product")
        pattern.add_edge("x", "y", "like", CountingQuantifier.existential())
        pattern.set_focus("x")
        stratified = pattern.stratified()
        context = MatchContext(stratified, graph, vectorized=True)
        assert context._dense is None  # declined, not mis-served
        plain = list(find_isomorphisms(stratified, graph))
        dense = list(find_isomorphisms(stratified, graph, vectorized=True))
        assert plain == dense

    def test_unpruned_pool_shares_member_run(self):
        """A label-wide pool is recognised without encoding: its run IS the
        snapshot's shared member array (the per-epoch locality cache keys off
        this)."""
        graph = social_graph(9)
        pattern = quantified_patterns()[1]
        context, snapshot, stratified = self._state_inputs(graph, pattern)
        label_id = snapshot.node_label_id("person")
        candidates = {
            node: set(snapshot.members_frozenset(label_id))
            for node in stratified.nodes()
        }
        state = build_dense_state(
            snapshot,
            stratified,
            context.adjacency,
            context._pattern_labels,
            candidates,
            context.order,
        )
        assert state is not None
        for node in stratified.nodes():
            assert state.runs[node] is snapshot.members_ids(label_id)
            assert state.run_labels[node] == label_id


# ---------------------------------------------------------------------------
# The per-epoch run cache
# ---------------------------------------------------------------------------


class TestDenseRunCache:
    def test_ball_memoised_and_correct(self):
        graph = social_graph(12)
        snapshot = GraphIndex.for_graph(graph)
        cache = DenseRunCache(snapshot)
        source = snapshot.node_id("n1")
        first = cache.ball(source, 2)
        assert cache.ball(source, 2) is first  # memoised, shared
        from repro.graph.traversal import nodes_within_hops

        expected = sorted(
            snapshot.node_id(node) for node in nodes_within_hops(graph, "n1", 2)
        )
        assert list(first) == expected

    def test_label_ball_is_members_intersection(self):
        graph = social_graph(12)
        snapshot = GraphIndex.for_graph(graph)
        cache = DenseRunCache(snapshot)
        source = snapshot.node_id("n2")
        label_id = snapshot.node_label_id("person")
        local = cache.label_ball(label_id, source, 2)
        members = snapshot.members_ids(label_id)
        ball = cache.ball(source, 2)
        assert list(local) == intersect_reference([members, ball])
        assert cache.label_ball(label_id, source, 2) is local  # memoised

    def test_capacity_bound_clears_not_grows(self):
        graph = social_graph(12)
        snapshot = GraphIndex.for_graph(graph)
        cache = DenseRunCache(snapshot, capacity=4)
        for index in range(12):
            cache.ball(index, 1)
        assert len(cache.balls) <= 4


# ---------------------------------------------------------------------------
# Satellite 2: the per-label locality hoist
# ---------------------------------------------------------------------------


class TestLocalCandidatePools:
    def test_hoisted_pools_equal_naive_restriction(self):
        graph = social_graph(13)
        pattern = quantified_patterns()[0].stratified()
        index = build_candidate_index(pattern, graph)
        rng = random.Random(0)
        all_nodes = list(graph.nodes())
        label_members = {}
        for node in pattern.nodes():
            label = pattern.node_label(node)
            if label not in label_members:
                members = graph.nodes_with_label(label)
                label_members[label] = (members, len(members))
        for _ in range(20):
            local_nodes = set(rng.sample(all_nodes, rng.randrange(1, len(all_nodes))))
            hoisted = _local_candidate_pools(pattern, index, local_nodes, label_members)
            naive = {
                node: index.candidate_set(node) & local_nodes
                for node in pattern.nodes()
            }
            assert hoisted == naive


# ---------------------------------------------------------------------------
# Observability integration
# ---------------------------------------------------------------------------


class TestVectorizedObservability:
    def test_counters_move_when_enabled(self):
        graph = social_graph(14)
        pattern = quantified_patterns()[0]
        with active_metrics() as registry:
            # Potential ranks decline the dense path (per-node orderings),
            # so the observed run uses the verification-bound configuration.
            dmatch(
                pattern,
                graph,
                options=DMatchOptions(
                    use_simulation=False,
                    use_potential=False,
                    use_locality=True,
                    vectorized=True,
                ),
            )
            assert registry.counter("plan.vectorized.probes").value > 0

    def test_stats_absent_when_disabled(self):
        graph = social_graph(14)
        pattern = quantified_patterns()[0].stratified()
        context = MatchContext(pattern, graph, vectorized=True)
        assert context._dense is not None
        assert context._dense.stats is None  # allocation-free disabled path


# ---------------------------------------------------------------------------
# The locality sweep and the parallel/service paths
# ---------------------------------------------------------------------------


class TestLocalityAndDistribution:
    def test_empty_locality_sentinel_is_definite_nonmatch(self):
        graph = PropertyGraph()
        graph.add_node("a", label="person")
        graph.add_node("b", label="person")
        graph.add_node("p", label="product")
        graph.add_edge("a", "b", label="follow")
        graph.add_edge("b", "p", label="like")
        pattern = quantified_patterns()[0]
        plain = dmatch(pattern, graph)
        dense = dmatch(pattern, graph, options=DMatchOptions(vectorized=True))
        assert plain.answer == dense.answer

    def test_pqmatch_serial_and_process_identical(self):
        from repro.datasets import benchmark_graph

        graph = benchmark_graph("pokec", scale=0.2, seed=31)
        patterns = quantified_patterns()
        options = DMatchOptions(vectorized=True)
        serial = PQMatch(num_workers=2, d=2, engine=QMatch(options=options))
        baseline = PQMatch(num_workers=2, d=2, engine=QMatch())
        with PQMatch(
            num_workers=2, d=2, executor="process", engine=QMatch(options=options)
        ) as process:
            for pattern in patterns:
                expected = baseline.evaluate_answer(pattern, graph)
                assert serial.evaluate_answer(pattern, graph) == expected
                assert process.evaluate_answer(pattern, graph) == expected
            # The pool boundary ships nothing new for the dense runs: workers
            # derive them from their cached snapshots, zero rebuilds.
            assert process.executor.last_worker_rebuilds == 0

    def test_service_plans_vectorized_identical(self):
        from repro.datasets import benchmark_graph

        graph = benchmark_graph("pokec", scale=0.2, seed=37)
        patterns = quantified_patterns()

        def service_for(options):
            return QueryService(
                graph,
                PQMatch(num_workers=1, d=2, engine=QMatch(options=options)),
                name=f"svc-{options.vectorized}",
                use_plans=True,
            )

        plain = service_for(DMatchOptions(use_locality=True))
        dense = service_for(DMatchOptions(use_locality=True, vectorized=True))
        for pattern in patterns:
            plain_answer = plain.evaluate(pattern).answer
            plain.cache.clear()
            dense_answer = dense.evaluate(pattern).answer
            dense.cache.clear()
            assert plain_answer == dense_answer
