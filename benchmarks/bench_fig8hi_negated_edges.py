"""Figures 8(h)/8(i): response time while varying the number of negated edges.

This is the experiment that isolates the value of IncQMatch.  The paper fixes
(|VQ|, |EQ|) and pa = 30% and grows |E−Q| from 0 to 4: engines with the
incremental step (PQMatch, PQMatchS) are nearly flat, whereas PQMatchN and
PEnum — which recompute the positified pattern from scratch for every negated
edge — grow with |E−Q|, and the gap widens.

The benchmark keeps the positive part of the query fixed and appends k negated
edges drawn from the graph's frequent features, then reports, per engine, the
response time and the number of verifications performed — the measure in which
incremental optimality (Proposition 6) is stated.
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_pattern
from repro.matching import EnumMatcher, QMatch
from repro.patterns import CountingQuantifier, mine_frequent_edges
from repro.utils import Timer

NEGATED_COUNTS = (0, 1, 2, 3, 4)


def _base_pattern(dataset: str):
    """The fixed positive part: the paper's Q1 / Q4 without their negated edges."""
    if dataset == "pokec":
        return paper_pattern("Q1").pi()
    return paper_pattern("Q4", p=2).pi()


def _with_negated_edges(graph, dataset: str, count: int):
    """Append *count* negated edges (fresh frequent-feature branches) to the base."""
    pattern = _base_pattern(dataset).copy(name=f"{dataset}-neg{count}")
    features = [
        feature
        for feature in mine_frequent_edges(graph, top_k=8)
        if feature.source_label == pattern.node_label(pattern.focus)
    ]
    for index in range(count):
        feature = features[index % len(features)]
        node = f"negbench{index}"
        pattern.add_node(node, feature.target_label)
        pattern.add_edge(pattern.focus, node, feature.edge_label,
                         CountingQuantifier.negation())
    pattern.validate()
    return pattern


def _engines():
    return {
        "QMatch": QMatch(),
        "QMatchN": QMatch(use_incremental=False),
        "Enum": EnumMatcher(),
    }


def _sweep(graph, dataset: str):
    rows = []
    for count in NEGATED_COUNTS:
        pattern = _with_negated_edges(graph, dataset, count)
        for name, engine in _engines().items():
            with Timer() as timer:
                result = engine.evaluate(pattern, graph)
            rows.append(
                [count, name, round(timer.elapsed, 3), result.counter.verifications,
                 len(result.answer)]
            )
    return rows


@pytest.mark.benchmark(group="fig8hi")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8hi_varying_negated_edges(benchmark, dataset, pokec_graph, yago_graph,
                                      record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph, dataset), rounds=1, iterations=1)
    figure = "fig8h_pokec" if dataset == "pokec" else "fig8i_yago2"
    record_figure(
        figure,
        ["negated_edges", "engine", "seconds", "verifications", "answers"],
        rows,
        title=f"Figure 8({'h' if dataset == 'pokec' else 'i'}) — varying |E−Q| on {dataset}",
    )
    # The shape that matters: with 4 negated edges the incremental QMatch does
    # no more verification work than the from-scratch QMatchN.
    by_engine = {
        (row[0], row[1]): row[3] for row in rows
    }
    assert by_engine[(4, "QMatch")] <= by_engine[(4, "QMatchN")]
