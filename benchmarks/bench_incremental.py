"""Incremental figure: graph updates without cold starts (repro.delta).

Before the delta layer, one edge insert cost a cold start: full
``GraphIndex.build``, every cache entry unreachable, partition re-built,
process pool re-created and re-shipped.  This benchmark drives an interleaved
update/query stream (:func:`repro.datasets.update_workload` — Zipf-skewed
queries × uniform edge churn) and measures the three layers the subsystem
accelerates:

* ``index-rebuild``   — replay every update batch with a from-scratch
  ``GraphIndex.build`` after each (the pre-delta baseline);
* ``index-refresh``   — replay the same batches with
  ``GraphIndex.refreshed(delta)`` (bounded CSR/signature patching);
* ``qmatch-replay``   — the answer oracle: a bare sequential QMatch
  re-evaluating every query cold on the mutating graph (no service, no
  partition — the floor any serving layer must match answer-for-answer);
* ``serve-cold``      — the pre-delta serving story: the *same*
  :class:`QueryService`, but every update mutates the graph outside the
  delta protocol, so the version-keyed stack cold-starts — the compiled
  index recompiles, the d-hop partition re-builds, every cache entry goes
  unreachable;
* ``serve-delta``     — the same stream through the same service, updates
  arriving as :meth:`QueryService.apply_delta` batches (index refresh,
  in-place partition maintenance, selective cache migration, standing-query
  maintenance).  ``serve-delta`` vs ``serve-cold`` isolates exactly what the
  delta layer buys.

Assertions (the acceptance bar of the delta layer):

* every refreshed snapshot is **wire-byte-identical** to the from-scratch
  rebuild at the same stream position;
* incremental refresh is **≥ 3×** faster than rebuild-per-update over the
  whole stream;
* the delta-served stream beats the cold-start service (``SERVE_SPEEDUP_FLOOR``);
* every served answer is byte-identical to a cold re-evaluation of the same
  query at the same stream position;
* a process-backend segment applies a delta mid-stream and keeps
  ``last_worker_rebuilds == 0`` with the **same pool object** — the mutation
  ships as a delta chain, not as re-shipped fragments.
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_pattern, update_workload, workload_patterns
from repro.delta import GraphDelta, apply_delta, refresh_rebuild_count
from repro.index.serialize import to_bytes
from repro.index.snapshot import GraphIndex, build_call_count
from repro.matching.qmatch import QMatch
from repro.parallel import PQMatch
from repro.service import QueryService
from repro.utils import Timer

STREAM_LENGTH = 72
UPDATE_FRACTION = 0.3
OPS_PER_UPDATE = 2
REFRESH_SPEEDUP_FLOOR = 3.0
SERVE_SPEEDUP_FLOOR = 1.5

HEADERS = [
    "engine", "stream_ops", "updates", "queries", "wall_seconds",
    "speedup_vs_baseline", "rebuild_fallbacks", "worker_rebuilds",
]


def _structural_bytes(index):
    """The wire encoding of the snapshot's structural sections only.

    Derived sections (merged CSR, row-store manifest) are materialised
    lazily, so a refreshed snapshot may carry them while a cold build does
    not; byte-identity is asserted over what both must agree on.
    """
    return to_bytes(index, include_neighborhoods=False, include_compiled_rows=False)


def _unique_patterns(graph):
    uniques = [paper_pattern("Q1"), paper_pattern("Q3", p=2)] + workload_patterns(
        graph, count=4, seed=3
    )
    for position, pattern in enumerate(uniques):
        pattern.name = f"U{position}-{pattern.name}"
    return uniques


def _index_maintenance_segment(graph, deltas, phases):
    """Refresh vs rebuild-per-update over the stream's update batches."""
    # Same name on purpose: the wire format encodes it, and the byte-identity
    # assertion below compares the two replayed graphs' snapshots.
    rebuild_graph = graph.copy(name="incremental-index")
    refresh_graph = graph.copy(name="incremental-index")

    rebuilt = GraphIndex.build(rebuild_graph)
    with Timer() as rebuild_timer:
        for delta in deltas:
            apply_delta(rebuild_graph, delta)
            rebuilt = GraphIndex.build(rebuild_graph)

    refreshed = GraphIndex.build(refresh_graph)
    fallbacks_before = refresh_rebuild_count()
    with Timer() as refresh_timer:
        for delta in deltas:
            apply_delta(refresh_graph, delta)
            refreshed = refreshed.refreshed(delta)
    fallbacks = refresh_rebuild_count() - fallbacks_before

    assert _structural_bytes(refreshed) == _structural_bytes(rebuilt), (
        "refreshed snapshot diverged from the from-scratch rebuild"
    )
    speedup = (
        rebuild_timer.elapsed / refresh_timer.elapsed
        if refresh_timer.elapsed
        else float("inf")
    )
    assert speedup >= REFRESH_SPEEDUP_FLOOR, (
        f"incremental refresh only {speedup:.2f}x faster than rebuild-per-update "
        f"(floor {REFRESH_SPEEDUP_FLOOR}x; rebuild {rebuild_timer.elapsed:.3f}s, "
        f"refresh {refresh_timer.elapsed:.3f}s)"
    )
    phases["index-rebuild-seconds"] = round(rebuild_timer.elapsed, 6)
    phases["index-refresh-seconds"] = round(refresh_timer.elapsed, 6)
    phases["index-refresh-speedup"] = round(speedup, 2)
    return rebuild_timer.elapsed, refresh_timer.elapsed, fallbacks


def _replay_qmatch(graph, stream):
    """The answer oracle: every query re-evaluated cold on the mutating graph."""
    replay = graph.copy(name="incremental-oracle")
    answers = []
    with Timer() as timer:
        for op in stream:
            if op.is_update:
                apply_delta(replay, op.delta)
            else:
                answers.append(frozenset(QMatch().evaluate_answer(op.pattern, replay)))
    return answers, timer.elapsed


def _serve_cold(graph, stream):
    """Pre-delta serving baseline: same service, cold start on every update.

    The batch mutates the served graph *outside* the delta protocol — exactly
    what a pre-``repro.delta`` deployment had to do — so each subsequent query
    pays the full invalidation: version-keyed cache entries unreachable,
    compiled index rebuilt, d-hop partition re-built from scratch.
    """
    replay = graph.copy(name="incremental-cold")
    answers = []
    with QueryService(
        replay, PQMatch(num_workers=4, d=2), name="incremental-cold"
    ) as service:
        with Timer() as timer:
            for op in stream:
                if op.is_update:
                    apply_delta(replay, op.delta)
                else:
                    answers.append(service.evaluate(op.pattern).answer)
    return answers, timer.elapsed


def _serve_stream(graph, stream, phases):
    """The delta-served run, plus a standing query maintained throughout."""
    served_graph = graph.copy(name="incremental-served")
    standing = paper_pattern("Q1")
    answers = []
    with QueryService(
        served_graph, PQMatch(num_workers=4, d=2), name="incremental"
    ) as service:
        subscription = service.subscribe(standing)
        with Timer() as timer:
            for op in stream:
                if op.is_update:
                    service.apply_delta(op.delta)
                else:
                    answers.append(service.evaluate(op.pattern).answer)
        # The standing query must equal a cold evaluation of the final state.
        cold_standing = frozenset(QMatch().evaluate_answer(standing, served_graph))
        assert subscription.answer == cold_standing
        stats = service.stats_snapshot()
        phases["serve-cache-hits"] = int(stats["cache_hits"])
        phases["serve-cache-carried"] = int(stats["delta_cache_carried"])
        phases["serve-cache-dropped"] = int(stats["delta_cache_dropped"])
        phases["serve-subscription-updates"] = int(stats["delta_subscription_updates"])
        assert service.worker_rebuilds == 0
    return answers, timer.elapsed


def _process_segment(graph, patterns, delta, phases):
    """One mutation on the process backend: delta chain, not a re-ship."""
    process_graph = graph.copy(name="incremental-process")
    with QueryService(
        process_graph,
        PQMatch(num_workers=2, d=2, executor="process"),
        name="incremental-process",
    ) as service:
        first = [service.evaluate(pattern).answer for pattern in patterns]
        executor = service.coordinator.executor
        pool_before = executor._pool
        with Timer() as timer:
            service.apply_delta(delta)
            second = [service.evaluate(pattern).answer for pattern in patterns]
        for pattern, answer in zip(patterns, second):
            assert answer == frozenset(QMatch().evaluate_answer(pattern, process_graph))
        assert executor._pool is pool_before, "mutation recreated the pool"
        assert executor.deltas_shipped > 0, "mutation did not ship as a delta"
        assert service.worker_rebuilds == 0, (
            f"{service.worker_rebuilds} worker rebuilds across the mutation"
        )
        phases["process-delta-roundtrip-seconds"] = round(timer.elapsed, 6)
        phases["process-deltas-shipped"] = executor.deltas_shipped
    return first, second


@pytest.mark.benchmark(group="incremental")
def test_incremental_update_stream(benchmark, pokec_graph, record_figure):
    # The session fixture is shared with other figures — never mutate it.
    graph = pokec_graph.copy(name="pokec-incremental")
    uniques = _unique_patterns(graph)
    stream = update_workload(
        graph,
        uniques,
        STREAM_LENGTH,
        update_fraction=UPDATE_FRACTION,
        ops_per_update=OPS_PER_UPDATE,
        seed=11,
    )
    deltas = [op.delta for op in stream if op.is_update]
    queries = len(stream) - len(deltas)
    assert deltas, "the stream drew no update batches; raise STREAM_LENGTH"

    phases = {
        "stream-length": len(stream),
        "updates": len(deltas),
        "queries": queries,
        "ops-per-update": OPS_PER_UPDATE,
    }

    rebuild_elapsed, refresh_elapsed, fallbacks = _index_maintenance_segment(
        graph, deltas, phases
    )

    oracle_answers, oracle_elapsed = _replay_qmatch(graph, stream)
    cold_answers, cold_elapsed = _serve_cold(graph, stream)
    assert cold_answers == oracle_answers, (
        "cold-start service answers diverged from the sequential oracle"
    )
    builds_before = build_call_count()
    served_answers, served_elapsed = benchmark.pedantic(
        _serve_stream, args=(graph, stream, phases), rounds=1, iterations=1
    )
    phases["serve-builds"] = build_call_count() - builds_before
    assert served_answers == oracle_answers, (
        "served answers diverged from cold re-evaluation of the same stream"
    )
    serve_speedup = cold_elapsed / served_elapsed if served_elapsed else float("inf")
    assert serve_speedup >= SERVE_SPEEDUP_FLOOR, (
        f"delta-served stream only {serve_speedup:.2f}x over the cold-start "
        f"service (floor {SERVE_SPEEDUP_FLOOR}x; cold {cold_elapsed:.3f}s, "
        f"served {served_elapsed:.3f}s)"
    )

    process_delta = deltas[0]
    _process_segment(graph, uniques[:3], process_delta, phases)

    rows = [
        ["index-rebuild", len(deltas), len(deltas), 0, round(rebuild_elapsed, 4), 1.0, 0, 0],
        ["index-refresh", len(deltas), len(deltas), 0, round(refresh_elapsed, 4),
         round(rebuild_elapsed / refresh_elapsed, 2) if refresh_elapsed else 0.0,
         fallbacks, 0],
        ["qmatch-replay", len(stream), len(deltas), queries, round(oracle_elapsed, 4), 1.0, 0, 0],
        ["serve-cold", len(stream), len(deltas), queries, round(cold_elapsed, 4), 1.0, 0, 0],
        ["serve-delta", len(stream), len(deltas), queries, round(served_elapsed, 4),
         round(serve_speedup, 2), 0, 0],
    ]
    record_figure(
        "incremental",
        HEADERS,
        rows,
        title="Incremental — interleaved update/query stream (delta layer vs cold starts)",
        phases=phases,
    )
