"""Ablation study: the individual optimisations of QMatch and DPar.

Not a figure of the paper, but the design choices DESIGN.md calls out deserve
their own measurements:

* the dual-simulation candidate pre-filter (Lemma 13),
* the potential-score candidate ordering (Appendix B),
* early termination on monotone quantifiers,
* the MKP assignment inside DPar versus a plain greedy fallback.

Each row reports the wall time and total work of the engine with exactly one
switch toggled, on the same Pokec workload, so the contribution of every
optimisation can be read off directly.
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_pattern
from repro.matching import DMatchOptions, QMatch
from repro.parallel import DPar
from repro.parallel.mkp import KnapsackItem, greedy_mkp, mkp_assign
from repro.utils import Timer

CONFIGS = {
    "full": DMatchOptions(),
    "no-simulation": DMatchOptions(use_simulation=False),
    "no-potential": DMatchOptions(use_potential=False),
    "no-early-exit": DMatchOptions(early_exit=False),
    "with-locality": DMatchOptions(use_locality=True),
    "none": DMatchOptions(use_simulation=False, use_potential=False,
                          early_exit=False, use_locality=False),
}


def _qmatch_ablation(graph):
    patterns = [paper_pattern("Q1"), paper_pattern("Q2"), paper_pattern("Q3", p=2)]
    rows = []
    answers = {}
    for name, options in CONFIGS.items():
        engine = QMatch(options=options)
        work = 0
        with Timer() as timer:
            for pattern in patterns:
                result = engine.evaluate(pattern, graph)
                work += result.counter.total_work()
                answers.setdefault(pattern.name, set()).add(frozenset(result.answer))
        rows.append([name, round(timer.elapsed, 3), work])
    # Every configuration must return identical answers.
    assert all(len(variants) == 1 for variants in answers.values())
    return rows


def _dpar_ablation(graph):
    rows = []
    for workers in (4, 8):
        partition = DPar(d=2, seed=0).partition(graph, workers)
        rows.append(
            ["dpar-mkp", workers, round(partition.elapsed, 3), round(partition.skew(), 3),
             round(partition.replication_factor(), 2)]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_qmatch_optimisations(benchmark, pokec_graph, record_figure):
    rows = benchmark.pedantic(_qmatch_ablation, args=(pokec_graph,), rounds=1, iterations=1)
    record_figure(
        "ablation_qmatch",
        ["configuration", "seconds", "total_work"],
        rows,
        title="Ablation — QMatch optimisation switches on the Pokec workload",
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_partition_quality(benchmark, pokec_graph, record_figure):
    rows = benchmark.pedantic(_dpar_ablation, args=(pokec_graph,), rounds=1, iterations=1)
    record_figure(
        "ablation_dpar",
        ["partitioner", "workers", "seconds", "skew", "replication"],
        rows,
        title="Ablation — DPar partition quality",
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_mkp_vs_greedy(benchmark, record_figure):
    """The exchange pass of mkp_assign packs at least as many items as greedy."""

    def run():
        items = [KnapsackItem(f"i{k}", weight=1.0 + (k % 5)) for k in range(60)]
        capacities = [25.0, 20.0, 15.0]
        _, greedy_unassigned = greedy_mkp(items, capacities)
        _, improved_unassigned = mkp_assign(items, capacities)
        return [
            ["greedy", len(items) - len(greedy_unassigned)],
            ["greedy+exchange", len(items) - len(improved_unassigned)],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(
        "ablation_mkp",
        ["assignment", "items_packed"],
        rows,
        title="Ablation — MKP assignment quality",
    )
    assert rows[1][1] >= rows[0][1]
