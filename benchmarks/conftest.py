"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark module reproduces one table/figure of the paper's Section 7.
The fixtures here build the benchmark graphs once per session (at a scale that
keeps the whole suite in the minutes range on a laptop) and provide
``record_figure``, which renders the rows of a figure as an ASCII table,
prints it, and archives it under ``benchmarks/results/`` so the numbers quoted
in ``EXPERIMENTS.md`` can be regenerated with a single pytest invocation.

The shared paper-example builders are imported **explicitly** from
``tests/fixtures.py`` (never via the ambiguous ``conftest`` module name —
pytest imports every conftest as ``conftest``, so with two of them the name
resolves to whichever loaded first).

Set ``REPRO_BENCH_SCALE`` to override the dataset scale; CI runs the
benchmark entry points with a tiny scale purely as a smoke test so they
cannot silently rot.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

import pytest

from repro.datasets import benchmark_graph
from repro.obs import disable_metrics, disable_tracing, enable_metrics, enable_tracing
from repro.utils import render_table

_TESTS_DIR = str(Path(__file__).resolve().parent.parent / "tests")
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)

from fixtures import build_paper_g1, build_paper_g2, build_q3, build_q4  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

# Scales are chosen so that the full benchmark suite stays in the minutes
# range in pure Python; see EXPERIMENTS.md for the mapping to the paper's
# dataset sizes.  REPRO_BENCH_SCALE overrides both (used by the CI smoke run).
_SCALE_OVERRIDE = os.environ.get("REPRO_BENCH_SCALE")
POKEC_SCALE = float(_SCALE_OVERRIDE) if _SCALE_OVERRIDE else 3.0
YAGO_SCALE = float(_SCALE_OVERRIDE) if _SCALE_OVERRIDE else 3.0
SYNTHETIC_SCALE = float(_SCALE_OVERRIDE) if _SCALE_OVERRIDE else 2.0

# REPRO_OBS=1 runs the whole benchmark session instrumented: the metrics
# registry and the tracer are enabled before any benchmark executes, and
# ``record_figure`` dumps the registry next to each figure's BENCH json
# (``METRICS_<figure>.json``) so CI can upload the instrumented-run artifact.
_OBS_ENABLED = os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false")


@pytest.fixture(scope="session", autouse=True)
def _obs_instrumented_session():
    if not _OBS_ENABLED:
        yield
        return
    enable_metrics()
    enable_tracing()
    yield
    disable_tracing()
    disable_metrics()


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run_provenance() -> Dict[str, object]:
    """Machine identity for one benchmark run, embedded in every BENCH json.

    Numbers without provenance are noise a month later: two BENCH files can
    only be compared once it is known they came from the same interpreter,
    core count and dataset scale.  Collected once per process (the git SHA
    subprocess is not free) and shared by every figure of the session.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "bench_scale": _SCALE_OVERRIDE or "default",
        "obs_instrumented": _OBS_ENABLED,
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }


_PROVENANCE: Optional[Dict[str, object]] = None


def _provenance() -> Dict[str, object]:
    global _PROVENANCE
    if _PROVENANCE is None:
        _PROVENANCE = run_provenance()
    return _PROVENANCE


@pytest.fixture(scope="session")
def pokec_graph():
    return benchmark_graph("pokec", scale=POKEC_SCALE, seed=1)


@pytest.fixture(scope="session")
def yago_graph():
    return benchmark_graph("yago2", scale=YAGO_SCALE, seed=1)


@pytest.fixture(scope="session")
def synthetic_graph():
    return benchmark_graph("synthetic", scale=SYNTHETIC_SCALE, seed=1)


@pytest.fixture(scope="session")
def paper_g1_graph():
    return build_paper_g1()


@pytest.fixture(scope="session")
def paper_g2_graph():
    return build_paper_g2()


@pytest.fixture(scope="session")
def pattern_q3():
    return build_q3(p=2)


@pytest.fixture(scope="session")
def pattern_q4():
    return build_q4(p=2)


@pytest.fixture(scope="session")
def record_figure():
    """Return a callable that renders, prints and archives one figure table.

    Each figure is archived twice: the human-readable ASCII table
    (``<figure>.txt``, unchanged) and a machine-readable
    ``BENCH_<figure>.json`` carrying the same rows as keyed objects plus any
    *phases* timings (index build/serialize/load, cold vs warm pool costs)
    the benchmark measured — the artifact CI uploads so the perf trajectory
    of every figure is diffable across PRs instead of living in table
    screenshots.  Rows are the per-run medians the benches compute (every
    bench here runs ``rounds=1`` sweeps whose rows already aggregate the
    query mix).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(figure: str, headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str = "", phases: Optional[Mapping[str, float]] = None) -> str:
        table = render_table(headers, rows, title=title or figure)
        print()
        print(table)
        (RESULTS_DIR / f"{figure}.txt").write_text(table + "\n", encoding="utf-8")
        payload = {
            "figure": figure,
            "title": title or figure,
            "scale": _SCALE_OVERRIDE or "default",
            "headers": list(headers),
            "rows": [dict(zip(headers, row)) for row in rows],
            "phases": dict(phases) if phases else {},
            "provenance": _provenance(),
        }
        (RESULTS_DIR / f"BENCH_{figure}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        if _OBS_ENABLED:
            from repro.obs import get_registry

            (RESULTS_DIR / f"METRICS_{figure}.json").write_text(
                json.dumps(
                    {"figure": figure, "provenance": _provenance(),
                     "metrics": get_registry().dump()},
                    indent=2, sort_keys=True, default=str,
                ) + "\n",
                encoding="utf-8",
            )
        return table

    return _record
