"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark module reproduces one table/figure of the paper's Section 7.
The fixtures here build the benchmark graphs once per session (at a scale that
keeps the whole suite in the minutes range on a laptop) and provide
``record_figure``, which renders the rows of a figure as an ASCII table,
prints it, and archives it under ``benchmarks/results/`` so the numbers quoted
in ``EXPERIMENTS.md`` can be regenerated with a single pytest invocation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import pytest

from repro.datasets import benchmark_graph
from repro.utils import render_table

RESULTS_DIR = Path(__file__).parent / "results"

# Scales are chosen so that the full benchmark suite stays in the minutes
# range in pure Python; see EXPERIMENTS.md for the mapping to the paper's
# dataset sizes.
POKEC_SCALE = 3.0
YAGO_SCALE = 3.0


@pytest.fixture(scope="session")
def pokec_graph():
    return benchmark_graph("pokec", scale=POKEC_SCALE, seed=1)


@pytest.fixture(scope="session")
def yago_graph():
    return benchmark_graph("yago2", scale=YAGO_SCALE, seed=1)


@pytest.fixture(scope="session")
def synthetic_graph():
    return benchmark_graph("synthetic", scale=2.0, seed=1)


@pytest.fixture(scope="session")
def record_figure():
    """Return a callable that renders, prints and archives one figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(figure: str, headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str = "") -> str:
        table = render_table(headers, rows, title=title or figure)
        print()
        print(table)
        (RESULTS_DIR / f"{figure}.txt").write_text(table + "\n", encoding="utf-8")
        return table

    return _record
