"""Serving figure: Zipf repeated-query throughput, QueryService vs cold PQMatch.

Production traffic is not a stream of fresh queries: a few hot patterns
dominate while a long tail keeps arriving, and many requests are different
*spellings* of the same query.  This benchmark drives exactly that workload —
a Zipf-skewed stream over a small pool of unique patterns, with a third of
the requests re-spelled under renamed variables — through three engines:

* ``PQMatch-cold``        — the parallel coordinator evaluating every request
  from scratch (the pre-service baseline);
* ``QueryService``        — the full serving layer: canonical fingerprints,
  the version-aware LRU answer cache, per-batch dedupe and one executor
  round per batch of misses (requests arrive in batches of 16);
* ``QueryService-single`` — the same service fed one request at a time, to
  separate what the cache buys from what batching buys.

Assertions (the acceptance bar of the serving layer):

* every served answer is byte-identical to the cold coordinator's answer for
  the same request;
* the batched service clears **≥ 5×** the cold throughput on the skewed
  stream;
* the measured serving sweep triggers **zero** ``GraphIndex.build`` calls
  (fragments, their snapshots and the partition were all warmed once) and
  zero worker-side rebuilds (``last_worker_rebuilds == 0`` — on the process
  backend below, fragments reach workers as decoded snapshots only).

A separate process-backend segment serves a smaller batch twice through a
``ProcessExecutor`` coordinator: the second pass must be answered entirely
from cache, and the pool workers must report zero rebuilds.
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_pattern, workload_patterns, zipf_workload
from repro.index.snapshot import build_call_count
from repro.parallel import PQMatch
from repro.service import QueryService
from repro.utils import Timer

STREAM_LENGTH = 96
ZIPF_EXPONENT = 1.1
BATCH_SIZE = 16
SPEEDUP_FLOOR = 5.0

HEADERS = [
    "engine", "queries", "wall_seconds", "qps", "speedup_vs_cold",
    "cache_hits", "cache_misses", "computed", "dispatch_rounds", "worker_rebuilds",
]


def _unique_patterns(graph):
    """The unique-query pool: the paper's Pokec examples + generated workload."""
    uniques = [
        paper_pattern("Q1"),
        paper_pattern("Q2"),
        paper_pattern("Q3", p=2),
    ] + workload_patterns(graph, count=5, seed=3)
    for index, pattern in enumerate(uniques):
        pattern.name = f"U{index}-{pattern.name}"
    return uniques


def _respelled(pattern, tag):
    """A renamed spelling of *pattern* (same semantics, different variables)."""
    renamed = pattern.relabel_nodes({node: f"{tag}_{node}" for node in pattern.nodes()})
    renamed.name = f"{pattern.name}#respelled"
    return renamed


def _request_stream(uniques):
    """Zipf-skewed request stream with every third request re-spelled."""
    stream = zipf_workload(uniques, STREAM_LENGTH, exponent=ZIPF_EXPONENT, seed=7)
    respelled = {id(pattern): _respelled(pattern, "ren") for pattern in uniques}
    return [
        respelled[id(pattern)] if position % 3 == 2 else pattern
        for position, pattern in enumerate(stream)
    ]


def _serve(service, stream, batch_size):
    """Serve the whole stream in batches, returning per-request answers."""
    answers = []
    with Timer() as timer:
        for start in range(0, len(stream), batch_size):
            for result in service.evaluate_many(stream[start : start + batch_size]):
                answers.append(result.answer)
    return answers, timer.elapsed


def _service_row(name, service, elapsed, cold_elapsed, queries):
    stats = service.stats_snapshot()
    return [
        name,
        queries,
        round(elapsed, 4),
        round(queries / elapsed, 1) if elapsed else 0.0,
        round(cold_elapsed / elapsed, 2) if elapsed else 0.0,
        int(stats["cache_hits"]),
        int(stats["cache_misses"]),
        int(stats["computed"]),
        int(stats["dispatch_rounds"]),
        int(stats["worker_rebuilds"]),
    ]


def _process_segment(graph, pool, expected, phases):
    """Serve a small batch twice over the process backend: snapshots only.

    The second pass must be pure cache; the pool workers must never call
    ``GraphIndex.build`` (fragments arrive as version-2 snapshots whose
    compiled-rows manifest the workers materialise at decode time).
    """
    with QueryService(
        graph, PQMatch(num_workers=2, d=2, executor="process"), name="serving-process"
    ) as service:
        with Timer() as cold_timer:
            first = service.evaluate_many(pool)
        with Timer() as warm_timer:
            second = service.evaluate_many(pool)
        assert [r.answer for r in first] == [r.answer for r in second]
        assert [set(r.answer) for r in first] == [expected[id(p)] for p in pool]
        assert all(r.cached for r in second)
        assert service.worker_rebuilds == 0
        phases["process-first-batch-seconds"] = round(cold_timer.elapsed, 6)
        phases["process-cached-batch-seconds"] = round(warm_timer.elapsed, 6)


@pytest.mark.benchmark(group="serving")
def test_serving_zipf_throughput(benchmark, pokec_graph, record_figure):
    graph = pokec_graph
    uniques = _unique_patterns(graph)
    stream = _request_stream(uniques)

    # ---------------------------------------------------------- cold baseline
    cold = PQMatch(num_workers=4, d=2)
    cold.evaluate(uniques[0], graph)  # warm partition/fragments/indexes
    cold_answers = []
    with Timer() as cold_timer:
        for pattern in stream:
            cold_answers.append(cold.evaluate_answer(pattern, graph))
    cold_elapsed = cold_timer.elapsed

    # --------------------------------------------------------- batched service
    service = QueryService(graph, PQMatch(num_workers=4, d=2), name="serving")
    max_radius = max(pattern.radius() for pattern in uniques)
    service.coordinator.ensure_radius(graph, max_radius)
    service.evaluate(uniques[0])  # warm fragments + their compiled indexes
    service.cache.clear()

    builds_before = build_call_count()
    served_answers, served_elapsed = benchmark.pedantic(
        _serve, args=(service, stream, BATCH_SIZE), rounds=1, iterations=1
    )
    # Zero rebuilds during serving: every miss ran against warm fragment
    # snapshots, every hit never reached the matching layer at all.
    assert build_call_count() == builds_before
    assert service.worker_rebuilds == 0
    # Byte-identical to cold execution, request by request.
    assert [set(answer) for answer in served_answers] == cold_answers

    # ----------------------------------------------------- unbatched service
    single = QueryService(graph, PQMatch(num_workers=4, d=2), name="serving-single")
    single.coordinator.ensure_radius(graph, max_radius)
    single.evaluate(uniques[0])
    single.cache.clear()
    single_answers, single_elapsed = _serve(single, stream, 1)
    assert [set(answer) for answer in single_answers] == cold_answers

    rows = [
        ["PQMatch-cold", len(stream), round(cold_elapsed, 4),
         round(len(stream) / cold_elapsed, 1) if cold_elapsed else 0.0,
         1.0, 0, 0, len(stream), len(stream), 0],
        _service_row("QueryService", service, served_elapsed, cold_elapsed, len(stream)),
        _service_row("QueryService-single", single, single_elapsed, cold_elapsed, len(stream)),
    ]

    phases = {
        "stream-length": len(stream),
        "unique-patterns": len(uniques),
        "zipf-exponent": ZIPF_EXPONENT,
        "batch-size": BATCH_SIZE,
        "cold-seconds-per-query": round(cold_elapsed / len(stream), 6),
        "served-hit-rate": service.cache.stats.hit_rate,
    }
    pool = uniques[:4]
    expected = {id(pattern): cold.evaluate_answer(pattern, graph) for pattern in pool}
    _process_segment(graph, pool, expected, phases)

    record_figure(
        "serving",
        HEADERS,
        rows,
        title="Serving — Zipf repeated-query throughput (QueryService vs cold PQMatch)",
        phases=phases,
    )

    speedup = cold_elapsed / served_elapsed if served_elapsed else float("inf")
    assert speedup >= SPEEDUP_FLOOR, (
        f"serving speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"(cold {cold_elapsed:.3f}s vs served {served_elapsed:.3f}s)"
    )
