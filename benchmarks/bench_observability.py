"""Observability figure: what the instrumentation layer costs when it is off.

The observability contract (docs/OBSERVABILITY.md) promises that the disabled
path of every instrument is one global read plus a falsy check, cheap enough
to leave compiled into production serving.  This benchmark puts a number on
that promise by serving the same Zipf-skewed stream through three otherwise
identical ``QueryService`` arms:

* ``obs-off``  — observability compiled out as far as the knobs allow:
  ``flight_capacity=0`` and ``stats_registry_capacity=0``, metrics and
  tracing disabled (the floor — nothing records anything);
* ``obs-noop`` — the **default** construction: flight recorder and stats
  registry live at their default capacities, metrics and tracing disabled.
  This is what production runs, and the arm the budget applies to;
* ``obs-on``   — metrics, tracing and the flight recorder all enabled
  (the fully instrumented ceiling, reported but not gated).

Assertions (the acceptance bar of the observability layer):

* served answers are byte-identical across all three arms, sweep after sweep;
* the default no-op arm stays within **3%** of the compiled-out floor
  (min-of-N interleaved sweeps, so a background blip on one round cannot
  fail the gate).

The enabled arm's flight recorder is dumped to
``results/FLIGHT_observability.json`` — every CI run archives a black box of
the exact stream it just served.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import workload_patterns, zipf_workload
from repro.obs import (
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
)
from repro.service import QueryService
from repro.utils import Timer

STREAM_LENGTH = 192
ZIPF_EXPONENT = 1.1
BATCH_SIZE = 16
SWEEPS = 5
NOOP_BUDGET = 1.03  # the documented "< 3% when disabled" promise

RESULTS_DIR = Path(__file__).parent / "results"

HEADERS = [
    "arm", "queries", "best_wall_seconds", "qps", "tax_vs_off",
    "flight_events", "explain_fingerprints",
]


def _stream(graph):
    uniques = workload_patterns(graph, count=6, seed=3)
    return zipf_workload(uniques, STREAM_LENGTH, exponent=ZIPF_EXPONENT, seed=7)


def _serve(service, stream):
    answers = []
    with Timer() as timer:
        for start in range(0, len(stream), BATCH_SIZE):
            for result in service.evaluate_many(stream[start : start + BATCH_SIZE]):
                answers.append(result.answer)
    return answers, timer.elapsed


@pytest.mark.benchmark(group="observability")
def test_observability_noop_overhead(pokec_graph, record_figure):
    graph = pokec_graph
    stream = _stream(graph)

    # The three arms differ ONLY in observability configuration.
    arms = {
        "obs-off": QueryService(
            graph, name="obs-off", flight_capacity=0, stats_registry_capacity=0
        ),
        "obs-noop": QueryService(graph, name="obs-noop"),
        "obs-on": QueryService(graph, name="obs-on"),
    }

    # A REPRO_OBS=1 session enables metrics/tracing globally; this bench
    # owns the toggles for the duration so the off/noop arms measure what
    # production actually runs, then restores the session state.
    session_instrumented = os.environ.get("REPRO_OBS", "").strip() not in (
        "", "0", "false"
    )
    disable_tracing()
    disable_metrics()
    try:
        # Warm every arm once: plans compiled, caches filled, indexes built.
        # The measured sweeps below are the steady-state serving hot path.
        reference = None
        for name, service in arms.items():
            if name == "obs-on":
                enable_metrics()
                enable_tracing()
            answers, _ = _serve(service, stream)
            if name == "obs-on":
                disable_tracing()
                disable_metrics()
            if reference is None:
                reference = answers
            assert answers == reference, f"{name} warm answers diverge"

        # Interleaved min-of-N sweeps: each round times all three arms
        # back to back, so drift hits every arm equally and the min is
        # each arm's clean run.
        best = {name: float("inf") for name in arms}
        for _ in range(SWEEPS):
            for name, service in arms.items():
                if name == "obs-on":
                    enable_metrics()
                    enable_tracing()
                answers, elapsed = _serve(service, stream)
                if name == "obs-on":
                    disable_tracing()
                    disable_metrics()
                assert answers == reference, f"{name} answers diverge mid-sweep"
                best[name] = min(best[name], elapsed)

        RESULTS_DIR.mkdir(exist_ok=True)
        flight_dump = RESULTS_DIR / "FLIGHT_observability.json"
        arms["obs-on"].flight.dump_json(str(flight_dump))
        assert flight_dump.exists()

        rows = []
        for name, service in arms.items():
            elapsed = best[name]
            rows.append([
                name,
                len(stream),
                round(elapsed, 4),
                round(len(stream) / elapsed, 1) if elapsed else 0.0,
                round(elapsed / best["obs-off"], 3) if best["obs-off"] else 0.0,
                len(service.flight),
                len(service.introspect()["explain"]),
            ])

        record_figure(
            "obs_overhead",
            HEADERS,
            rows,
            title="Observability — no-op tax on the warm serving path "
                  "(min of interleaved sweeps)",
            phases={
                "stream-length": len(stream),
                "zipf-exponent": ZIPF_EXPONENT,
                "batch-size": BATCH_SIZE,
                "sweeps": SWEEPS,
                "noop-tax": round(best["obs-noop"] / best["obs-off"], 4),
                "enabled-tax": round(best["obs-on"] / best["obs-off"], 4),
            },
        )

        tax = best["obs-noop"] / best["obs-off"]
        assert tax <= NOOP_BUDGET, (
            f"default no-op observability costs {(tax - 1.0) * 100:.1f}% over "
            f"the compiled-out floor (budget {(NOOP_BUDGET - 1.0) * 100:.0f}%: "
            f"off {best['obs-off']:.4f}s vs noop {best['obs-noop']:.4f}s)"
        )
    finally:
        for service in arms.values():
            service.close()
        if session_instrumented:
            enable_metrics()
            enable_tracing()
        else:
            disable_tracing()
            disable_metrics()
