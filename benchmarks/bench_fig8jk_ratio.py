"""Figures 8(j)/8(k): response time while varying the ratio threshold pa.

The paper fixes the pattern size and grows pa from 10% to 90%.  Engines with
quantifier-aware pruning (PQMatch and friends) get *faster* as pa grows — a
stricter threshold lets the upper-bound filter discard more candidates before
any search — whereas Enum is indifferent to pa, because it always enumerates
every match of the stratified pattern first.  The benchmark sweeps the same
thresholds on a Q1-style ratio pattern per dataset and reports both time and
the number of candidates pruned before verification.
"""

from __future__ import annotations

import pytest

from repro.matching import EnumMatcher, QMatch
from repro.patterns import PatternBuilder
from repro.utils import Timer

RATIOS = (10.0, 30.0, 50.0, 70.0, 90.0)


def _ratio_pattern(dataset: str, percent: float):
    if dataset == "pokec":
        return (
            PatternBuilder(f"Q1-{int(percent)}")
            .focus("xo", "person")
            .node("club", "music_club")
            .node("z", "person")
            .node("y", "album")
            .edge("xo", "club", "in")
            .edge("xo", "z", "follow", at_least_percent=percent)
            .edge("z", "y", "like")
            .build()
        )
    return (
        PatternBuilder(f"Q4r-{int(percent)}")
        .focus("xo", "person")
        .node("prof", "prof")
        .node("z", "person")
        .edge("xo", "prof", "is_a")
        .edge("xo", "z", "advised", at_least_percent=percent)
        .edge("z", "prof", "is_a")
        .build()
    )


def _engines():
    return {"QMatch": QMatch(), "Enum": EnumMatcher()}


def _sweep(graph, dataset: str):
    rows = []
    for percent in RATIOS:
        pattern = _ratio_pattern(dataset, percent)
        for name, engine in _engines().items():
            with Timer() as timer:
                result = engine.evaluate(pattern, graph)
            rows.append(
                [
                    f"{int(percent)}%",
                    name,
                    round(timer.elapsed, 3),
                    result.counter.candidates_pruned,
                    len(result.answer),
                ]
            )
    return rows


@pytest.mark.benchmark(group="fig8jk")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8jk_varying_ratio(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph, dataset), rounds=1, iterations=1)
    figure = "fig8j_pokec" if dataset == "pokec" else "fig8k_yago2"
    record_figure(
        figure,
        ["ratio", "engine", "seconds", "candidates_pruned", "answers"],
        rows,
        title=f"Figure 8({'j' if dataset == 'pokec' else 'k'}) — varying pa on {dataset}",
    )
    # Stricter ratios prune at least as many candidates (the Fig. 8(j) shape).
    pruned = {row[0]: row[3] for row in rows if row[1] == "QMatch"}
    assert pruned["90%"] >= pruned["10%"]
    # Enum's answer agrees with QMatch for every threshold.
    answers = {}
    for row in rows:
        answers.setdefault(row[0], set()).add(row[4])
    assert all(len(sizes) == 1 for sizes in answers.values())
