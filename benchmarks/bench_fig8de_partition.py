"""Figures 8(d)/8(e): DPar partition time while varying the number of workers.

The paper reports the time DPar takes to build a d-hop preserving partition of
Pokec / YAGO2 for d = 2 and d = 3, as the number of processors grows from 4 to
20, and highlights two qualities: the partition time improves with more
workers (parallel scalability of DPar) and the fragments stay balanced (skew
at least 80%).  This benchmark reproduces the same sweep; since the partition
work itself runs sequentially here, the per-n series reports the partition
time, the fragment skew and the replication factor, plus the *incremental*
extension time from d = 2 to d = 3 (the paper's remark that the partition is
extended, not rebuilt, when a larger-radius query arrives).
"""

from __future__ import annotations

import pytest

from repro.parallel import DPar

WORKER_COUNTS = (2, 4, 8, 12)


def _sweep(graph):
    rows = []
    for workers in WORKER_COUNTS:
        partitioner = DPar(d=2, seed=0)
        partition = partitioner.partition(graph, workers)
        extended = partitioner.extend(partition, 3)
        rows.append(
            [
                workers,
                2,
                round(partition.elapsed, 3),
                round(partition.skew(), 3),
                round(partition.replication_factor(), 2),
                partition.is_covering() and partition.is_complete(),
            ]
        )
        rows.append(
            [
                workers,
                3,
                round(partition.elapsed + extended.elapsed, 3),
                round(extended.skew(), 3),
                round(extended.replication_factor(), 2),
                extended.is_covering() and extended.is_complete(),
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig8de")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8de_partition_time(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph,), rounds=1, iterations=1)
    figure = "fig8d_pokec" if dataset == "pokec" else "fig8e_yago2"
    record_figure(
        figure,
        ["workers", "d", "partition_seconds", "skew", "replication", "covering_complete"],
        rows,
        title=f"Figure 8({'d' if dataset == 'pokec' else 'e'}) — DPar on {dataset}",
    )
    # Every partition must be valid, and the balance target of the paper
    # (skew >= 0.8 at n = 8) should hold on these graphs.
    assert all(row[5] for row in rows)
    d2_skews = {row[0]: row[3] for row in rows if row[1] == 2}
    assert d2_skews[8] >= 0.5
