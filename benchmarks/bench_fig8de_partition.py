"""Figures 8(d)/8(e): DPar partition time while varying the number of workers.

The paper reports the time DPar takes to build a d-hop preserving partition of
Pokec / YAGO2 for d = 2 and d = 3, as the number of processors grows from 4 to
20, and highlights two qualities: the partition time improves with more
workers (parallel scalability of DPar) and the fragments stay balanced (skew
at least 80%).  This benchmark reproduces the same sweep; since the partition
work itself runs sequentially here, the per-n series reports the partition
time, the fragment skew and the replication factor, plus the *incremental*
extension time from d = 2 to d = 3 (the paper's remark that the partition is
extended, not rebuilt, when a larger-radius query arrives).

Each worker count also carries a ``DPar-build-noidx`` row: the identical
build through the dict-backed BFS (``use_index=False``).  Because the two
paths produce the *same* partition (asserted below), the pair of rows
measures exactly what the merged undirected CSR of ``repro.index`` buys the
d-hop expansion — the partitioner's hot loop.
"""

from __future__ import annotations

import pytest

from repro.parallel import DPar

WORKER_COUNTS = (2, 4, 8, 12)


def _sweep(graph):
    rows = []
    # One-off snapshot + merged-CSR compilation, reported as its own phase
    # (mirrors the ``index-build`` row of fig8a) so the per-n build rows
    # measure pure partition time on both variants.
    from repro.index import GraphIndex
    from repro.utils.timing import Timer

    with Timer() as build_timer:
        snapshot = GraphIndex.for_graph(graph, rebuild=True)
        snapshot.neighborhoods()
    rows.append(["index-build", 0, 0, round(build_timer.elapsed, 3), 1.0, 1.0, True])
    for workers in WORKER_COUNTS:
        partitioner = DPar(d=2, seed=0, use_index=True)
        partition = partitioner.partition(graph, workers)
        noidx = DPar(d=2, seed=0, use_index=False).partition(graph, workers)
        extended = partitioner.extend(partition, 3)
        for variant, built in (("DPar-build", partition), ("DPar-build-noidx", noidx)):
            rows.append(
                [
                    variant,
                    workers,
                    2,
                    round(built.elapsed, 3),
                    round(built.skew(), 3),
                    round(built.replication_factor(), 2),
                    built.is_covering() and built.is_complete(),
                ]
            )
        rows.append(
            [
                "DPar-extend",
                workers,
                3,
                round(partition.elapsed + extended.elapsed, 3),
                round(extended.skew(), 3),
                round(extended.replication_factor(), 2),
                extended.is_covering() and extended.is_complete(),
            ]
        )
        # The compiled BFS must be a pure accelerator: same fragments either way.
        assert [f.owned_nodes for f in partition.fragments] == [
            f.owned_nodes for f in noidx.fragments
        ]
        assert [f.node_set for f in partition.fragments] == [
            f.node_set for f in noidx.fragments
        ]
    return rows


@pytest.mark.benchmark(group="fig8de")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8de_partition_time(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph,), rounds=1, iterations=1)
    figure = "fig8d_pokec" if dataset == "pokec" else "fig8e_yago2"
    record_figure(
        figure,
        ["variant", "workers", "d", "partition_seconds", "skew", "replication",
         "covering_complete"],
        rows,
        title=f"Figure 8({'d' if dataset == 'pokec' else 'e'}) — DPar on {dataset}",
    )
    # Every partition must be valid, and the balance target of the paper
    # (skew >= 0.8 at n = 8) should hold on these graphs.
    assert all(row[6] for row in rows)
    d2_skews = {row[1]: row[4] for row in rows if row[2] == 2 and row[0] == "DPar-build"}
    assert d2_skews[8] >= 0.5
