"""Scale-out figure: Zipf traffic over a 4-shard fleet, cold vs shared-cache warm.

The scale-out story of the serving tier is a *restart* story: a fleet that
dies takes its in-memory caches with it, but not the cross-process sqlite
result store.  This benchmark plays it out end to end:

* ``fleet-cold``   — a 4-shard :class:`ShardedService` serving a Zipf-skewed
  stream from nothing, writing every computed answer through to a shared
  sqlite store;
* ``fleet-warm``   — a **freshly built** fleet over the same graph (same
  deterministic shards, same version vector) serving the identical stream:
  every unique pattern must come out of the shared store without a single
  fan-out round;
* ``oracle``       — a single ``QueryService`` on the union graph, the
  byte-identity referee.

Assertions (the acceptance bar of the scale-out tier):

* every fleet answer — cold and warm — is byte-identical to the oracle's;
* the warm fleet performs **zero** fan-out rounds and **zero** worker
  rebuilds: restarts ride the shared store, they do not recompute;
* warm serving clears **≥ 3×** the cold fleet's wall clock on the stream;
* the shared store reports zero degraded reads (this is the healthy-path
  figure; ``tests/test_serve_faults.py`` owns the unhealthy paths).

CI runs this entry point at ``REPRO_BENCH_SCALE=0.2`` as a smoke test.
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_pattern, workload_patterns, zipf_workload
from repro.serve import ShardedService
from repro.service import QueryService
from repro.utils import Timer

STREAM_LENGTH = 48
ZIPF_EXPONENT = 1.1
NUM_SHARDS = 4
BATCH_SIZE = 8
WARM_SPEEDUP_FLOOR = 3.0

HEADERS = [
    "engine", "queries", "wall_seconds", "qps", "speedup_vs_cold",
    "fanout_rounds", "shared_hits", "shared_stores", "l1_hits", "worker_rebuilds",
]


def _unique_patterns(graph):
    uniques = [
        paper_pattern("Q2"),
        paper_pattern("Q3", p=2),
    ] + workload_patterns(graph, count=4, seed=13)
    for index, pattern in enumerate(uniques):
        pattern.name = f"U{index}-{pattern.name}"
    return uniques


def _serve(fleet, stream):
    answers = []
    with Timer() as timer:
        for start in range(0, len(stream), BATCH_SIZE):
            for result in fleet.evaluate_many(stream[start : start + BATCH_SIZE]):
                answers.append(result.answer)
    return answers, timer.elapsed


def _fleet_row(name, fleet, elapsed, cold_elapsed, queries):
    stats = fleet.stats_snapshot()
    return [
        name,
        queries,
        round(elapsed, 4),
        round(queries / elapsed, 1) if elapsed else 0.0,
        round(cold_elapsed / elapsed, 2) if elapsed else 0.0,
        int(stats["fanout_rounds"]),
        int(stats["shared_hits"]),
        int(stats["shared_cache_stores"]),
        int(stats["cache_hits"]),
        int(stats["worker_rebuilds"]),
    ]


@pytest.mark.benchmark(group="scaleout")
def test_scaleout_shared_cache_restart(benchmark, pokec_graph, record_figure, tmp_path):
    graph = pokec_graph
    uniques = _unique_patterns(graph)
    stream = zipf_workload(uniques, STREAM_LENGTH, exponent=ZIPF_EXPONENT, seed=7)
    store_path = str(tmp_path / "scaleout.sqlite")

    # ------------------------------------------------------------ oracle
    with QueryService(graph, name="scaleout-oracle") as oracle:
        expected = {id(p): oracle.evaluate(p).answer for p in uniques}
        with Timer() as oracle_timer:
            oracle_answers = [oracle.evaluate(p).answer for p in stream]
    oracle_elapsed = oracle_timer.elapsed

    # ------------------------------------------------- cold fleet (writes L2)
    cold_fleet = ShardedService(
        graph, num_shards=NUM_SHARDS, shared_cache=store_path, name="scaleout-cold"
    )
    cold_answers, cold_elapsed = benchmark.pedantic(
        _serve, args=(cold_fleet, stream), rounds=1, iterations=1
    )
    assert cold_answers == [expected[id(p)] for p in stream]
    assert cold_fleet.stats_snapshot()["worker_rebuilds"] == 0
    store_entries = cold_fleet.shared.entry_count()
    assert store_entries == len(uniques)
    cold_vector = cold_fleet.version_vector
    cold_fleet.close()

    # ------------------------------------------ warm fleet (a fresh restart)
    warm_fleet = ShardedService(
        graph, num_shards=NUM_SHARDS, shared_cache=store_path, name="scaleout-warm"
    )
    # Deterministic shard construction: the rebuilt fleet lands on the exact
    # version vector the cold fleet wrote its entries under.
    assert warm_fleet.version_vector == cold_vector
    warm_answers, warm_elapsed = _serve(warm_fleet, stream)
    assert warm_answers == cold_answers
    warm_stats = warm_fleet.stats_snapshot()
    # The restart recomputed nothing at all.
    assert warm_stats["fanout_rounds"] == 0
    assert warm_stats["worker_rebuilds"] == 0
    assert warm_stats["shared_hits"] == len(uniques)
    assert warm_stats["shared_cache_degraded"] == 0
    warm_fleet.close()

    rows = [
        ["oracle-single", len(stream), round(oracle_elapsed, 4),
         round(len(stream) / oracle_elapsed, 1) if oracle_elapsed else 0.0,
         round(cold_elapsed / oracle_elapsed, 2) if oracle_elapsed else 0.0,
         0, 0, 0, 0, 0],
        _fleet_row("fleet-cold", cold_fleet, cold_elapsed, cold_elapsed, len(stream)),
        _fleet_row("fleet-warm", warm_fleet, warm_elapsed, cold_elapsed, len(stream)),
    ]

    record_figure(
        "scaleout",
        HEADERS,
        rows,
        title="Scale-out — 4-shard fleet, cold vs shared-cache warm restart",
        phases={
            "stream-length": len(stream),
            "unique-patterns": len(uniques),
            "zipf-exponent": ZIPF_EXPONENT,
            "num-shards": NUM_SHARDS,
            "store-entries": store_entries,
            "cold-seconds": round(cold_elapsed, 6),
            "warm-seconds": round(warm_elapsed, 6),
        },
    )

    speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"shared-cache warm restart {speedup:.2f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x floor "
        f"(cold {cold_elapsed:.3f}s vs warm {warm_elapsed:.3f}s)"
    )
