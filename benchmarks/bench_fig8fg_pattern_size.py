"""Figures 8(f)/8(g): response time while varying the pattern size |Q|.

The paper fixes pa = 30%, |E−Q| = 1, n = 8 and grows (|VQ|, |EQ|) from (4, 6)
to (8, 10) on Pokec and from (3, 5) to (7, 9) on YAGO2: all engines slow down
as the pattern grows, and PQMatch stays fastest.  This benchmark runs the
same sweep with generated workload queries of each size over the sequential
engines and the 8-worker parallel coordinator.
"""

from __future__ import annotations

import pytest

from repro.datasets import workload_patterns
from repro.matching import EnumMatcher, QMatch
from repro.parallel import pqmatch_engine
from repro.utils import Timer

SIZES = {
    "pokec": [(4, 6), (5, 7), (6, 8), (7, 9)],
    "yago2": [(3, 5), (4, 6), (5, 7), (6, 8)],
}


def _engines():
    return {
        "QMatch": QMatch(),
        "Enum": EnumMatcher(),
        "PQMatch(n=8)": pqmatch_engine(num_workers=8, d=2),
    }


def _sweep(graph, dataset: str):
    rows = []
    for num_nodes, num_edges in SIZES[dataset]:
        patterns = workload_patterns(
            graph, count=2, num_nodes=num_nodes, num_edges=num_edges,
            ratio_percent=30.0, num_negated=1, seed=num_nodes,
        )
        for name, engine in _engines().items():
            answers = 0
            with Timer() as timer:
                for pattern in patterns:
                    answers += len(engine.evaluate_answer(pattern, graph))
            rows.append([f"({num_nodes},{num_edges})", name, round(timer.elapsed, 3), answers])
    return rows


@pytest.mark.benchmark(group="fig8fg")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8fg_varying_pattern_size(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph, dataset), rounds=1, iterations=1)
    figure = "fig8f_pokec" if dataset == "pokec" else "fig8g_yago2"
    record_figure(
        figure,
        ["|Q|", "engine", "seconds", "total_answers"],
        rows,
        title=f"Figure 8({'f' if dataset == 'pokec' else 'g'}) — varying |Q| on {dataset}",
    )
