"""Figure 8(l): response time while growing the synthetic graph size |G|.

The paper grows the synthetic small-world graph from (10M, 20M) to
(50M, 100M) nodes/edges with n = 4 workers; PQMatch scales roughly linearly
with |G| and stays ahead of PQMatchN, PQMatchS and PEnum.  This benchmark runs
the same sweep at pure-Python scale (thousands of nodes) and reports, per
graph size and engine, the wall time and the total verification work.
"""

from __future__ import annotations

import pytest

from repro.graph import small_world_social_graph
from repro.parallel import penum_engine, pqmatch_engine, pqmatch_n_engine, pqmatch_s_engine
from repro.patterns import generate_workload
from repro.utils import Timer

# (nodes, edges) pairs standing in for the paper's (10M,20M) ... (50M,100M).
GRAPH_SIZES = [(1000, 2000), (2000, 4000), (3000, 6000), (4000, 8000), (5000, 10000)]

ENGINE_FACTORIES = {
    "PQMatch": pqmatch_engine,
    "PQMatchS": pqmatch_s_engine,
    "PQMatchN": pqmatch_n_engine,
    "PEnum": penum_engine,
}


def _sweep():
    rows = []
    for num_nodes, num_edges in GRAPH_SIZES:
        graph = small_world_social_graph(num_nodes, num_edges, seed=7,
                                         name=f"syn-{num_nodes}")
        patterns = generate_workload(graph, count=2, num_nodes=4, num_edges=5,
                                     ratio_percent=30.0, num_negated=1, seed=5)
        for name, factory in ENGINE_FACTORIES.items():
            engine = factory(num_workers=4, d=2)
            work = 0
            with Timer() as timer:
                for pattern in patterns:
                    result = engine.evaluate(pattern, graph)
                    work += result.total_work
            rows.append([f"({num_nodes},{num_edges})", name, round(timer.elapsed, 3), work])
    return rows


@pytest.mark.benchmark(group="fig8l")
def test_fig8l_varying_graph_size(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_figure(
        "fig8l_synthetic",
        ["|G| (nodes,edges)", "engine", "seconds", "total_work"],
        rows,
        title="Figure 8(l) — varying |G| on synthetic graphs (n = 4 workers)",
    )
    # PQMatch must scale: time grows with |G| but stays bounded by the largest
    # graph's PEnum time (the paper's ordering of the four engines).
    pqmatch = [row for row in rows if row[1] == "PQMatch"]
    assert pqmatch[0][2] <= pqmatch[-1][2] * 5  # sanity: no pathological blow-up
