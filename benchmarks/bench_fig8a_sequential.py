"""Figure 8(a): response time of the sequential engines (QMatch, QMatchN, Enum).

The paper fixes |Q| = (5, 7, 30%, 1) and reports the total response time of
QMatch, QMatchN (no incremental negation handling) and Enum (enumerate all
matches, then verify quantifiers) over YAGO2, Pokec (two query sizes) and a
larger synthetic graph.  This benchmark reproduces the same comparison on the
scaled-down datasets: the workload per dataset mixes the paper's example
patterns with generated queries of the same size signature.

Three extra rows quantify the compiled graph index (``repro.index``):
``QMatch-noidx`` runs the identical algorithm through the dict-backed
fallback (``use_index=False``), ``QMatch-enum-noidx`` keeps the indexed
filtering but falls back to dict-backed backtracking (isolating the
enumeration-phase speedup of the CSR dynamic pools), and ``index-build``
reports the one-off snapshot compilation as its own phase, so the table
directly shows the sequential speedup the index buys and what it costs to
build.
"""

from __future__ import annotations

import pytest

from repro.bench import EngineSpec, run_engines, summarize_records
from repro.datasets import paper_pattern, workload_patterns
from repro.matching import DMatchOptions, EnumMatcher, QMatch

ENGINES = [
    EngineSpec("QMatch", lambda: QMatch()),
    EngineSpec(
        "QMatch-noidx",
        lambda: QMatch(options=DMatchOptions(use_index=False), name="QMatch-noidx"),
    ),
    # Ablation: indexed candidate filtering but dict-backed backtracking, so
    # the table isolates what the CSR-row dynamic pools buy the enumeration
    # phase alone (QMatch vs QMatch-enum-noidx) from what the filtering
    # phases buy (QMatch-enum-noidx vs QMatch-noidx).
    EngineSpec(
        "QMatch-enum-noidx",
        lambda: QMatch(
            options=DMatchOptions(use_index=True, use_index_enumeration=False),
            name="QMatch-enum-noidx",
        ),
    ),
    EngineSpec("QMatchN", lambda: QMatch(use_incremental=False)),
    EngineSpec("Enum", lambda: EnumMatcher()),
]


def _workload(graph, dataset: str):
    """The per-dataset query mix of Exp-1: example patterns + generated queries."""
    if dataset == "pokec":
        patterns = [paper_pattern("Q1"), paper_pattern("Q2"), paper_pattern("Q3", p=2)]
    elif dataset == "yago2":
        patterns = [paper_pattern("Q4", p=2), paper_pattern("Q5")]
    else:
        patterns = []
    patterns += workload_patterns(graph, count=2, num_nodes=5, num_edges=7,
                                  ratio_percent=30.0, num_negated=1, seed=11)
    return patterns


def _run(graph, dataset):
    records = run_engines(ENGINES, _workload(graph, dataset), graph, prebuild_index=True)
    return summarize_records(records)


@pytest.mark.benchmark(group="fig8a")
@pytest.mark.parametrize("dataset", ["pokec", "yago2", "synthetic"])
def test_fig8a_sequential_engines(benchmark, dataset, pokec_graph, yago_graph,
                                  synthetic_graph, record_figure):
    graph = {"pokec": pokec_graph, "yago2": yago_graph, "synthetic": synthetic_graph}[dataset]
    summary = benchmark.pedantic(_run, args=(graph, dataset), rounds=1, iterations=1)
    rows = [
        [dataset, engine, stats["queries"], round(stats["elapsed"], 3),
         int(stats["work"]), int(stats["answers"])]
        for engine, stats in sorted(summary.items())
    ]
    record_figure(
        f"fig8a_{dataset}",
        ["dataset", "engine", "queries", "total_seconds", "total_work", "total_answers"],
        rows,
        title=f"Figure 8(a) — sequential engines on {dataset} "
              f"(|G| = {graph.num_nodes} nodes / {graph.num_edges} edges)",
    )
