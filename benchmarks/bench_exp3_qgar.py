"""Exp-3: effectiveness of QGARs (the paper's rules R5–R7 and Fig. 9).

The paper mines GPAR seeds, extends them into QGARs (growing consequents and
raising quantifier thresholds while the confidence stays above η), and reports
three discovered rules with their support and confidence: R5/R6 on Pokec and
R7 on YAGO2.  This benchmark runs the same two-phase procedure on the
generated datasets and additionally evaluates the hand-written analogues of
R1/R2/R7, reporting support, confidence and the entities identified at
η = 0.5 — the same quantities the paper quotes.
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_rule
from repro.rules import MiningConfig, mine_qgars
from repro.utils import Timer


def _mine(graph, dataset: str):
    config = MiningConfig(
        focus_label="person",
        min_support=3,
        min_confidence=0.4,
        max_antecedent_edges=2,
        max_rules=5,
        quantifier_step_percent=10.0,
        max_extension_rounds=3,
    )
    rows = []
    with Timer() as timer:
        discovered = mine_qgars(graph, eta=0.4, config=config, seed=1)
    for record in discovered:
        quantified = [
            f"{edge.label}[{edge.quantifier}]"
            for edge in record.rule.antecedent.edges()
            if not edge.quantifier.is_existential
        ]
        consequent = ",".join(edge.label for edge in record.rule.consequent.edges())
        rows.append(
            [
                dataset,
                record.rule.name,
                " & ".join(quantified) or "(none)",
                consequent,
                record.support,
                round(record.confidence, 2),
            ]
        )
    return rows, timer.elapsed


def _paper_rules(pokec_graph, yago_graph):
    rows = []
    cases = [
        ("pokec", "R1", pokec_graph),
        ("pokec", "R2", pokec_graph),
        ("yago2", "R7", yago_graph),
    ]
    for dataset, name, graph in cases:
        rule = paper_rule(name)
        evaluation = rule.evaluate(graph)
        identified = evaluation.identified_entities(eta=0.5)
        rows.append(
            [dataset, name, evaluation.support, round(evaluation.confidence, 2), len(identified)]
        )
    return rows


@pytest.mark.benchmark(group="exp3")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_exp3_qgar_mining(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows, elapsed = benchmark.pedantic(_mine, args=(graph, dataset), rounds=1, iterations=1)
    record_figure(
        f"exp3_mining_{dataset}",
        ["dataset", "rule", "antecedent quantifiers", "consequent", "support", "confidence"],
        rows,
        title=f"Exp-3 — QGARs mined from {dataset} (eta = 0.4, {elapsed:.1f}s)",
    )
    assert rows, "mining should discover at least one rule on the planted cohorts"
    assert all(row[5] >= 0.4 for row in rows)


@pytest.mark.benchmark(group="exp3")
def test_exp3_paper_rules(benchmark, pokec_graph, yago_graph, record_figure):
    rows = benchmark.pedantic(_paper_rules, args=(pokec_graph, yago_graph),
                              rounds=1, iterations=1)
    record_figure(
        "exp3_paper_rules",
        ["dataset", "rule", "support", "confidence", "entities_at_eta_0.5"],
        rows,
        title="Exp-3 — the paper's example rules on the generated datasets",
    )
    r7 = next(row for row in rows if row[1] == "R7")
    assert r7[2] > 0 and r7[3] >= 0.5
