"""Plans figure: interpreted vs compiled-plan execution on a Zipf query stream.

The serving layer canonicalizes every request to a fingerprint, so a skewed
stream keeps presenting the *same* queries — and the plan layer
(:mod:`repro.plan`) compiles each fingerprint once into a straight-line
program: lowered quantifier checks, pre-resolved row stores, per-epoch
neighbourhood tables.  This benchmark measures what that buys end to end by
serving one stream three ways through :class:`~repro.service.QueryService`:

* ``interpreted``    — ``use_plans=False``: every request re-interprets the
  pattern (quantifier dispatch, label encoding, per-candidate setup);
* ``compiled-cold``  — a fresh plan cache: the sweep pays every compile;
* ``compiled-warm``  — the same service again: pure plan-cache hits;
* ``compiled-vectorized`` — warm plans plus ``vectorized=True``: candidate
  pools as sorted dense-id runs intersected with the merge kernels of
  :mod:`repro.plan.vectorized`, the locality ball as a dense frontier BFS,
  ids decoded only at yield.

The result cache is cleared after every request, so **all** arms compute all
requests — the figure isolates the matching-layer effect of plans from the
answer cache (which ``BENCH_serving`` already measures).

The engine runs the verification-bound configuration
(``use_simulation=False, use_potential=False, use_locality=True``): candidate
pools are label-wide and every focus candidate pays the locality sweep, which
is precisely the per-query interpretation overhead plans remove (flattened
neighbour tables, memoised pattern adjacency, lowered checks).  Answers are
byte-identical across arms by the plan layer's contract.

Assertions (the acceptance bar of the plan layer):

* every arm returns byte-identical answers, request by request;
* ``compiled-warm`` clears **≥ 1.3×** the interpreted throughput;
* ``compiled-vectorized`` clears **≥ 1.3×** the compiled-warm throughput;
* each unique fingerprint compiles at most once: the cold sweep's
  process-wide compile delta is bounded by the unique-pattern count and the
  warm sweep compiles **zero** plans while still hitting the plan cache;
* the measured warm and vectorized sweeps trigger zero ``GraphIndex.build``
  calls (workers derive dense runs from cached snapshots — the pool
  boundary ships nothing new).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.datasets import zipf_workload
from repro.index.snapshot import build_call_count
from repro.matching import DMatchOptions, QMatch
from repro.parallel import PQMatch
from repro.patterns import CountingQuantifier, QuantifiedGraphPattern
from repro.plan import plan_compile_count
from repro.service import QueryService
from repro.utils import Timer

from conftest import _OBS_ENABLED

STREAM_LENGTH = 48
ZIPF_EXPONENT = 1.1
SPEEDUP_FLOOR = 1.3

HEADERS = [
    "engine", "queries", "wall_seconds", "qps", "speedup_vs_interpreted",
    "plan_hits", "plan_misses", "plan_compiles",
]

ENGINE_OPTIONS = DMatchOptions(
    use_simulation=False, use_potential=False, use_locality=True
)


def _star(name, focus, edges):
    """A star-ish quantified pattern from ``(s, t, label, quantifier)`` rows."""
    pattern = QuantifiedGraphPattern(name=name)
    added = set()
    for source, target, label, quantifier, source_label, target_label in edges:
        for node, node_label in ((source, source_label), (target, target_label)):
            if node not in added:
                pattern.add_node(node, node_label)
                added.add(node)
        pattern.add_edge(source, target, label, quantifier)
    pattern.set_focus(focus)
    return pattern


def _unique_patterns():
    """Quantifier-heavy uniques over the Pokec vocabulary.

    Counting (``>=``/``=``) and ratio quantifiers over ``follow`` /
    ``is_friend`` / ``like`` / ``recom`` — the shapes whose verification loop
    the plan lowers (threshold closures, degree-row probes).
    """
    quantifier = CountingQuantifier
    return [
        _star("P0-follow", "x", [
            ("x", "y", "follow", quantifier.at_least(2), "person", "person"),
        ]),
        _star("P1-follow-recom", "x", [
            ("x", "y", "follow", quantifier.at_least(2), "person", "person"),
            ("y", "p", "recom", quantifier.ratio_at_least(30.0), "person", "product"),
        ]),
        _star("P2-friend-exact", "x", [
            ("x", "y", "follow", quantifier.at_least(2), "person", "person"),
            ("x", "z", "is_friend", quantifier.exactly(1), "person", "person"),
            ("y", "p", "recom", quantifier.existential(), "person", "product"),
        ]),
        _star("P3-friend-like", "x", [
            ("x", "y", "is_friend", quantifier.at_least(1), "person", "person"),
            ("y", "p", "like", quantifier.ratio_at_least(20.0), "person", "product"),
        ]),
    ]


def _respelled(pattern, tag):
    renamed = pattern.relabel_nodes({node: f"{tag}_{node}" for node in pattern.nodes()})
    renamed.name = f"{pattern.name}#respelled"
    return renamed


def _request_stream(uniques):
    """Zipf-skewed stream with every third request re-spelled (same plans)."""
    stream = zipf_workload(uniques, STREAM_LENGTH, exponent=ZIPF_EXPONENT, seed=7)
    respelled = {id(pattern): _respelled(pattern, "ren") for pattern in uniques}
    return [
        respelled[id(pattern)] if position % 3 == 2 else pattern
        for position, pattern in enumerate(stream)
    ]


def _make_service(graph, uniques, use_plans, name, options=ENGINE_OPTIONS):
    service = QueryService(
        graph,
        PQMatch(num_workers=1, d=2, engine=QMatch(options=options)),
        name=name,
        use_plans=use_plans,
    )
    service.coordinator.ensure_radius(graph, max(p.radius() for p in uniques))
    service.evaluate(uniques[0])  # warm partition/fragments/indexes
    service.cache.clear()
    return service


def _sweep(service, stream):
    """Serve the stream with the answer cache defeated: every request computes."""
    answers = []
    with Timer() as timer:
        for pattern in stream:
            answers.append(service.evaluate(pattern).answer)
            service.cache.clear()
    return answers, timer.elapsed


def _row(name, service, elapsed, interpreted_elapsed, queries):
    stats = service.plans.stats
    return [
        name,
        queries,
        round(elapsed, 4),
        round(queries / elapsed, 1) if elapsed else 0.0,
        round(interpreted_elapsed / elapsed, 2) if elapsed else 0.0,
        stats.hits,
        stats.misses,
        stats.compiles,
    ]


@pytest.mark.benchmark(group="plans")
def test_plans_zipf_stream(benchmark, pokec_graph, record_figure):
    graph = pokec_graph
    uniques = _unique_patterns()
    stream = _request_stream(uniques)

    if _OBS_ENABLED:
        from repro.obs import get_registry

        obs_hits_before = get_registry().counter("plan.cache.hits").value
        obs_compiles_before = get_registry().counter("plan.compile").value

    # ------------------------------------------------------ interpreted arm
    interpreted = _make_service(graph, uniques, False, "plans-interpreted")
    interpreted_answers, interpreted_elapsed = _sweep(interpreted, stream)
    assert interpreted.plans.stats.as_dict() == {
        "hits": 0, "misses": 0, "compiles": 0, "evictions": 0,
    }

    # ---------------------------------------------------- compiled-cold arm
    compiles_before = plan_compile_count()
    compiled = _make_service(graph, uniques, True, "plans-compiled")
    cold_answers, cold_elapsed = _sweep(compiled, stream)
    cold_compiles = plan_compile_count() - compiles_before
    cold_stats = compiled.plans.stats.as_dict()
    # Each unique fingerprint compiles at most once per process — respelled
    # requests and repeats all land on the same program.
    assert 0 < cold_compiles <= len(uniques)
    assert cold_stats["compiles"] == len(uniques)

    # ---------------------------------------------------- compiled-warm arm
    builds_before = build_call_count()
    warm_compiles_before = plan_compile_count()
    warm_hits_before = compiled.plans.stats.hits
    (warm_answers, warm_elapsed) = benchmark.pedantic(
        _sweep, args=(compiled, stream), rounds=1, iterations=1
    )
    # The measured sweep runs on warm plans over warm indexes: zero compiles,
    # zero snapshot rebuilds, plan-cache hits only.
    assert plan_compile_count() == warm_compiles_before
    assert build_call_count() == builds_before
    assert compiled.plans.stats.hits > warm_hits_before

    # ----------------------------------------------- compiled-vectorized arm
    vectorized = _make_service(
        graph,
        uniques,
        True,
        "plans-vectorized",
        options=replace(ENGINE_OPTIONS, vectorized=True),
    )
    _sweep(vectorized, stream)  # warm the plan cache / dense-run tables
    vec_builds_before = build_call_count()
    vec_compiles_before = plan_compile_count()
    if _OBS_ENABLED:
        obs_probes_before = get_registry().counter("plan.vectorized.probes").value
    vectorized_answers, vectorized_elapsed = _sweep(vectorized, stream)
    # Same zero-build / zero-compile bar as the warm arm: the dense runs are
    # derived from cached snapshots, never from a rebuild.
    assert plan_compile_count() == vec_compiles_before
    assert build_call_count() == vec_builds_before
    if _OBS_ENABLED:
        # The kernels actually ran (and flushed their per-query counters).
        assert (
            get_registry().counter("plan.vectorized.probes").value
            > obs_probes_before
        )

    # Byte-identical answers, request by request, across all four arms.
    assert interpreted_answers == cold_answers == warm_answers
    assert warm_answers == vectorized_answers

    if _OBS_ENABLED:
        registry = get_registry()
        assert registry.counter("plan.cache.hits").value > obs_hits_before
        obs_compiles = registry.counter("plan.compile").value - obs_compiles_before
        # One compile per (fingerprint, options) pair: the vectorized arm runs
        # under its own options key, so each unique may compile twice total.
        assert obs_compiles <= 2 * len(uniques)

    rows = [
        ["interpreted", len(stream), round(interpreted_elapsed, 4),
         round(len(stream) / interpreted_elapsed, 1) if interpreted_elapsed else 0.0,
         1.0, 0, 0, 0],
        ["compiled-cold", len(stream), round(cold_elapsed, 4),
         round(len(stream) / cold_elapsed, 1) if cold_elapsed else 0.0,
         round(interpreted_elapsed / cold_elapsed, 2) if cold_elapsed else 0.0,
         cold_stats["hits"], cold_stats["misses"], cold_stats["compiles"]],
        _row("compiled-warm", compiled, warm_elapsed, interpreted_elapsed,
             len(stream)),
        _row("compiled-vectorized", vectorized, vectorized_elapsed,
             interpreted_elapsed, len(stream)),
    ]

    phases = {
        "stream-length": len(stream),
        "unique-patterns": len(uniques),
        "zipf-exponent": ZIPF_EXPONENT,
        "cold-sweep-compiles": cold_compiles,
        "interpreted-seconds-per-query": round(interpreted_elapsed / len(stream), 6),
        "warm-seconds-per-query": round(warm_elapsed / len(stream), 6),
        "vectorized-seconds-per-query": round(vectorized_elapsed / len(stream), 6),
        "compile-seconds-total": round(
            sum(
                info["compile_seconds"]
                for info in compiled.plans.describe()["programs"].values()
            ),
            6,
        ),
    }

    record_figure(
        "plans",
        HEADERS,
        rows,
        title="Plans — interpreted vs compiled straight-line execution (Zipf stream)",
        phases=phases,
    )

    speedup = interpreted_elapsed / warm_elapsed if warm_elapsed else float("inf")
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled-warm speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"(interpreted {interpreted_elapsed:.3f}s vs warm {warm_elapsed:.3f}s)"
    )

    vector_speedup = (
        warm_elapsed / vectorized_elapsed if vectorized_elapsed else float("inf")
    )
    assert vector_speedup >= SPEEDUP_FLOOR, (
        f"compiled-vectorized speedup {vector_speedup:.2f}x over compiled-warm "
        f"below the {SPEEDUP_FLOOR}x floor "
        f"(warm {warm_elapsed:.3f}s vs vectorized {vectorized_elapsed:.3f}s)"
    )
