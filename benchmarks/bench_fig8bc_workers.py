"""Figures 8(b)/8(c): parallel engines while varying the number of workers n.

The paper varies n from 4 to 20 machines and reports the response time of
PQMatch, PQMatchS (no intra-fragment threads), PQMatchN (no incremental
negation handling) and PEnum on Pokec and YAGO2.  Wall-clock speedups are not
observable inside a single container, so alongside the wall time this
benchmark reports the *work model* numbers of the simulated cluster: the total
verification work, the makespan (largest per-worker work) and the implied
speedup — the quantity whose growth with n demonstrates parallel scalability
(Theorem 7).
"""

from __future__ import annotations

import pytest

from repro.datasets import paper_pattern
from repro.parallel import penum_engine, pqmatch_engine, pqmatch_n_engine, pqmatch_s_engine
from repro.utils import Timer

WORKER_COUNTS = (2, 4, 8, 12)

ENGINE_FACTORIES = {
    "PQMatch": pqmatch_engine,
    "PQMatchS": pqmatch_s_engine,
    "PQMatchN": pqmatch_n_engine,
    "PEnum": penum_engine,
}


def _patterns(dataset: str):
    if dataset == "pokec":
        return [paper_pattern("Q1"), paper_pattern("Q3", p=2)]
    return [paper_pattern("Q4", p=2), paper_pattern("Q5")]


def _sweep(graph, dataset: str):
    rows = []
    for workers in WORKER_COUNTS:
        for name, factory in ENGINE_FACTORIES.items():
            engine = factory(num_workers=workers, d=2)
            total_work = 0
            makespan = 0
            with Timer() as timer:
                for pattern in _patterns(dataset):
                    result = engine.evaluate(pattern, graph)
                    total_work += result.total_work
                    makespan += result.makespan_work
            speedup = total_work / makespan if makespan else 1.0
            rows.append([workers, name, round(timer.elapsed, 3), total_work, makespan,
                         round(speedup, 2)])
    return rows


@pytest.mark.benchmark(group="fig8bc")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8bc_varying_workers(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph, dataset), rounds=1, iterations=1)
    figure = "fig8b_pokec" if dataset == "pokec" else "fig8c_yago2"
    record_figure(
        figure,
        ["workers", "engine", "wall_seconds", "total_work", "makespan_work", "work_speedup"],
        rows,
        title=f"Figure 8({'b' if dataset == 'pokec' else 'c'}) — parallel engines vs n on {dataset}",
    )
    # The parallel-scalability shape: PQMatch's makespan shrinks as n grows.
    pqmatch_rows = [row for row in rows if row[1] == "PQMatch"]
    assert pqmatch_rows[-1][4] <= pqmatch_rows[0][4]
