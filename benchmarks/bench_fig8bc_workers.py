"""Figures 8(b)/8(c): parallel engines while varying the number of workers n.

The paper varies n from 4 to 20 machines and reports the response time of
PQMatch, PQMatchS (no intra-fragment threads), PQMatchN (no incremental
negation handling) and PEnum on Pokec and YAGO2.  Two kinds of rows reproduce
that inside one container:

* ``work-model`` rows — the deterministic simulated-cluster numbers: total
  verification work, makespan (largest per-worker work) and the implied
  speedup, whose growth with n demonstrates parallel scalability (Theorem 7)
  independently of how many cores the host actually has.
* ``*-wall`` rows — **real wall clock** for PQMatchS with the
  ``SerialExecutor`` versus the persistent ``ProcessExecutor``: fragments are
  compiled once, shipped to the pool as binary :class:`FragmentPayload`
  snapshots, and decoded once per worker, so the warm measured sweep below
  pays only pattern shipping + matching.  The answers are asserted identical
  to the serial executor's and the workers' ``GraphIndex.build`` count is
  asserted zero.  The ``wall_speedup`` column reports whatever the host's
  cores allow (≈1/overhead-bound on a single-core container; a genuine
  speedup on real hardware — the work-model rows give the hardware-independent
  ceiling).

The archived ``BENCH_fig8{b,c}_*.json`` additionally records the shipping
phases: old-style cost (nested-dict graph pickle + per-worker index rebuild,
paid per worker per query before this layer existed) versus the snapshot cost
(serialize once + decode once per worker), and the cold (first evaluation:
partition + serialize + pool spin-up + decode) versus warm process timings.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.datasets import paper_pattern
from repro.index import GraphIndex, from_bytes
from repro.parallel import (
    FragmentPayload,
    penum_engine,
    pqmatch_engine,
    pqmatch_n_engine,
    pqmatch_s_engine,
)
from repro.utils import Timer

WORKER_COUNTS = (2, 4, 8, 12)

# Real process pools are spun up only for these worker counts (the work-model
# sweep above covers the full range); the CI smoke run narrows it to 2.
PROCESS_WORKER_COUNTS = tuple(
    int(token)
    for token in os.environ.get("REPRO_BENCH_PROCESS_WORKERS", "4").split(",")
    if token.strip()
)


def _wall_speedup_floor():
    """The opt-in wall-clock speedup assertion for multi-core hosts.

    A 1-core container cannot observe real process-pool speedup (the
    work-model rows carry the hardware-independent shape), so by default the
    ``process-wall`` rows are recorded but not asserted.  On real multi-core
    hardware set ``REPRO_BENCH_ASSERT_WALL_SPEEDUP`` to a numeric floor
    (e.g. ``1.5``) — or to any truthy token for the default floor of 1.1 —
    and the benchmark fails unless the persistent process pool actually
    beats the serial executor by that factor.
    """
    raw = os.environ.get("REPRO_BENCH_ASSERT_WALL_SPEEDUP", "").strip()
    if not raw or raw.lower() in ("0", "false", "off", "no"):
        return None
    try:
        return float(raw)
    except ValueError:
        return 1.1

ENGINE_FACTORIES = {
    "PQMatch": pqmatch_engine,
    "PQMatchS": pqmatch_s_engine,
    "PQMatchN": pqmatch_n_engine,
    "PEnum": penum_engine,
}

HEADERS = [
    "workers", "engine", "mode", "wall_seconds", "total_work", "makespan_work",
    "work_speedup", "wall_speedup",
]


def _patterns(dataset: str):
    if dataset == "pokec":
        return [paper_pattern("Q1"), paper_pattern("Q3", p=2)]
    return [paper_pattern("Q4", p=2), paper_pattern("Q5")]


def _sweep(graph, dataset: str):
    rows = []
    for workers in WORKER_COUNTS:
        for name, factory in ENGINE_FACTORIES.items():
            engine = factory(num_workers=workers, d=2)
            total_work = 0
            makespan = 0
            with Timer() as timer:
                for pattern in _patterns(dataset):
                    result = engine.evaluate(pattern, graph)
                    total_work += result.total_work
                    makespan += result.makespan_work
            speedup = total_work / makespan if makespan else 1.0
            rows.append([workers, name, "work-model", round(timer.elapsed, 3),
                         total_work, makespan, round(speedup, 2), 1.0])
    return rows


def _shipping_phases(partition, workers: int, phases: dict) -> None:
    """Measure what one fragment costs to ship the old way vs as a snapshot.

    The pre-snapshot ProcessExecutor pickled each fragment's nested-dict
    graph per task and every worker recompiled a GraphIndex per fragment;
    the payload path serialises the compiled snapshot once and workers decode
    it once.  Both costs are measured on this partition's largest fragment so
    the JSON archive tracks the shipping win across PRs.
    """
    fragment = max(
        (f for f in partition.fragments if f.owned_nodes), key=lambda f: f.size
    )
    fragment_graph = partition.fragment_graph(fragment)

    with Timer() as pickle_timer:
        dict_blob = pickle.dumps(fragment_graph, protocol=pickle.HIGHEST_PROTOCOL)
    with Timer() as rebuild_timer:
        GraphIndex.build(fragment_graph)

    payload = FragmentPayload.from_fragment(
        fragment.fragment_id, fragment_graph, fragment.owned_nodes
    )
    with Timer() as decode_timer:
        from_bytes(payload.snapshot_bytes)

    phases.update({
        f"n{workers}-fragment-nodes": fragment_graph.num_nodes,
        f"n{workers}-dictship-pickle-bytes": len(dict_blob),
        f"n{workers}-dictship-pickle-seconds": round(pickle_timer.elapsed, 6),
        f"n{workers}-dictship-worker-rebuild-seconds": round(rebuild_timer.elapsed, 6),
        f"n{workers}-snapshot-bytes": len(payload.snapshot_bytes),
        f"n{workers}-snapshot-decode-seconds": round(decode_timer.elapsed, 6),
    })


def _wall_clock_rows(graph, dataset: str, phases: dict):
    """Warm-sweep wall clock of SerialExecutor vs the persistent process pool."""
    rows = []
    patterns = _patterns(dataset)
    for workers in PROCESS_WORKER_COUNTS:
        serial = pqmatch_s_engine(num_workers=workers, d=2)
        process = pqmatch_s_engine(num_workers=workers, d=2, executor="process")

        serial_answers = [serial.evaluate_answer(pattern, graph) for pattern in patterns]
        cold_start = time.perf_counter()
        process_answers = [process.evaluate_answer(pattern, graph) for pattern in patterns]
        phases[f"n{workers}-process-cold-seconds"] = round(
            time.perf_counter() - cold_start, 6
        )
        # Byte-identical answers: the union of owned partial answers decoded
        # from shipped snapshots must be exactly the serial executor's.
        assert process_answers == serial_answers

        measurements = {}
        for mode, engine in (("serial-wall", serial), ("process-wall", process)):
            total_work = 0
            makespan = 0
            with Timer() as timer:
                for pattern in patterns:
                    result = engine.evaluate(pattern, graph)
                    total_work += result.total_work
                    makespan += result.makespan_work
            measurements[mode] = (timer.elapsed, total_work, makespan)

        # The warm pool decodes nothing and recompiles nothing: every
        # fragment evaluation ran against the worker-side snapshot cache.
        assert process.executor.last_worker_rebuilds == 0
        process.close()

        serial_wall = measurements["serial-wall"][0]
        for mode, (wall, total_work, makespan) in measurements.items():
            work_speedup = total_work / makespan if makespan else 1.0
            wall_speedup = serial_wall / wall if wall else 1.0
            rows.append([workers, "PQMatchS", mode, round(wall, 3), total_work,
                         makespan, round(work_speedup, 2), round(wall_speedup, 2)])
        floor = _wall_speedup_floor()
        if floor is not None:
            process_wall = measurements["process-wall"][0]
            wall_speedup = serial_wall / process_wall if process_wall else 1.0
            assert wall_speedup >= floor, (
                f"REPRO_BENCH_ASSERT_WALL_SPEEDUP: n={workers} process pool "
                f"achieved {wall_speedup:.2f}x < required {floor}x "
                f"(serial {serial_wall:.3f}s vs process {process_wall:.3f}s)"
            )
        _shipping_phases(serial.partition(graph), workers, phases)
    return rows


@pytest.mark.benchmark(group="fig8bc")
@pytest.mark.parametrize("dataset", ["pokec", "yago2"])
def test_fig8bc_varying_workers(benchmark, dataset, pokec_graph, yago_graph, record_figure):
    graph = pokec_graph if dataset == "pokec" else yago_graph
    rows = benchmark.pedantic(_sweep, args=(graph, dataset), rounds=1, iterations=1)
    phases: dict = {}
    rows += _wall_clock_rows(graph, dataset, phases)
    figure = "fig8b_pokec" if dataset == "pokec" else "fig8c_yago2"
    record_figure(
        figure,
        HEADERS,
        rows,
        title=f"Figure 8({'b' if dataset == 'pokec' else 'c'}) — parallel engines vs n on {dataset}",
        phases=phases,
    )
    # The parallel-scalability shape: PQMatch's makespan shrinks as n grows.
    pqmatch_rows = [row for row in rows if row[1] == "PQMatch" and row[2] == "work-model"]
    assert pqmatch_rows[-1][5] <= pqmatch_rows[0][5]
