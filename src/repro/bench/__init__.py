"""Benchmark harness shared by the figure-reproduction benchmarks."""

from repro.bench.harness import (
    EngineSpec,
    RunRecord,
    records_to_table,
    run_engines,
    summarize_records,
)

__all__ = [
    "EngineSpec",
    "RunRecord",
    "run_engines",
    "summarize_records",
    "records_to_table",
]
