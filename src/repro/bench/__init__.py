"""Benchmark harness shared by the figure-reproduction benchmarks."""

from repro.bench.harness import (
    INDEX_BUILD_ENGINE,
    INDEX_LOAD_ENGINE,
    INDEX_SERIALIZE_ENGINE,
    EngineSpec,
    RunRecord,
    records_to_table,
    run_engines,
    summarize_records,
)

__all__ = [
    "EngineSpec",
    "RunRecord",
    "run_engines",
    "summarize_records",
    "records_to_table",
    "INDEX_BUILD_ENGINE",
    "INDEX_SERIALIZE_ENGINE",
    "INDEX_LOAD_ENGINE",
]
