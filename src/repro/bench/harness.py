"""Shared experiment harness used by every benchmark under ``benchmarks/``.

Each figure of the paper compares a fixed set of algorithms while sweeping one
parameter (number of processors, pattern size, number of negated edges, ratio
threshold, graph size).  The harness factors out the common loop: build the
workload once, run every engine on every query, and collect per-engine rows
(response time, work, answer sizes) that the benchmark then prints with
:func:`repro.utils.tables.render_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.graph.digraph import PropertyGraph
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.tables import render_table
from repro.utils.timing import Timer

__all__ = [
    "EngineSpec",
    "RunRecord",
    "run_engines",
    "summarize_records",
    "records_to_table",
    "INDEX_BUILD_ENGINE",
    "INDEX_SERIALIZE_ENGINE",
    "INDEX_LOAD_ENGINE",
]


@dataclass(frozen=True)
class EngineSpec:
    """A named engine factory: ``build()`` must return an object with ``evaluate_answer``."""

    name: str
    build: Callable[[], object]


@dataclass
class RunRecord:
    """One engine × one query measurement."""

    engine: str
    pattern: str
    elapsed: float
    answer_size: int
    work: int = 0
    extras: Dict[str, float] = field(default_factory=dict)


INDEX_BUILD_ENGINE = "index-build"
INDEX_SERIALIZE_ENGINE = "index-serialize"
INDEX_LOAD_ENGINE = "index-load"


def run_engines(
    engines: Sequence[EngineSpec],
    patterns: Sequence[QuantifiedGraphPattern],
    graph: PropertyGraph,
    prebuild_index: bool = False,
    warmup: bool = True,
) -> List[RunRecord]:
    """Run every engine on every pattern and record time, work and answer size.

    With *prebuild_index*, the compiled
    :class:`repro.index.GraphIndex` snapshot — including the merged
    undirected neighbourhood CSR the partitioner BFS runs on — is built
    **before** the engine loop and its build time is reported as a separate
    phase — a synthetic ``index-build`` record — instead of being silently
    folded into the first indexed engine's first query.  Engines running with
    ``use_index=False`` are unaffected; indexed engines then measure pure
    query time, which is the comparison the figures need.

    With *warmup* (the default) every engine evaluates the first pattern once
    untimed before its measured sweep.  The engines run one after another in
    a single process, so without this the first engine absorbs the process's
    cold allocator/branch-predictor state and one-shot comparisons between
    near-equal engines systematically favour whichever happens to run later.

    The prebuild additionally times the snapshot **wire format**
    (:mod:`repro.index.serialize`) as two more synthetic phases:
    ``index-serialize`` (``to_bytes``, with the byte size in the extras) and
    ``index-load`` (``from_bytes`` bound back to the live graph, with its
    speedup over ``GraphIndex.build`` in the extras) — the cold-start /
    fragment-shipping cost the parallel benchmarks reason about, tracked
    per figure in the archived ``BENCH_*.json`` results.
    """
    records: List[RunRecord] = []
    if prebuild_index:
        from repro.index.serialize import from_bytes, to_bytes
        from repro.index.snapshot import GraphIndex

        with Timer() as build_timer:
            snapshot = GraphIndex.for_graph(graph, rebuild=True)
            neighborhoods = snapshot.neighborhoods()
            snapshot.precompile_rows()
        records.append(
            RunRecord(
                engine=INDEX_BUILD_ENGINE,
                pattern="*",
                elapsed=build_timer.elapsed,
                answer_size=0,
                work=0,
                extras={
                    "indexed_nodes": float(snapshot.num_nodes),
                    "edge_labels": float(len(snapshot.edge_labels)),
                    "neighborhood_build_seconds": neighborhoods.build_seconds,
                },
            )
        )
        with Timer() as serialize_timer:
            snapshot_bytes = to_bytes(snapshot)
        records.append(
            RunRecord(
                engine=INDEX_SERIALIZE_ENGINE,
                pattern="*",
                elapsed=serialize_timer.elapsed,
                answer_size=0,
                work=0,
                extras={"snapshot_bytes": float(len(snapshot_bytes))},
            )
        )
        with Timer() as load_timer:
            from_bytes(snapshot_bytes, graph=graph)
        records.append(
            RunRecord(
                engine=INDEX_LOAD_ENGINE,
                pattern="*",
                elapsed=load_timer.elapsed,
                answer_size=0,
                work=0,
                extras={
                    "build_seconds": snapshot.build_seconds,
                    "load_speedup_vs_build": (
                        snapshot.build_seconds / load_timer.elapsed
                        if load_timer.elapsed > 0.0
                        else 0.0
                    ),
                },
            )
        )
        # The load bound a freshly decoded (row-store-cold) index to the
        # graph; re-attach the fully warmed snapshot so the engine loop below
        # measures pure query time, as documented.
        graph.cache_index(snapshot)
    for spec in engines:
        engine = spec.build()
        if warmup and patterns:
            engine.evaluate(patterns[0], graph)
        for pattern in patterns:
            with Timer() as timer:
                result = engine.evaluate(pattern, graph)
            work = result.counter.total_work() if hasattr(result, "counter") else 0
            extras: Dict[str, float] = {}
            if hasattr(result, "work_speedup"):
                extras["work_speedup"] = result.work_speedup
                extras["work_skew"] = result.work_skew
                extras["makespan_work"] = float(result.makespan_work)
            records.append(
                RunRecord(
                    engine=spec.name,
                    pattern=pattern.name,
                    elapsed=timer.elapsed,
                    answer_size=len(result.answer),
                    work=work,
                    extras=extras,
                )
            )
    return records


def summarize_records(records: Sequence[RunRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate records per engine: total time, total work, total answers."""
    summary: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = summary.setdefault(
            record.engine, {"elapsed": 0.0, "work": 0.0, "answers": 0.0, "queries": 0.0}
        )
        entry["elapsed"] += record.elapsed
        entry["work"] += record.work
        entry["answers"] += record.answer_size
        entry["queries"] += 1
    return summary


def records_to_table(records: Sequence[RunRecord], title: str = "") -> str:
    """Render per-engine aggregates as the ASCII table printed by benchmarks."""
    summary = summarize_records(records)
    rows = [
        [engine, stats["queries"], stats["elapsed"], stats["work"], stats["answers"]]
        for engine, stats in sorted(summary.items())
    ]
    return render_table(
        ["engine", "queries", "total_seconds", "total_work", "total_answers"], rows, title=title
    )
