"""Binary wire format for compiled :class:`~repro.index.GraphIndex` snapshots.

A compiled snapshot is, by construction, a handful of interning tables plus
flat ``array('i')`` buffers (CSR index pointers and columns, degree arrays,
node-label ids) and two lists of signature bitsets.  Shipping that to another
process — or to disk — as the nested-dict :class:`repro.graph.PropertyGraph`
it was compiled from throws the compilation away: the receiver pays full
pickling of dict-of-sets adjacency *and* a fresh ``GraphIndex.build``.  This
module instead encodes the snapshot itself:

* :func:`to_bytes` / :func:`from_bytes` — a versioned, checksummed container
  whose hot payload is raw ``array.tobytes()`` buffers (decoded with
  ``array.frombytes``, i.e. one C-level copy each); interning tables use a
  compact tagged codec (dense int array / JSON scalars / pickle fallback).
* :func:`from_bytes` can *bind* to an already-loaded graph (cold-start path:
  graph JSON + snapshot file side by side) or — with ``graph=None`` —
  **rebuild** the :class:`PropertyGraph` from the CSR buffers, which is how a
  fragment crosses a process boundary exactly once as flat buffers.
* :func:`save_snapshot` / :func:`load_snapshot` — the file variants living
  alongside :mod:`repro.graph.io`'s JSON, so cold starts skip
  ``GraphIndex.build`` entirely.

Wire layout (all integers little-endian)::

    header   = magic "RGIX" | u16 format_version | u16 flags
             | u32 crc32(payload) | u64 len(payload)
    payload  = length-prefixed sections in fixed order:
               graph name, meta struct, 3 interning tables, node_label_ids,
               out CSR (per-label indptr+indices, total_degree), in CSR,
               signatures (out_sig, in_sig), [merged neighborhood CSR],
               [compiled-rows manifest]

``flags`` bit 0 marks the optional merged-neighbourhood section; bit 1 (format
version ≥ 2) marks the **compiled-rows manifest**: the ``(direction,
edge-label)`` keys of the per-label enumeration row stores
(:meth:`~repro.index.snapshot.GraphIndex.compiled_rows`) that the decoder must
materialise **eagerly**.  The stores themselves are pure re-arrangements of
the CSR buffers, so the manifest ships the *work order*, not duplicate data —
workers decode a fragment with its row stores already hot instead of lazily
re-deriving them inside the first enumeration probe.  Version-1 snapshots
(no manifest) remain readable.  Every array
section is int32 regardless of the host's ``array('i')`` width, so snapshots
are portable across platforms; the CRC makes truncation and bit-rot loud
(:class:`~repro.utils.errors.SnapshotError`) instead of silently wrong.

Node *attributes* are deliberately not part of the snapshot — the index never
mirrors them (attribute updates do not bump the graph version).  Callers that
need attrs across the wire ship them next to the snapshot bytes, as
:class:`repro.parallel.worker.FragmentPayload` does.
"""

from __future__ import annotations

import json
import pickle
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from repro.graph.digraph import Label, NodeId, PropertyGraph
from repro.index.csr import LabeledCSR
from repro.index.interning import Interner
from repro.index.neighborhoods import NeighborhoodCSR
from repro.index.signatures import NeighborhoodSignatures
from repro.index.snapshot import GraphIndex
from repro.utils.errors import SnapshotError

__all__ = [
    "FORMAT_VERSION",
    "to_bytes",
    "from_bytes",
    "save_snapshot",
    "load_snapshot",
    "snapshot_checksum",
]

PathLike = Union[str, Path]

MAGIC = b"RGIX"
FORMAT_VERSION = 2
# Older formats this build still decodes (1 = pre-compiled-rows-manifest).
SUPPORTED_VERSIONS = (1, FORMAT_VERSION)

_HEADER = struct.Struct("<4sHHIQ")
_LENGTH = struct.Struct("<Q")
_META = struct.Struct("<qqqq")  # graph version, |V|, |node labels|, |edge labels|
_U32 = struct.Struct("<I")

_FLAG_NEIGHBORHOODS = 1
_FLAG_COMPILED_ROWS = 2

# Tags of the interning-table codec (one byte before the body).
_TAG_INT = b"I"  # every value is an int: one raw array('q') buffer
_TAG_JSON = b"J"  # JSON-safe scalars (str/int/float/bool): utf-8 JSON list
_TAG_PICKLE = b"P"  # anything else hashable: stdlib pickle fallback

_INT32 = array("i")
_NATIVE_INT32 = _INT32.itemsize == 4 and sys.byteorder == "little"


# ----------------------------------------------------------------- primitives


def _array_to_wire(values: array) -> bytes:
    """Encode an ``array('i')`` as little-endian int32 bytes (zero-copy when
    the host layout already matches, which it does everywhere we run)."""
    if _NATIVE_INT32:
        return values.tobytes()
    return struct.pack(f"<{len(values)}i", *values)


def _array_from_wire(data: bytes) -> array:
    """Decode little-endian int32 bytes back into a native ``array('i')``."""
    if len(data) % 4:
        raise SnapshotError(f"array section length {len(data)} is not a multiple of 4")
    if _NATIVE_INT32:
        decoded = array("i")
        decoded.frombytes(data)
        return decoded
    return array("i", struct.unpack(f"<{len(data) // 4}i", data))


def _encode_interner(interner: Interner) -> bytes:
    """Tagged encoding of one interning table (ordered by dense id)."""
    values = interner.values()
    if all(type(value) is int for value in values):
        try:
            if sys.byteorder == "little":
                return _TAG_INT + array("q", values).tobytes()
            return _TAG_INT + struct.pack(f"<{len(values)}q", *values)
        except OverflowError:
            pass  # an id beyond int64 — fall through to the JSON encoding
    if all(type(value) in (str, int, float, bool) for value in values):
        return _TAG_JSON + json.dumps(values, ensure_ascii=False).encode("utf-8")
    return _TAG_PICKLE + pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_interner(data: bytes) -> Interner:
    if not data:
        raise SnapshotError("empty interning-table section")
    tag, body = data[:1], data[1:]
    if tag == _TAG_INT:
        if len(body) % 8:
            raise SnapshotError("interning-table int section has a partial value")
        if sys.byteorder == "little":
            values = array("q")
            values.frombytes(body)
            return Interner(values)
        return Interner(struct.unpack(f"<{len(body) // 8}q", body))
    if tag == _TAG_JSON:
        return Interner(json.loads(body.decode("utf-8")))
    if tag == _TAG_PICKLE:
        return Interner(pickle.loads(body))
    raise SnapshotError(f"unknown interning-table tag {tag!r}")


def _encode_bigints(values: Sequence[int]) -> bytes:
    """Length-prefixed little-endian encoding of arbitrary-precision bitsets."""
    chunks: List[bytes] = [_LENGTH.pack(len(values))]
    for value in values:
        encoded = value.to_bytes((value.bit_length() + 7) // 8, "little")
        chunks.append(_U32.pack(len(encoded)))
        chunks.append(encoded)
    return b"".join(chunks)


def _decode_bigints(data: bytes) -> List[int]:
    (count,) = _LENGTH.unpack_from(data, 0)
    offset = _LENGTH.size
    values: List[int] = []
    for _ in range(count):
        if offset + _U32.size > len(data):
            raise SnapshotError("signature section is truncated")
        (length,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        if offset + length > len(data):
            raise SnapshotError("signature section is truncated")
        values.append(int.from_bytes(data[offset:offset + length], "little"))
        offset += length
    return values


def _append_section(chunks: List[bytes], data: bytes) -> None:
    chunks.append(_LENGTH.pack(len(data)))
    chunks.append(data)


class _Reader:
    """Sequential reader over the length-prefixed payload sections."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def section(self) -> bytes:
        data, offset = self.data, self.offset
        if offset + _LENGTH.size > len(data):
            raise SnapshotError("snapshot payload is truncated (missing section header)")
        (length,) = _LENGTH.unpack_from(data, offset)
        offset += _LENGTH.size
        if offset + length > len(data):
            raise SnapshotError("snapshot payload is truncated (section body cut short)")
        self.offset = offset + length
        return data[offset:offset + length]


# ------------------------------------------------------------------ to_bytes


def _encode_labeled_csr(chunks: List[bytes], csr: LabeledCSR) -> None:
    for label_id in range(csr.num_labels):
        _append_section(chunks, _array_to_wire(csr.indptr[label_id]))
        _append_section(chunks, _array_to_wire(csr.indices[label_id]))
    _append_section(chunks, _array_to_wire(csr.total_degree))


def to_bytes(
    index: GraphIndex,
    include_neighborhoods: Optional[bool] = None,
    include_compiled_rows: Optional[bool] = None,
) -> bytes:
    """Serialise *index* to the versioned binary wire format.

    ``include_neighborhoods`` controls the optional merged undirected CSR
    section: ``None`` (default) includes it exactly when the snapshot has
    already materialised it, so serialising never triggers the merge build
    but never drops work that was paid for either.

    ``include_compiled_rows`` controls the compiled-rows manifest (format
    version 2): ``None`` (default) records exactly the row stores the
    snapshot has already materialised, ``True`` records every ``(direction,
    edge label)`` pair — the fragment-shipping path uses this so pool workers
    decode enumeration-hot snapshots — and ``False`` records none.  The
    manifest never copies row data; the decoder rebuilds the named stores
    eagerly from the CSR buffers it just read.

    Raises :class:`~repro.utils.errors.StaleIndexError` when the snapshot no
    longer matches its source graph — freezing known-outdated arrays to disk
    would defeat the staleness counter.
    """
    index.ensure_fresh()
    if include_neighborhoods is None:
        include_neighborhoods = index._neighborhoods is not None
    if include_compiled_rows is None:
        row_keys: Tuple[Tuple[bool, int], ...] = index.compiled_row_keys()
    elif include_compiled_rows:
        row_keys = tuple(
            (incoming, label_id)
            for incoming in (False, True)
            for label_id in range(len(index.edge_labels))
        )
    else:
        row_keys = ()

    chunks: List[bytes] = []
    _append_section(chunks, index.graph.name.encode("utf-8"))
    _append_section(
        chunks,
        _META.pack(
            index.version,
            index.num_nodes,
            len(index.node_labels),
            len(index.edge_labels),
        ),
    )
    _append_section(chunks, _encode_interner(index.nodes))
    _append_section(chunks, _encode_interner(index.node_labels))
    _append_section(chunks, _encode_interner(index.edge_labels))
    _append_section(chunks, _array_to_wire(index.node_label_ids))
    _encode_labeled_csr(chunks, index.out)
    _encode_labeled_csr(chunks, index.inc)
    _append_section(chunks, _encode_bigints(index.signatures.out_sig))
    _append_section(chunks, _encode_bigints(index.signatures.in_sig))

    flags = 0
    if include_neighborhoods:
        flags |= _FLAG_NEIGHBORHOODS
        merged = index.neighborhoods()
        _append_section(chunks, _array_to_wire(merged.indptr))
        _append_section(chunks, _array_to_wire(merged.indices))
    if row_keys:
        flags |= _FLAG_COMPILED_ROWS
        manifest = array("i")
        for incoming, label_id in sorted(row_keys):
            manifest.append(1 if incoming else 0)
            manifest.append(label_id)
        _append_section(chunks, _array_to_wire(manifest))

    payload = b"".join(chunks)
    # Stamp the *minimal* version the payload needs: a manifest-free snapshot
    # is byte-wise a pure version-1 payload, and stamping it 1 keeps it
    # readable by pre-manifest deployments (rollbacks, mixed fleets).
    format_version = FORMAT_VERSION if flags & _FLAG_COMPILED_ROWS else 1
    header = _HEADER.pack(MAGIC, format_version, flags, zlib.crc32(payload), len(payload))
    return header + payload


def snapshot_checksum(data: bytes) -> int:
    """The CRC-32 stored in a snapshot's header (without re-hashing the payload).

    Cheap content fingerprint used by worker-side snapshot caches to key
    fragments across processes.
    """
    if len(data) < _HEADER.size or data[:4] != MAGIC:
        raise SnapshotError("not a GraphIndex snapshot (bad magic)")
    return _HEADER.unpack_from(data, 0)[3]


# ---------------------------------------------------------------- from_bytes


def _decode_labeled_csr(reader: _Reader, num_nodes: int, num_labels: int) -> LabeledCSR:
    indptr: List[array] = []
    indices: List[array] = []
    for _ in range(num_labels):
        ptr = _array_from_wire(reader.section())
        if len(ptr) != num_nodes + 1:
            raise SnapshotError(
                f"CSR indptr block has {len(ptr)} entries, expected {num_nodes + 1}"
            )
        block = _array_from_wire(reader.section())
        if len(ptr) and len(block) != ptr[-1]:
            raise SnapshotError("CSR indices block does not match its index pointers")
        indptr.append(ptr)
        indices.append(block)
    total_degree = _array_from_wire(reader.section())
    if len(total_degree) != num_nodes:
        raise SnapshotError("CSR degree array does not match the node count")
    return LabeledCSR(num_nodes, indptr, indices, total_degree)


def _rebuild_graph(
    name: str,
    nodes: Interner,
    node_labels: Interner,
    edge_labels: Interner,
    node_label_ids: array,
    out: LabeledCSR,
    inc: LabeledCSR,
    version: int,
) -> PropertyGraph:
    """Reconstruct the source :class:`PropertyGraph` from decoded CSR buffers.

    The adjacency dicts are assembled directly and handed to
    :meth:`PropertyGraph.from_compiled_parts`, so the rebuild never walks the
    mutation path (no per-edge version bumps, no label-index churn) and the
    resulting graph carries the serialised version stamp — which is exactly
    what keeps the decoded snapshot *fresh* for it.
    """
    decode_node = nodes.decode
    decode_edge_label = edge_labels.decode
    labels: Dict[NodeId, Label] = {
        decode_node(node_id): node_labels.value_of(label_id)
        for node_id, label_id in enumerate(node_label_ids)
    }
    edge_count = 0

    def adjacency(csr: LabeledCSR) -> Dict[NodeId, Dict[Label, Set[NodeId]]]:
        mapping: Dict[NodeId, Dict[Label, Set[NodeId]]] = {
            decode_node(node_id): {} for node_id in range(csr.num_nodes)
        }
        for label_id in range(csr.num_labels):
            label = decode_edge_label(label_id)
            ptr = csr.indptr[label_id]
            block = csr.indices[label_id]
            start = ptr[0] if len(ptr) else 0
            for node_id in range(csr.num_nodes):
                end = ptr[node_id + 1]
                if end > start:
                    mapping[decode_node(node_id)][label] = set(
                        map(decode_node, block[start:end])
                    )
                start = end
        return mapping

    out_adjacency = adjacency(out)
    edge_count = sum(len(block) for block in out.indices)
    return PropertyGraph.from_compiled_parts(
        name=name,
        labels=labels,
        out=out_adjacency,
        in_=adjacency(inc),
        edge_count=edge_count,
        version=version,
    )


def _verify_binding(
    graph: PropertyGraph,
    nodes: Interner,
    node_labels: Interner,
    node_label_ids: array,
    edge_count: int,
    strict: bool,
) -> None:
    """Cheap (or, with *strict*, exhaustive) check that *graph* is the graph
    the snapshot describes before rebinding the version stamp to it."""
    if graph.num_nodes != len(nodes) or graph.num_edges != edge_count:
        raise SnapshotError(
            f"snapshot describes {len(nodes)} nodes / {edge_count} edges but the "
            f"graph to bind has {graph.num_nodes} / {graph.num_edges}"
        )
    if strict:
        for node_id, label_id in enumerate(node_label_ids):
            node = nodes.value_of(node_id)
            if not graph.has_node(node) or graph.node_label(node) != node_labels.value_of(label_id):
                raise SnapshotError(f"snapshot node {node!r} does not match the bound graph")


def from_bytes(
    data: bytes,
    graph: Optional[PropertyGraph] = None,
    strict: bool = False,
) -> GraphIndex:
    """Decode a snapshot produced by :func:`to_bytes`.

    With ``graph=None`` the source :class:`PropertyGraph` is rebuilt from the
    CSR buffers (structure only — attributes never enter the snapshot) and the
    returned index is attached to it via :meth:`PropertyGraph.cache_index`, so
    ``GraphIndex.for_graph`` on the rebuilt graph is a cache hit, not a
    recompile.

    With a *graph*, the decoded index is **bound** to it: after a sanity check
    (node and edge counts; per-node labels too when *strict*) the index adopts
    the live graph's version counter, because a reloaded graph's mutation
    counter never matches the counter of the original it was saved from.  The
    bound index is cached on the graph as well.
    """
    if len(data) < _HEADER.size:
        raise SnapshotError(f"snapshot too short ({len(data)} bytes)")
    magic, format_version, flags, crc, payload_length = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SnapshotError("not a GraphIndex snapshot (bad magic)")
    if format_version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"unsupported snapshot format version {format_version} "
            f"(this build reads versions {SUPPORTED_VERSIONS})"
        )
    payload = data[_HEADER.size:]
    if len(payload) != payload_length:
        raise SnapshotError(
            f"snapshot payload is {len(payload)} bytes, header promises {payload_length}"
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotError("snapshot checksum mismatch (corrupt or truncated payload)")

    # A CRC-valid container can still carry malformed sections (a crafted
    # file, or a writer bug); parse failures must surface as SnapshotError —
    # the documented contract — not as raw struct/pickle/unicode errors.
    try:
        reader = _Reader(payload)
        name = reader.section().decode("utf-8")
        version, num_nodes, num_node_labels, num_edge_labels = _META.unpack(reader.section())
        nodes = _decode_interner(reader.section())
        node_labels = _decode_interner(reader.section())
        edge_labels = _decode_interner(reader.section())
        if (
            len(nodes) != num_nodes
            or len(node_labels) != num_node_labels
            or len(edge_labels) != num_edge_labels
        ):
            raise SnapshotError("interning tables do not match the snapshot meta counts")
        node_label_ids = _array_from_wire(reader.section())
        if len(node_label_ids) != num_nodes:
            raise SnapshotError("node-label array does not match the node count")
        out = _decode_labeled_csr(reader, num_nodes, num_edge_labels)
        inc = _decode_labeled_csr(reader, num_nodes, num_edge_labels)
        signatures = NeighborhoodSignatures(
            max(num_node_labels, 1),
            _decode_bigints(reader.section()),
            _decode_bigints(reader.section()),
        )
        if len(signatures.out_sig) != num_nodes or len(signatures.in_sig) != num_nodes:
            raise SnapshotError("signature arrays do not match the node count")
        neighborhoods: Optional[NeighborhoodCSR] = None
        if flags & _FLAG_NEIGHBORHOODS:
            merged_indptr = _array_from_wire(reader.section())
            merged_indices = _array_from_wire(reader.section())
            if len(merged_indptr) != num_nodes + 1:
                raise SnapshotError("merged neighbourhood indptr does not match the node count")
            neighborhoods = NeighborhoodCSR(num_nodes, merged_indptr, merged_indices)
        row_keys: List[Tuple[bool, int]] = []
        if flags & _FLAG_COMPILED_ROWS:
            manifest = _array_from_wire(reader.section())
            if len(manifest) % 2:
                raise SnapshotError("compiled-rows manifest has a dangling entry")
            for position in range(0, len(manifest), 2):
                direction, label_id = manifest[position], manifest[position + 1]
                if direction not in (0, 1) or not 0 <= label_id < num_edge_labels:
                    raise SnapshotError(
                        f"compiled-rows manifest names an invalid row store "
                        f"(direction={direction}, edge label id={label_id})"
                    )
                row_keys.append((bool(direction), label_id))
    except SnapshotError:
        raise
    except (struct.error, ValueError, pickle.UnpicklingError, EOFError, MemoryError) as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc}") from exc

    edge_count = sum(len(block) for block in out.indices)
    if graph is None:
        graph = _rebuild_graph(
            name, nodes, node_labels, edge_labels, node_label_ids, out, inc, version
        )
    else:
        _verify_binding(graph, nodes, node_labels, node_label_ids, edge_count, strict)
        version = graph.version

    label_members: List[array] = [array("i") for _ in range(num_node_labels)]
    for node_id, label_id in enumerate(node_label_ids):
        label_members[label_id].append(node_id)

    index = GraphIndex(
        graph=graph,
        version=version,
        nodes=nodes,
        node_labels=node_labels,
        edge_labels=edge_labels,
        node_label_ids=node_label_ids,
        out=out,
        inc=inc,
        signatures=signatures,
        label_members=label_members,
    )
    if neighborhoods is not None:
        index._neighborhoods = neighborhoods
    for incoming, label_id in row_keys:
        # Eager materialisation ordered by the manifest: the decode pays the
        # (cheap, CSR-local) row-store build once, so the first enumeration
        # probing this snapshot finds every named store already hot.
        index.compiled_rows(incoming, label_id)
    graph.cache_index(index)
    return index


# --------------------------------------------------------------------- files


def save_snapshot(index: GraphIndex, path: PathLike) -> int:
    """Write *index* to *path* in the binary wire format; returns the byte size.

    The natural companion of :func:`repro.graph.io.write_json`: store the
    graph and its compiled snapshot side by side and the next process skips
    ``GraphIndex.build`` entirely.
    """
    data = to_bytes(index)
    Path(path).write_bytes(data)
    return len(data)


def load_snapshot(
    path: PathLike,
    graph: Optional[PropertyGraph] = None,
    strict: bool = False,
) -> GraphIndex:
    """Load a snapshot written by :func:`save_snapshot` (see :func:`from_bytes`)."""
    return from_bytes(Path(path).read_bytes(), graph=graph, strict=strict)
