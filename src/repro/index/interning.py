"""Interning of node ids and labels to dense integers.

Every structure in :mod:`repro.index` works on dense integer ids: node ids
become positions into degree arrays and CSR index pointers, and labels become
indices into per-label CSR blocks and bit positions in neighbourhood
signatures.  :class:`Interner` is the single place that mapping lives; a
:class:`~repro.index.snapshot.GraphIndex` carries three of them (nodes, node
labels, edge labels) and every query converts at the boundary, so the hot
loops only ever touch ``int``s.

Interners are append-only: once a value has been assigned an id, the id never
changes.  The snapshot layer never mutates an interner after the build, which
is what makes an index safely shareable across threads.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

__all__ = ["Interner"]

MISSING = -1


class Interner:
    """A bijective mapping ``value <-> dense int id`` (ids start at 0).

    Example
    -------
    >>> interner = Interner(["follow", "recom"])
    >>> interner.intern("follow")
    0
    >>> interner.intern("bad_rating")
    2
    >>> interner.value_of(2)
    'bad_rating'
    >>> interner.get("missing")
    -1
    """

    __slots__ = ("_ids", "_values")

    def __init__(self, values: Optional[Iterable[Hashable]] = None) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._values: List[Hashable] = []
        if values is not None:
            for value in values:
                self.intern(value)

    def intern(self, value: Hashable) -> int:
        """The id of *value*, allocating the next dense id on first sight."""
        existing = self._ids.get(value, MISSING)
        if existing != MISSING:
            return existing
        new_id = len(self._values)
        self._ids[value] = new_id
        self._values.append(value)
        return new_id

    def get(self, value: Hashable, default: int = MISSING) -> int:
        """The id of *value*, or *default* (-1) when it was never interned."""
        return self._ids.get(value, default)

    def id_of(self, value: Hashable) -> int:
        """The id of *value*; raises :class:`KeyError` when absent."""
        return self._ids[value]

    def value_of(self, index: int) -> Hashable:
        """The original value for a dense id."""
        return self._values[index]

    @property
    def encode(self):
        """C-level ``value -> id`` lookup (``dict.get``) for hot loops.

        Unlike :meth:`get` it returns ``None`` — not -1 — for unknown values;
        callers on hot paths bind this once and test ``is None``.
        """
        return self._ids.get

    @property
    def decode(self):
        """C-level ``id -> value`` lookup (``list.__getitem__``) for hot loops.

        Combined with ``map`` the whole decode of an id batch stays in C:
        ``set(map(interner.decode, ids))``.
        """
        return self._values.__getitem__

    def values(self) -> List[Hashable]:
        """All interned values, ordered by id (a fresh list)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"Interner(size={len(self._values)})"
