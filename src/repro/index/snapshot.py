"""The :class:`GraphIndex` facade: one immutable, compiled snapshot per graph.

``GraphIndex.build(graph)`` compiles a :class:`~repro.graph.PropertyGraph`
into the read-optimised representation the matching layer hammers on:

* interned node ids and node/edge labels (:mod:`repro.index.interning`),
* per-edge-label CSR adjacency in both directions plus degree arrays
  (:mod:`repro.index.csr`),
* per-node neighbourhood label signatures (:mod:`repro.index.signatures`),
* a per-node-label membership array (the compiled label index).

Invariants
----------
* **Immutability** — a snapshot is never mutated after :meth:`GraphIndex.build`
  returns; consumers may share it freely across threads.
* **Staleness detection** — the snapshot remembers the graph's mutation
  counter (:attr:`PropertyGraph.version`).  :meth:`is_stale` compares it to the
  live graph, and :meth:`ensure_fresh` raises :class:`StaleIndexError`
  instead of silently answering from outdated arrays.  Incremental callers
  (e.g. :mod:`repro.matching.incremental`) use this to decide cheaply between
  reusing, rebuilding, or refusing.
* **Caching** — :meth:`for_graph` memoises one snapshot per graph instance
  (on the graph itself) and transparently rebuilds when the graph has mutated,
  so repeated queries on a quiescent graph pay the build cost once.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.index.csr import LabeledCSR, build_csr_pair
from repro.index.interning import Interner
from repro.index.neighborhoods import NeighborhoodCSR, merge_undirected
from repro.index.signatures import NeighborhoodSignatures, build_signatures
from repro.obs.metrics import CORE, get_registry
from repro.obs.trace import span
from repro.utils.errors import StaleIndexError
from repro.utils.timing import Timer

__all__ = ["GraphIndex", "build_call_count"]

NodeId = Hashable


def build_call_count() -> int:
    """How many times ``GraphIndex.build`` has run in this process.

    The parallel layer's contract is that fragments ship as serialised
    snapshots (:mod:`repro.index.serialize`) and are decoded — never
    recompiled — inside pool workers; the regression tests read this counter
    on both sides of the process boundary to pin that down.  The count is the
    always-on :data:`repro.obs.metrics.CORE` core counter (reset per test by
    the observability isolation fixture), mirrored into the optional metrics
    registry as ``index.build`` when one is enabled.
    """
    return CORE.index_builds

# (out_mask, in_mask) signature requirements of one pattern node; ``None``
# marks a pattern node that cannot match at all (required label absent).
MaskPair = Optional[Tuple[int, int]]


class GraphIndex:
    """An immutable compiled snapshot of a :class:`PropertyGraph`."""

    __slots__ = (
        "graph",
        "version",
        "nodes",
        "node_labels",
        "edge_labels",
        "node_label_ids",
        "out",
        "inc",
        "signatures",
        "build_seconds",
        "_label_members",
        "_neighborhoods",
        "_compiled_rows",
        "_str_ranks",
        "_str_rank_array",
        "_label_frozensets",
    )

    def __init__(
        self,
        graph: PropertyGraph,
        version: int,
        nodes: Interner,
        node_labels: Interner,
        edge_labels: Interner,
        node_label_ids: array,
        out: LabeledCSR,
        inc: LabeledCSR,
        signatures: NeighborhoodSignatures,
        label_members: List[array],
        build_seconds: float = 0.0,
    ) -> None:
        self.graph = graph
        self.version = version
        self.nodes = nodes
        self.node_labels = node_labels
        self.edge_labels = edge_labels
        self.node_label_ids = node_label_ids
        self.out = out
        self.inc = inc
        self.signatures = signatures
        self._label_members = label_members
        self.build_seconds = build_seconds
        # Merged undirected adjacency, materialised on first use: only the
        # partitioner needs it, so queries that never touch DPar skip the cost.
        self._neighborhoods: Optional[NeighborhoodCSR] = None
        # Per (incoming, edge label) compiled row stores, materialised on
        # first use by the enumeration (see :meth:`compiled_rows`).
        self._compiled_rows: Dict[Tuple[bool, int], Dict[NodeId, frozenset]] = {}
        # node -> dense ``str``-order rank, materialised on first use by the
        # plan-driven enumeration (see :meth:`str_ranks`).
        self._str_ranks: Optional[Dict[NodeId, int]] = None
        # (dense id -> str rank as array('i'), injective flag), materialised
        # on first use by the vectorized enumeration (see :meth:`str_rank_array`).
        self._str_rank_array: Optional[Tuple[array, bool]] = None
        # label id -> frozenset of original member ids, materialised on first
        # use by the vectorized pool verification (see :meth:`members_frozenset`).
        self._label_frozensets: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------ build

    @classmethod
    def build(cls, graph: PropertyGraph) -> "GraphIndex":
        """Compile *graph* into a fresh snapshot (one pass over nodes + edges)."""
        CORE.index_builds += 1
        with span("index.build", graph=graph.name, nodes=graph.num_nodes), Timer() as timer:
            version = graph.version
            nodes = Interner()
            node_labels = Interner()
            label_ids: List[int] = []
            for node in graph.nodes():
                nodes.intern(node)
                label_ids.append(node_labels.intern(graph.node_label(node)))
            node_label_ids = array("i", label_ids)

            # Sorted interning order: the compiled label ids depend only on the
            # label *set*, never on edge insertion/iteration order, so two
            # builds of structurally equal graphs are byte-identical and the
            # incremental refresh (repro.delta) can extend the interner
            # in-place for new labels instead of rescanning the edge list.
            edge_list = list(graph.edges())
            edge_labels = Interner(sorted({label for _, _, label in edge_list}))
            node_id = nodes.id_of
            edge_label_id = edge_labels.id_of
            interned_edges: List[Tuple[int, int, int]] = [
                (node_id(source), node_id(target), edge_label_id(label))
                for source, target, label in edge_list
            ]

            out, inc = build_csr_pair(len(nodes), len(edge_labels), interned_edges)
            signatures = build_signatures(
                len(nodes), max(len(node_labels), 1), node_label_ids, interned_edges
            )

            label_members: List[array] = [array("i") for _ in range(len(node_labels))]
            for node_index, label_id in enumerate(node_label_ids):
                label_members[label_id].append(node_index)

        snapshot = cls(
            graph=graph,
            version=version,
            nodes=nodes,
            node_labels=node_labels,
            edge_labels=edge_labels,
            node_label_ids=node_label_ids,
            out=out,
            inc=inc,
            signatures=signatures,
            label_members=label_members,
            build_seconds=timer.elapsed,
        )
        registry = get_registry()
        if registry:
            registry.counter("index.build").inc()
            registry.histogram("index.build_seconds").observe(timer.elapsed)
            registry.gauge("index.nodes").set(len(nodes))
        return snapshot

    @classmethod
    def for_graph(cls, graph: PropertyGraph, rebuild: bool = False) -> "GraphIndex":
        """The cached snapshot of *graph*, rebuilt if stale (or *rebuild* is set)."""
        cached = graph.cached_index()
        if cached is not None and not rebuild and not cached.is_stale():
            return cached
        snapshot = cls.build(graph)
        graph.cache_index(snapshot)
        return snapshot

    def refreshed(self, delta, max_touched_fraction: Optional[float] = None) -> "GraphIndex":
        """A fresh snapshot after *delta* was applied to the source graph.

        Incremental maintenance: touched CSR rows are patched, signatures and
        derived structures recomputed only for affected nodes, unchanged
        buffers shared — falling back to a full :meth:`build` whenever the
        patch could not be wire-byte-identical to one (see
        :mod:`repro.delta.refresh` for the exact conditions).  The result is
        cached on the graph, so a subsequent :meth:`for_graph` is a hit.
        """
        from repro.delta.refresh import DEFAULT_MAX_TOUCHED_FRACTION, refreshed_index

        if max_touched_fraction is None:
            max_touched_fraction = DEFAULT_MAX_TOUCHED_FRACTION
        return refreshed_index(self, delta, max_touched_fraction=max_touched_fraction)

    # -------------------------------------------------------------- freshness

    def is_stale(self) -> bool:
        """Whether the source graph has mutated since this snapshot was built."""
        return self.graph.version != self.version

    def ensure_fresh(self) -> None:
        """Raise :class:`StaleIndexError` when the snapshot no longer matches."""
        if self.is_stale():
            raise StaleIndexError(
                f"graph {self.graph.name!r} mutated (version {self.graph.version} "
                f"!= snapshot {self.version}); rebuild with GraphIndex.for_graph"
            )

    # ------------------------------------------------------------ id mapping

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node_id(self, node: NodeId) -> int:
        """Dense id of *node* (-1 when the node is not in the snapshot)."""
        return self.nodes.get(node)

    def node_of(self, node_id: int) -> NodeId:
        return self.nodes.value_of(node_id)

    def node_label_id(self, label: str) -> int:
        return self.node_labels.get(label)

    def edge_label_id(self, label: str) -> int:
        return self.edge_labels.get(label)

    def to_nodes(self, node_ids: Iterable[int]) -> Set[NodeId]:
        """Convert dense ids back to original node ids (a fresh set)."""
        return set(map(self.nodes.decode, node_ids))

    # ------------------------------------------------------------ label index

    def members_ids(self, node_label_id: int) -> array:
        """Dense ids of the nodes carrying the given node label (shared array)."""
        if 0 <= node_label_id < len(self._label_members):
            return self._label_members[node_label_id]
        return array("i")

    def nodes_with_label(self, label: str) -> Set[NodeId]:
        """Original ids of nodes carrying *label* (mirrors the graph API)."""
        return self.to_nodes(self.members_ids(self.node_labels.get(label)))

    def members_frozenset(self, node_label_id: int) -> frozenset:
        """Original member ids of a node label as a shared frozenset.

        Materialised once per label per snapshot and reused by the vectorized
        pool verification (:mod:`repro.plan.vectorized`): candidate pools are
        checked ghost-free and label-pure with one C-level subset test
        against this set instead of a per-element encode loop.
        """
        cached = self._label_frozensets.get(node_label_id)
        if cached is None:
            decode = self.nodes.decode
            cached = frozenset(map(decode, self.members_ids(node_label_id)))
            self._label_frozensets[node_label_id] = cached
        return cached

    def label_count(self, node_label_id: int) -> int:
        if 0 <= node_label_id < len(self._label_members):
            return len(self._label_members[node_label_id])
        return 0

    # -------------------------------------------------------------- adjacency

    def out_degree_ids(self, node_id: int, edge_label_id: int = -1) -> int:
        """Out-degree of a dense node id (per label, or total when -1)."""
        if edge_label_id < 0:
            return self.out.total_degree[node_id]
        return self.out.degree(edge_label_id, node_id)

    def in_degree_ids(self, node_id: int, edge_label_id: int = -1) -> int:
        if edge_label_id < 0:
            return self.inc.total_degree[node_id]
        return self.inc.degree(edge_label_id, node_id)

    def count_out_with_label(
        self, node_id: int, edge_label_id: int, target_label_id: int
    ) -> int:
        """``|{w : node -[e]-> w and L(w) = t}|`` — the ``U(v, e)`` upper bound."""
        if edge_label_id < 0 or target_label_id < 0:
            return 0
        indices, start, end = self.out.row(edge_label_id, node_id)
        labels = self.node_label_ids
        count = 0
        for position in range(start, end):
            if labels[indices[position]] == target_label_id:
                count += 1
        return count

    def successors(self, node: NodeId, label: str) -> Set[NodeId]:
        """Original-id successors via *label* (parity API with the graph)."""
        node_index = self.nodes.get(node)
        edge_label = self.edge_labels.get(label)
        if node_index < 0 or edge_label < 0:
            return set()
        indices, start, end = self.out.row(edge_label, node_index)
        value_of = self.nodes.value_of
        return {value_of(indices[position]) for position in range(start, end)}

    def predecessors(self, node: NodeId, label: str) -> Set[NodeId]:
        node_index = self.nodes.get(node)
        edge_label = self.edge_labels.get(label)
        if node_index < 0 or edge_label < 0:
            return set()
        indices, start, end = self.inc.row(edge_label, node_index)
        value_of = self.nodes.value_of
        return {value_of(indices[position]) for position in range(start, end)}

    def compiled_rows(self, incoming: bool, edge_label_id: int) -> Dict[NodeId, frozenset]:
        """The enumeration-ready row store of one direction × label.

        Maps every original node id with a non-empty row to its neighbour
        set as a ``frozenset`` of original ids.  A dynamic candidate pool is
        then a single C-level ``&`` against a shared immutable set — no
        adjacency copy per probe (the very cost this index exists to remove),
        and CPython iterates the smaller operand automatically, so hub rows
        cost ``O(min(|row|, |candidates|))`` instead of the ``O(|row|)`` the
        dict fallback pays to copy them.

        Built lazily per label on first use and memoised (the build is
        idempotent, so the snapshot stays safely shareable).  This is a
        deliberate space-for-time trade: each materialised store costs about
        one pointer per stored edge of that label/direction on top of the CSR
        arrays — a mutation-immune snapshot cannot alias the graph's live
        adjacency sets — and only the labels a query's pattern edges actually
        name are ever built (:meth:`precompile_rows` materialises all of them
        and is only called from the benchmark harness).
        """
        key = (incoming, edge_label_id)
        cached = self._compiled_rows.get(key)
        if cached is None:
            csr = self.inc if incoming else self.out
            columns = csr.indices[edge_label_id]
            decode = self.nodes.decode
            boxed = tuple(map(decode, columns))
            ptr = csr.indptr[edge_label_id]
            cached = {}
            start = ptr[0] if len(ptr) else 0
            for node_id in range(self.num_nodes):
                end = ptr[node_id + 1]
                if end > start:
                    cached[decode(node_id)] = frozenset(boxed[start:end])
                start = end
            self._compiled_rows[key] = cached
        return cached

    def precompile_rows(self) -> None:
        """Materialise every per-label row store up front.

        The stores build lazily on first enumeration; benchmarks call this
        during their index-build phase so the one-off compilation cost is
        reported there instead of inside the first indexed query.
        """
        for edge_label_id in range(len(self.edge_labels)):
            self.compiled_rows(False, edge_label_id)
            self.compiled_rows(True, edge_label_id)

    def compiled_row_keys(self) -> Tuple[Tuple[bool, int], ...]:
        """The ``(incoming, edge label id)`` keys materialised so far (sorted).

        The snapshot wire format records these as its compiled-rows manifest
        so a decoded snapshot can rebuild exactly the stores the source had
        already paid for (see :mod:`repro.index.serialize`).
        """
        return tuple(sorted(self._compiled_rows))

    def str_ranks(self) -> Dict[NodeId, int]:
        """``node -> dense rank`` in ``str``-sort order (built once, cached).

        The enumeration's deterministic tie-break sorts candidate pools with
        ``key=str``, which stringifies every pool member on every probe.  A
        compiled plan replaces that with an integer rank lookup from this
        map.  Nodes whose ``str`` forms are *equal* share a rank, so a stable
        sort on the rank leaves them in pool order — exactly where
        ``sorted(pool, key=str)`` leaves them — keeping plan-driven and
        interpreted enumeration byte-identical.  The lazy build is idempotent
        (same immutable-content map either way), preserving the snapshot's
        share-freely contract.
        """
        ranks = self._str_ranks
        if ranks is None:
            value_of = self.nodes.value_of
            texts = [str(value_of(index)) for index in range(self.num_nodes)]
            ranks = {}
            rank = -1
            previous = None
            for index in sorted(range(self.num_nodes), key=texts.__getitem__):
                text = texts[index]
                if text != previous:
                    rank += 1
                    previous = text
                ranks[value_of(index)] = rank
            self._str_ranks = ranks
        return ranks

    def str_rank_array(self) -> Tuple[array, bool]:
        """``(dense id -> str rank as array('i'), injective flag)``, cached.

        The vectorized enumeration keeps candidates as dense interned ids, so
        its rank lookups index an ``array('i')`` instead of hashing node ids
        into the :meth:`str_ranks` map.  The flag reports whether the ranks
        are *injective* (no two distinct nodes share a ``str`` form): only
        then is rank-sorting dense pools guaranteed to reproduce the
        frozenset path's emission order, so the vectorized path refuses to
        build when it is ``False``.  Ranks are dense (``0..k``), hence the
        flag is exactly ``max rank + 1 == num_nodes``.  The lazy build is
        idempotent, preserving the snapshot's share-freely contract.
        """
        cached = self._str_rank_array
        if cached is None:
            ranks = self.str_ranks()
            value_of = self.nodes.value_of
            srank = array("i", bytes(self.num_nodes * array("i").itemsize))
            top = -1
            for index in range(self.num_nodes):
                rank = ranks[value_of(index)]
                srank[index] = rank
                if rank > top:
                    top = rank
            cached = (srank, top + 1 == self.num_nodes)
            self._str_rank_array = cached
        return cached

    # ---------------------------------------------------- d-hop neighbourhoods

    def neighborhoods(self) -> NeighborhoodCSR:
        """The merged undirected adjacency view (built once, then cached).

        The lazy build is idempotent — two racing threads at worst both build
        the same immutable structure and one is dropped — so the snapshot's
        share-freely contract is preserved.
        """
        merged = self._neighborhoods
        if merged is None:
            merged = merge_undirected(self.out, self.inc)
            self._neighborhoods = merged
        return merged

    def nodes_within_hops(self, node: NodeId, hops: int) -> Set[NodeId]:
        """Original ids within *hops* undirected hops of *node* (inclusive).

        Parity API with :func:`repro.graph.traversal.nodes_within_hops`,
        including the :class:`NodeNotFoundError` on unknown nodes.  Tight
        loops use :meth:`NeighborhoodCSR.nodes_within_hops_ids` directly with
        a reusable scratch buffer.
        """
        node_index = self.nodes.get(node)
        if node_index < 0:
            from repro.utils.errors import NodeNotFoundError

            raise NodeNotFoundError(node)
        return self.to_nodes(self.neighborhoods().nodes_within_hops_ids(node_index, hops))

    # ---------------------------------------------------- pattern requirements

    def pattern_masks(
        self, pattern_graph: PropertyGraph, dual: bool = True
    ) -> Dict[NodeId, MaskPair]:
        """Signature requirement masks for every node of a pattern graph.

        For pattern node ``u`` the out mask unions the (edge label, child
        label) bits of its outgoing pattern edges; the in mask (only when
        *dual*) unions the (edge label, parent label) bits of its incoming
        edges.  ``None`` marks a node some of whose required labels do not
        occur in the graph at all — it has no candidates.
        """
        masks: Dict[NodeId, MaskPair] = {}
        signature_bit = self.signatures.bit
        for u in pattern_graph.nodes():
            out_mask = 0
            in_mask = 0
            impossible = False
            for label in pattern_graph.out_edge_labels(u):
                edge_label = self.edge_labels.get(label)
                for child in pattern_graph.successors(u, label):
                    child_label = self.node_labels.get(pattern_graph.node_label(child))
                    if edge_label < 0 or child_label < 0:
                        impossible = True
                        break
                    out_mask |= signature_bit(edge_label, child_label)
                if impossible:
                    break
            if dual and not impossible:
                for parent in pattern_graph.predecessors(u):
                    parent_label = self.node_labels.get(pattern_graph.node_label(parent))
                    for label in pattern_graph.edge_labels(parent, u):
                        edge_label = self.edge_labels.get(label)
                        if edge_label < 0 or parent_label < 0:
                            impossible = True
                            break
                        in_mask |= signature_bit(edge_label, parent_label)
                    if impossible:
                        break
            masks[u] = None if impossible else (out_mask, in_mask)
        return masks

    def label_candidates_ids(
        self, pattern_graph: PropertyGraph, dual: bool = True
    ) -> Dict[NodeId, Set[int]]:
        """Signature-filtered label candidates, as dense-id sets per pattern node.

        This is the compiled ``FilterCandidate`` seed: label-index membership
        intersected with the O(1) signature pre-filter.  The result is always
        a superset of the (dual) simulation relation and of every isomorphic
        image, so downstream fixpoints started from it converge to exactly the
        same relations as from raw label candidates.
        """
        masks = self.pattern_masks(pattern_graph, dual=dual)
        candidates: Dict[NodeId, Set[int]] = {}
        for u in pattern_graph.nodes():
            mask_pair = masks[u]
            if mask_pair is None:
                candidates[u] = set()
                continue
            members = self.members_ids(self.node_labels.get(pattern_graph.node_label(u)))
            out_mask, in_mask = mask_pair
            candidates[u] = set(self.signatures.filter_ids(members, out_mask, in_mask))
        return candidates

    # ------------------------------------------------------------------ misc

    def __repr__(self) -> str:
        return (
            f"GraphIndex(graph={self.graph.name!r}, nodes={self.num_nodes}, "
            f"edge_labels={len(self.edge_labels)}, version={self.version}, "
            f"stale={self.is_stale()})"
        )
