"""CSR-backed d-hop neighbourhood expansion (the DPar hot path, compiled).

The d-hop preserving partitioner runs one undirected BFS *per graph node*
(paper Section 5.2): every node's ``Nd(v)`` decides whether the node is a
border node, what its replication weight is, and what a fragment gains by
adopting it.  The dict-backed :func:`repro.graph.traversal.nodes_within_hops`
pays, per visited node, a union of per-label successor and predecessor sets —
several fresh set allocations per BFS step.

:class:`NeighborhoodCSR` removes all of that:

* :func:`merge_undirected` folds the per-edge-label CSR pair of a
  :class:`~repro.index.snapshot.GraphIndex` into a single **undirected,
  deduplicated** adjacency in CSR form — one ``indptr`` / ``indices`` pair
  over dense node ids, rows sorted ascending;
* :meth:`NeighborhoodCSR.nodes_within_hops_ids` is a frontier-array BFS: the
  reached array doubles as the frontier queue (``array('i')``), visited marks
  live in a ``bytearray``, and expanding a node walks one contiguous slice.

Like every structure in :mod:`repro.index`, a :class:`NeighborhoodCSR` is
immutable after the build and safe to share across threads.  Callers running
many BFS probes in a tight loop (DPar) pass a reusable ``visited`` scratch
``bytearray`` — the method resets exactly the marks it set before returning,
so the scratch stays zeroed between calls without an O(|V|) wipe.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.index.csr import LabeledCSR
from repro.utils.timing import Timer

__all__ = ["NeighborhoodCSR", "merge_undirected"]


class NeighborhoodCSR:
    """Merged undirected adjacency over dense node ids, in CSR form.

    ``indptr[v]`` / ``indptr[v + 1]`` delimit the slice of ``indices`` holding
    the distinct undirected neighbours of node ``v`` (all edge labels, both
    directions, self-loops excluded exactly as the dict path excludes them —
    the graph model has none).  Rows are sorted ascending.
    """

    __slots__ = ("num_nodes", "indptr", "indices", "build_seconds")

    def __init__(self, num_nodes: int, indptr: array, indices: array,
                 build_seconds: float = 0.0) -> None:
        self.num_nodes = num_nodes
        self.indptr = indptr
        self.indices = indices
        self.build_seconds = build_seconds

    def degree(self, node_id: int) -> int:
        """Number of distinct undirected neighbours of *node_id*."""
        return self.indptr[node_id + 1] - self.indptr[node_id]

    def neighbors_ids(self, node_id: int) -> array:
        """A copy of the neighbour ids (convenience; hot paths walk the slice)."""
        return self.indices[self.indptr[node_id]:self.indptr[node_id + 1]]

    def nodes_within_hops_ids(
        self, source_id: int, hops: int, visited: Optional[bytearray] = None
    ) -> array:
        """Dense ids of all nodes within *hops* undirected hops (inclusive).

        The returned ``array('i')`` starts with *source_id* and lists nodes in
        BFS discovery order; it is also the frontier queue, so no per-level
        list is ever allocated.

        Parameters
        ----------
        visited:
            Optional scratch ``bytearray`` of length ``num_nodes``, all zero.
            When given, it is used for the visited marks and **reset to zero**
            (only the touched positions) before returning — pass one scratch
            across a loop of calls to skip the per-call allocation.
        """
        marks = visited if visited is not None else bytearray(self.num_nodes)
        indptr, indices = self.indptr, self.indices
        reached = array("i", (source_id,))
        marks[source_id] = 1
        frontier_start = 0
        for _ in range(hops):
            frontier_end = len(reached)
            if frontier_start == frontier_end:
                break
            for position in range(frontier_start, frontier_end):
                node = reached[position]
                for cursor in range(indptr[node], indptr[node + 1]):
                    neighbor = indices[cursor]
                    if not marks[neighbor]:
                        marks[neighbor] = 1
                        reached.append(neighbor)
            frontier_start = frontier_end
        if visited is not None:
            for node in reached:
                marks[node] = 0
        return reached

    def __repr__(self) -> str:
        return f"NeighborhoodCSR(nodes={self.num_nodes}, entries={len(self.indices)})"


def merge_undirected(out_csr: LabeledCSR, in_csr: LabeledCSR) -> NeighborhoodCSR:
    """Fold a per-label CSR pair into one undirected, deduplicated CSR.

    A node's merged row is the sorted union of its per-label out- and in-rows;
    a pair of nodes connected by several typed edges (or by edges in both
    directions) contributes a single entry, matching the semantics of
    :meth:`repro.graph.PropertyGraph.neighbors`.
    """
    num_nodes = out_csr.num_nodes
    with Timer() as timer:
        indptr = array("i", bytes((num_nodes + 1) * array("i").itemsize))
        indices = array("i")
        blocks = [
            (csr.indptr[label], csr.indices[label])
            for csr in (out_csr, in_csr)
            for label in range(csr.num_labels)
        ]
        for node in range(num_nodes):
            row = {
                block[cursor]
                for ptr, block in blocks
                for cursor in range(ptr[node], ptr[node + 1])
            }
            indices.extend(sorted(row))
            indptr[node + 1] = len(indices)
    return NeighborhoodCSR(num_nodes, indptr, indices, build_seconds=timer.elapsed)
