"""Per-edge-label CSR adjacency over interned ids (pure Python ``array``).

:class:`LabeledCSR` stores, for one direction (outgoing or incoming), a
classic compressed-sparse-row block *per edge label*: ``indptr[l][v]`` /
``indptr[l][v + 1]`` delimit the slice of ``indices[l]`` holding the
neighbours of node ``v`` via edges labeled ``l``.  Compared with the nested
``dict -> dict -> set`` adjacency of :class:`repro.graph.PropertyGraph`, a
neighbourhood probe costs two array reads instead of two hash lookups plus a
set copy, and iterating a neighbourhood walks a contiguous ``array('i')``
buffer instead of chasing set buckets.

Both directions plus the per-label and total degree arrays are built in a
single pass over the edge list by :func:`build_csr_pair`.  Everything is
``array('i')`` — no third-party dependencies — and nothing is mutated after
the build.

Every row is sorted ascending by neighbour id.  Consumers that only need the
neighbourhood *set* are unaffected (they convert to sets or count); the sort
makes the compiled layout independent of the adjacency dicts' hash-seeded
iteration order — snapshots of equal graphs are bit-identical across runs,
which derived structures (merged neighbourhood view, per-label row stores,
future serialisation) inherit.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Tuple

__all__ = ["LabeledCSR", "build_csr_pair"]


def _zeros(length: int) -> array:
    return array("i", bytes(length * array("i").itemsize))


class LabeledCSR:
    """CSR adjacency for one direction, split by edge label.

    Parameters
    ----------
    num_nodes:
        Number of interned nodes; every ``indptr`` block has this length + 1.
    indptr / indices:
        One ``array('i')`` pair per edge-label id, as built by
        :func:`build_csr_pair`.
    """

    __slots__ = ("num_nodes", "indptr", "indices", "total_degree")

    def __init__(
        self,
        num_nodes: int,
        indptr: List[array],
        indices: List[array],
        total_degree: array,
    ) -> None:
        self.num_nodes = num_nodes
        self.indptr = indptr
        self.indices = indices
        self.total_degree = total_degree

    @property
    def num_labels(self) -> int:
        return len(self.indptr)

    def degree(self, label_id: int, node_id: int) -> int:
        """Number of neighbours of *node_id* via edges labeled *label_id*."""
        ptr = self.indptr[label_id]
        return ptr[node_id + 1] - ptr[node_id]

    def row(self, label_id: int, node_id: int) -> Tuple[array, int, int]:
        """The neighbour slice as ``(indices, start, end)`` for tight loops.

        Returning the backing array plus bounds avoids the copy a slice would
        make; hot loops iterate ``range(start, end)`` directly.
        """
        ptr = self.indptr[label_id]
        return self.indices[label_id], ptr[node_id], ptr[node_id + 1]

    def sorted_runs(self, label_id: int) -> Tuple[array, array]:
        """The full ``(indptr, indices)`` pair for one edge label.

        Because every row is sorted ascending at build time, each
        ``indices[indptr[v]:indptr[v + 1]]`` window is a ready-made sorted
        run of dense neighbour ids — the vectorized enumeration intersects
        these windows in place (no slice, no decode) with its merge kernels.
        """
        return self.indptr[label_id], self.indices[label_id]

    def neighbors(self, label_id: int, node_id: int) -> array:
        """A copy of the neighbour ids (convenience; hot paths use :meth:`row`)."""
        indices, start, end = self.row(label_id, node_id)
        return indices[start:end]

    def __repr__(self) -> str:
        stored = sum(len(block) for block in self.indices)
        return f"LabeledCSR(nodes={self.num_nodes}, labels={self.num_labels}, entries={stored})"


def build_csr_pair(
    num_nodes: int,
    num_labels: int,
    edges: Iterable[Tuple[int, int, int]],
) -> Tuple[LabeledCSR, LabeledCSR]:
    """Build ``(outgoing, incoming)`` CSR blocks from ``(src, dst, label)`` triples.

    The classic two-pass construction: count per-(label, node) degrees, prefix
    sum them into index pointers, then fill the column arrays with a moving
    cursor.  All ids must already be interned (``0 <= id < num_nodes`` /
    ``num_labels``).
    """
    edge_list = list(edges)

    out_counts = [_zeros(num_nodes) for _ in range(num_labels)]
    in_counts = [_zeros(num_nodes) for _ in range(num_labels)]
    out_total = _zeros(num_nodes)
    in_total = _zeros(num_nodes)
    for source, target, label in edge_list:
        out_counts[label][source] += 1
        in_counts[label][target] += 1
        out_total[source] += 1
        in_total[target] += 1

    def prefix_sums(counts: List[array]) -> Tuple[List[array], List[array]]:
        indptr: List[array] = []
        indices: List[array] = []
        for label in range(num_labels):
            ptr = _zeros(num_nodes + 1)
            running = 0
            block_counts = counts[label]
            for node in range(num_nodes):
                ptr[node] = running
                running += block_counts[node]
            ptr[num_nodes] = running
            indptr.append(ptr)
            indices.append(_zeros(running))
        return indptr, indices

    out_indptr, out_indices = prefix_sums(out_counts)
    in_indptr, in_indices = prefix_sums(in_counts)

    out_cursor = [array("i", ptr[:-1]) for ptr in out_indptr]
    in_cursor = [array("i", ptr[:-1]) for ptr in in_indptr]
    for source, target, label in edge_list:
        position = out_cursor[label][source]
        out_indices[label][position] = target
        out_cursor[label][source] = position + 1
        position = in_cursor[label][target]
        in_indices[label][position] = source
        in_cursor[label][target] = position + 1

    _sort_rows(out_indptr, out_indices, num_nodes)
    _sort_rows(in_indptr, in_indices, num_nodes)

    outgoing = LabeledCSR(num_nodes, out_indptr, out_indices, out_total)
    incoming = LabeledCSR(num_nodes, in_indptr, in_indices, in_total)
    return outgoing, incoming


def _sort_rows(indptr: List[array], indices: List[array], num_nodes: int) -> None:
    """Sort every per-node row ascending (in place, during the build only)."""
    for ptr, block in zip(indptr, indices):
        for node in range(num_nodes):
            start, end = ptr[node], ptr[node + 1]
            if end - start > 1:
                block[start:end] = array("i", sorted(block[start:end]))
