"""Compiled graph-index subsystem: interned CSR snapshots for fast matching.

The dict-of-sets adjacency of :class:`repro.graph.PropertyGraph` is ideal for
updates but pays hashing and pointer-chasing on every probe.  This package
compiles a graph into an immutable :class:`GraphIndex` snapshot — interned
ids, per-edge-label CSR adjacency with degree arrays (rows sorted), per-node
neighbourhood label signatures, a compiled label index, and a lazily merged
undirected adjacency view (:mod:`repro.index.neighborhoods`) — that the
candidate filter, the (dual) simulation fixpoint, the backtracking
enumeration and the partitioner consume through ``use_index=True`` switches,
each keeping a dict-backed fallback path that is asserted byte-identical by
the test suite.

See :mod:`repro.index.snapshot` for the invariants (immutability, staleness
counter, per-graph caching).
"""

from repro.index.csr import LabeledCSR, build_csr_pair
from repro.index.interning import Interner
from repro.index.neighborhoods import NeighborhoodCSR, merge_undirected
from repro.index.signatures import NeighborhoodSignatures, build_signatures
from repro.index.snapshot import GraphIndex

__all__ = [
    "GraphIndex",
    "Interner",
    "LabeledCSR",
    "build_csr_pair",
    "NeighborhoodCSR",
    "merge_undirected",
    "NeighborhoodSignatures",
    "build_signatures",
]
