"""Compiled graph-index subsystem: interned CSR snapshots for fast matching.

The dict-of-sets adjacency of :class:`repro.graph.PropertyGraph` is ideal for
updates but pays hashing and pointer-chasing on every probe.  This package
compiles a graph into an immutable :class:`GraphIndex` snapshot — interned
ids, per-edge-label CSR adjacency with degree arrays, per-node neighbourhood
label signatures, and a compiled label index — that the candidate filter,
the (dual) simulation fixpoint and the partitioner consume through
``use_index=True`` switches, each keeping a dict-backed fallback path that is
asserted byte-identical by the test suite.

See :mod:`repro.index.snapshot` for the invariants (immutability, staleness
counter, per-graph caching).
"""

from repro.index.csr import LabeledCSR, build_csr_pair
from repro.index.interning import Interner
from repro.index.signatures import NeighborhoodSignatures, build_signatures
from repro.index.snapshot import GraphIndex

__all__ = [
    "GraphIndex",
    "Interner",
    "LabeledCSR",
    "build_csr_pair",
    "NeighborhoodSignatures",
    "build_signatures",
]
