"""Compiled graph-index subsystem: interned CSR snapshots for fast matching.

The dict-of-sets adjacency of :class:`repro.graph.PropertyGraph` is ideal for
updates but pays hashing and pointer-chasing on every probe.  This package
compiles a graph into an immutable :class:`GraphIndex` snapshot — interned
ids, per-edge-label CSR adjacency with degree arrays (rows sorted), per-node
neighbourhood label signatures, a compiled label index, and a lazily merged
undirected adjacency view (:mod:`repro.index.neighborhoods`) — that the
candidate filter, the (dual) simulation fixpoint, the backtracking
enumeration and the partitioner consume through ``use_index=True`` switches,
each keeping a dict-backed fallback path that is asserted byte-identical by
the test suite.

Snapshots also have a versioned binary wire format
(:mod:`repro.index.serialize`): ``to_bytes``/``from_bytes`` round-trip the
compiled arrays as raw buffers (with ``save_snapshot``/``load_snapshot`` file
variants next to the graph JSON of :mod:`repro.graph.io`), so cold starts and
cross-process fragment shipping skip ``GraphIndex.build`` entirely.

See :mod:`repro.index.snapshot` for the invariants (immutability, staleness
counter, per-graph caching).
"""

from repro.index.csr import LabeledCSR, build_csr_pair
from repro.index.interning import Interner
from repro.index.neighborhoods import NeighborhoodCSR, merge_undirected
from repro.index.serialize import (
    from_bytes,
    load_snapshot,
    save_snapshot,
    snapshot_checksum,
    to_bytes,
)
from repro.index.signatures import NeighborhoodSignatures, build_signatures
from repro.index.snapshot import GraphIndex, build_call_count

__all__ = [
    "GraphIndex",
    "build_call_count",
    "Interner",
    "LabeledCSR",
    "build_csr_pair",
    "NeighborhoodCSR",
    "merge_undirected",
    "NeighborhoodSignatures",
    "build_signatures",
    "to_bytes",
    "from_bytes",
    "save_snapshot",
    "load_snapshot",
    "snapshot_checksum",
]
