"""Per-node neighbourhood label signatures (bitsets over label pairs).

For every graph node ``v`` the index stores two Python-int bitsets:

* ``out_sig[v]`` has bit ``e * NL + t`` set iff ``v`` has an outgoing edge
  labeled ``e`` to a node whose node label is ``t`` (``NL`` = number of node
  labels);
* ``in_sig[v]`` has the same bit set iff ``v`` has an *incoming* ``e``-edge
  from a ``t``-labeled node.

A pattern node ``u`` induces a *requirement mask*: the union of the bits of
the (edge label, neighbour label) pairs of its non-negated adjacent pattern
edges.  Any graph node matching ``u`` under subgraph isomorphism — and a
fortiori any node in the (dual) simulation relation of ``u`` — must carry an
edge for every one of those pairs, so

    ``(out_sig[v] & out_mask) == out_mask and (in_sig[v] & in_mask) == in_mask``

is a sound O(1) pre-filter on candidates.  It never removes a true match, and
because the (dual) simulation fixpoint is unique, seeding the fixpoint from
signature-filtered pools yields *exactly* the same relation as seeding from
raw label candidates — just with fewer refinement rounds.

Python's arbitrary-precision ints make the bitsets dependency-free and
unbounded in ``|labels|²``; graphs in this library carry tens of labels, so
the masks stay within one or two machine words in practice.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["NeighborhoodSignatures", "build_signatures"]


class NeighborhoodSignatures:
    """The per-node out/in label-pair bitsets plus mask helpers."""

    __slots__ = ("num_node_labels", "out_sig", "in_sig")

    def __init__(self, num_node_labels: int, out_sig: List[int], in_sig: List[int]) -> None:
        self.num_node_labels = num_node_labels
        self.out_sig = out_sig
        self.in_sig = in_sig

    def bit(self, edge_label_id: int, node_label_id: int) -> int:
        """The bitmask of one (edge label, neighbour node label) pair."""
        return 1 << (edge_label_id * self.num_node_labels + node_label_id)

    def mask(self, pairs: Iterable[Tuple[int, int]]) -> int:
        """The union mask of several (edge label, neighbour label) pairs."""
        result = 0
        for edge_label_id, node_label_id in pairs:
            result |= 1 << (edge_label_id * self.num_node_labels + node_label_id)
        return result

    def satisfies(self, node_id: int, out_mask: int, in_mask: int) -> bool:
        """O(1) check that *node_id* carries every required label pair."""
        return (
            (self.out_sig[node_id] & out_mask) == out_mask
            and (self.in_sig[node_id] & in_mask) == in_mask
        )

    def filter_ids(
        self, candidate_ids: Iterable[int], out_mask: int, in_mask: int
    ) -> List[int]:
        """The subset of *candidate_ids* whose signatures cover both masks."""
        if not out_mask and not in_mask:
            return list(candidate_ids)
        out_sig, in_sig = self.out_sig, self.in_sig
        return [
            node_id
            for node_id in candidate_ids
            if (out_sig[node_id] & out_mask) == out_mask
            and (in_sig[node_id] & in_mask) == in_mask
        ]


def build_signatures(
    num_nodes: int,
    num_node_labels: int,
    node_label_ids: Sequence[int],
    edges: Iterable[Tuple[int, int, int]],
) -> NeighborhoodSignatures:
    """Accumulate the signatures from interned ``(src, dst, edge label)`` triples."""
    out_sig = [0] * num_nodes
    in_sig = [0] * num_nodes
    for source, target, edge_label in edges:
        out_sig[source] |= 1 << (edge_label * num_node_labels + node_label_ids[target])
        in_sig[target] |= 1 << (edge_label * num_node_labels + node_label_ids[source])
    return NeighborhoodSignatures(num_node_labels, out_sig, in_sig)
