"""Typed graph-update batches and their application (the delta substrate).

A production graph is not rebuilt between queries — it *churns*: edges appear
and disappear, nodes join, attributes move.  Every layer of this library keys
its caches on :attr:`repro.graph.PropertyGraph.version`, so the natural unit
of change is a **batch** that bumps the counter exactly once:

* :class:`GraphDelta` is an immutable, picklable value type describing one
  batch — node inserts/deletes, edge inserts/deletes, attribute sets — in a
  fixed application order;
* :func:`apply_delta` validates the whole batch up front (the graph is never
  left half-mutated), applies it through the ordinary mutation API, collapses
  the mutation counter to **one** bump, and returns the exact *inverse* batch
  — applying the inverse rolls the graph back to its pre-batch state,
  structure and touched attributes alike.

The inverse is also what makes deletions tractable downstream: a node delete
cascades its incident edges, and the inverse records all of them, so the
affected-area computation (:mod:`repro.delta.matching`) can see edges that no
longer exist in the post-delta graph.

Validation is strict by design: inserting an existing node or edge, deleting
a missing one, or writing a batch whose operations overlap incoherently (a
node both inserted and deleted, an edge inserted onto a node the same batch
deletes) raises :class:`~repro.utils.errors.DeltaError` *before* any mutation.
Strictness is what keeps inverses exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Set, Tuple

from repro.graph.digraph import Edge, Label, NodeId, PropertyGraph
from repro.utils.errors import DeltaError

__all__ = ["GraphDelta", "apply_delta", "graph_diff", "ABSENT"]

# One node insert: (node id, node label, ((attr key, attr value), ...)).
NodeInsert = Tuple[NodeId, Label, Tuple[Tuple[str, object], ...]]
# One attribute write: (node id, attr key, new value — or ABSENT to remove).
AttrSet = Tuple[NodeId, str, object]


class _AbsentAttr:
    """Sentinel marking "this attribute did not exist" in inverse deltas."""

    _instance: Optional["_AbsentAttr"] = None

    def __new__(cls) -> "_AbsentAttr":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABSENT"

    def __reduce__(self):
        # Pickle round-trips to the singleton, so identity checks keep
        # working after a delta crosses a process boundary.
        return (_AbsentAttr, ())


ABSENT = _AbsentAttr()


def _freeze_attrs(attrs: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    if not attrs:
        return ()
    return tuple(sorted(attrs.items(), key=lambda item: item[0]))


@dataclass(frozen=True)
class GraphDelta:
    """One immutable batch of graph updates.

    The fields are applied in declaration order — node inserts, edge inserts,
    edge deletes, node deletes (cascading their incident edges), attribute
    sets — which is the one order in which every coherent batch is
    well-defined: inserted edges may reference inserted nodes, and explicit
    edge deletes run before any cascade could consume them.

    Instances are plain tuples all the way down: hashable, picklable (they
    cross the process boundary in :meth:`repro.parallel.executor.ProcessExecutor.apply_delta`)
    and safely shareable.
    """

    node_inserts: Tuple[NodeInsert, ...] = ()
    node_deletes: Tuple[NodeId, ...] = ()
    edge_inserts: Tuple[Edge, ...] = ()
    edge_deletes: Tuple[Edge, ...] = ()
    attr_sets: Tuple[AttrSet, ...] = ()

    # ------------------------------------------------------------ constructors

    @classmethod
    def build(
        cls,
        node_inserts: Iterable[Tuple] = (),
        node_deletes: Iterable[NodeId] = (),
        edge_inserts: Iterable[Edge] = (),
        edge_deletes: Iterable[Edge] = (),
        attr_sets: Iterable[AttrSet] = (),
    ) -> "GraphDelta":
        """Normalise loosely-typed inputs into a :class:`GraphDelta`.

        Node inserts accept ``(node, label)`` pairs, ``(node, label, attrs)``
        with a mapping or pre-frozen tuple of attrs; everything is coerced to
        the canonical tuple form.
        """
        inserts: List[NodeInsert] = []
        for item in node_inserts:
            if len(item) == 2:
                node, label = item
                attrs: Tuple[Tuple[str, object], ...] = ()
            else:
                node, label, raw = item
                attrs = raw if isinstance(raw, tuple) else _freeze_attrs(raw)
            inserts.append((node, label, attrs))
        return cls(
            node_inserts=tuple(inserts),
            node_deletes=tuple(node_deletes),
            edge_inserts=tuple(edge_inserts),
            edge_deletes=tuple(edge_deletes),
            attr_sets=tuple(attr_sets),
        )

    @classmethod
    def insert_edge(cls, source: NodeId, target: NodeId, label: Label) -> "GraphDelta":
        return cls(edge_inserts=((source, target, label),))

    @classmethod
    def delete_edge(cls, source: NodeId, target: NodeId, label: Label) -> "GraphDelta":
        return cls(edge_deletes=((source, target, label),))

    # --------------------------------------------------------------- structure

    def is_empty(self) -> bool:
        return not (
            self.node_inserts
            or self.node_deletes
            or self.edge_inserts
            or self.edge_deletes
            or self.attr_sets
        )

    def is_structural(self) -> bool:
        """Whether the batch changes graph structure (vs attributes only)."""
        return bool(
            self.node_inserts or self.node_deletes or self.edge_inserts or self.edge_deletes
        )

    @property
    def size(self) -> int:
        """Total number of operations in the batch."""
        return (
            len(self.node_inserts)
            + len(self.node_deletes)
            + len(self.edge_inserts)
            + len(self.edge_deletes)
            + len(self.attr_sets)
        )

    def touched_nodes(self) -> Set[NodeId]:
        """Every node named by a *structural* operation of this batch.

        This is the seed set of the affected-area computation: endpoints of
        inserted and deleted edges, inserted nodes and deleted nodes.
        Attribute writes are excluded — they are invisible to matching.
        """
        touched: Set[NodeId] = set()
        for node, _label, _attrs in self.node_inserts:
            touched.add(node)
        touched.update(self.node_deletes)
        for source, target, _label in self.edge_inserts:
            touched.add(source)
            touched.add(target)
        for source, target, _label in self.edge_deletes:
            touched.add(source)
            touched.add(target)
        return touched

    def __repr__(self) -> str:
        return (
            f"GraphDelta(+{len(self.node_inserts)}n/-{len(self.node_deletes)}n, "
            f"+{len(self.edge_inserts)}e/-{len(self.edge_deletes)}e, "
            f"{len(self.attr_sets)} attrs)"
        )


def _validate(graph: PropertyGraph, delta: GraphDelta) -> None:
    """Reject malformed or non-applicable batches before touching the graph."""
    inserted_nodes: Set[NodeId] = set()
    for node, _label, _attrs in delta.node_inserts:
        if node in inserted_nodes:
            raise DeltaError(f"node {node!r} inserted twice in one batch")
        if graph.has_node(node):
            raise DeltaError(f"node insert of existing node {node!r}")
        inserted_nodes.add(node)

    deleted_nodes: Set[NodeId] = set()
    for node in delta.node_deletes:
        if node in deleted_nodes:
            raise DeltaError(f"node {node!r} deleted twice in one batch")
        if node in inserted_nodes:
            raise DeltaError(f"node {node!r} both inserted and deleted in one batch")
        if not graph.has_node(node):
            raise DeltaError(f"node delete of missing node {node!r}")
        deleted_nodes.add(node)

    present = lambda node: node in inserted_nodes or graph.has_node(node)  # noqa: E731
    seen_edge_inserts: Set[Edge] = set()
    for edge in delta.edge_inserts:
        source, target, label = edge
        if edge in seen_edge_inserts:
            raise DeltaError(f"edge {edge!r} inserted twice in one batch")
        seen_edge_inserts.add(edge)
        if not present(source) or not present(target):
            missing = source if not present(source) else target
            raise DeltaError(f"edge insert {edge!r} references missing node {missing!r}")
        if source in deleted_nodes or target in deleted_nodes:
            raise DeltaError(f"edge insert {edge!r} touches a node the batch deletes")
        if graph.has_edge(source, target, label):
            raise DeltaError(f"edge insert of existing edge {edge!r}")

    seen_edge_deletes: Set[Edge] = set()
    for edge in delta.edge_deletes:
        source, target, label = edge
        if edge in seen_edge_deletes:
            raise DeltaError(f"edge {edge!r} deleted twice in one batch")
        seen_edge_deletes.add(edge)
        if edge in seen_edge_inserts:
            raise DeltaError(f"edge {edge!r} both inserted and deleted in one batch")
        if not graph.has_edge(source, target, label):
            raise DeltaError(f"edge delete of missing edge {edge!r}")

    for node, key, _value in delta.attr_sets:
        if node in deleted_nodes:
            raise DeltaError(f"attribute set on node {node!r} the batch deletes")
        if not present(node):
            raise DeltaError(f"attribute set on missing node {node!r}")
        if not isinstance(key, str):
            raise DeltaError(f"attribute key {key!r} is not a string")


def graph_diff(old: PropertyGraph, new: PropertyGraph) -> GraphDelta:
    """The batch that, applied to *old*, makes it equal to *new*.

    Both graphs are read, neither is mutated.  The result satisfies the batch
    validation rules of :func:`apply_delta` by construction: deleted nodes'
    incident edges are left to the cascade (never listed explicitly), and
    edges of *new* incident to inserted nodes ride as ordinary edge inserts
    (the canonical application order puts node inserts first).

    One shape of change is inexpressible as a single coherent batch — a node
    present on both sides with **different labels** would need a delete and an
    insert of the same id, which batch validation (rightly) rejects.  Such a
    pair raises :class:`DeltaError`; callers that relabel must do it in two
    batches.  The scale-out shard-maintenance path
    (:func:`repro.serve.shards.shard_subdelta`) never produces one: induced
    subgraphs of the same union graph agree on every shared node's label.

    >>> from repro.graph.digraph import PropertyGraph
    >>> a = PropertyGraph("a"); b = PropertyGraph("b")
    >>> for g in (a, b):
    ...     _ = g.add_node("x", "person"); _ = g.add_node("y", "person")
    >>> _ = b.add_node("z", "person"); b.add_edge("x", "z", "follow")
    >>> delta = graph_diff(a, b)
    >>> _ = apply_delta(a, delta)
    >>> a == b
    True
    """
    old_nodes = set(old.nodes())
    new_nodes = set(new.nodes())

    node_inserts: List[NodeInsert] = []
    for node in sorted(new_nodes - old_nodes, key=repr):
        node_inserts.append(
            (node, new.node_label(node), _freeze_attrs(new.node_attrs(node)))
        )
    node_deletes = tuple(sorted(old_nodes - new_nodes, key=repr))
    deleted = set(node_deletes)

    for node in old_nodes & new_nodes:
        if old.node_label(node) != new.node_label(node):
            raise DeltaError(
                f"graph_diff cannot express the label change on node {node!r} "
                f"({old.node_label(node)!r} -> {new.node_label(node)!r}) as one batch"
            )

    old_edges = set(old.edges())
    new_edges = set(new.edges())
    edge_inserts = tuple(sorted(new_edges - old_edges, key=repr))
    # Deleted nodes cascade their incident edges; listing those explicitly
    # would double-delete under the inverse's replay.
    edge_deletes = tuple(
        sorted(
            (
                edge
                for edge in old_edges - new_edges
                if edge[0] not in deleted and edge[1] not in deleted
            ),
            key=repr,
        )
    )

    attr_sets: List[AttrSet] = []
    for node in sorted(old_nodes & new_nodes, key=repr):
        old_attrs = old.node_attrs(node)
        new_attrs = new.node_attrs(node)
        if old_attrs == new_attrs:
            continue
        for key in sorted(set(old_attrs) | set(new_attrs)):
            if key not in new_attrs:
                attr_sets.append((node, key, ABSENT))
            elif old_attrs.get(key, ABSENT) != new_attrs[key]:
                attr_sets.append((node, key, new_attrs[key]))

    return GraphDelta(
        node_inserts=tuple(node_inserts),
        node_deletes=node_deletes,
        edge_inserts=edge_inserts,
        edge_deletes=edge_deletes,
        attr_sets=tuple(attr_sets),
    )


def apply_delta(graph: PropertyGraph, delta: GraphDelta) -> GraphDelta:
    """Apply *delta* to *graph* as one batch; return the exact inverse batch.

    The whole batch is validated first (:class:`DeltaError` leaves the graph
    untouched), then applied in the canonical order.  Structural batches bump
    :attr:`PropertyGraph.version` exactly **once** — the per-operation bumps
    of the mutation API are collapsed via
    :meth:`PropertyGraph.collapse_version` — and attribute-only batches do not
    bump it at all, mirroring the staleness discipline of every cache layer.

    Applying the returned inverse restores the pre-batch structure and every
    attribute the batch wrote (attributes absent before the batch are removed
    again via the :data:`ABSENT` sentinel).

    >>> from repro.graph.digraph import PropertyGraph
    >>> g = PropertyGraph("d")
    >>> _ = g.add_node("a", "person"); _ = g.add_node("b", "person")
    >>> before = g.version
    >>> inverse = apply_delta(g, GraphDelta.build(
    ...     node_inserts=[("c", "person")],
    ...     edge_inserts=[("a", "c", "follow"), ("b", "c", "follow")]))
    >>> g.version == before + 1 and g.num_edges == 2
    True
    >>> _ = apply_delta(g, inverse)
    >>> g.num_edges == 0 and not g.has_node("c")
    True
    """
    _validate(graph, delta)
    base = graph.version

    # Inverse pieces, gathered while applying (deletes record what they kill).
    inverse_node_deletes: List[NodeId] = []
    inverse_edge_deletes: List[Edge] = []
    inverse_edge_inserts: List[Edge] = []
    inverse_node_inserts: List[NodeInsert] = []
    inverse_attr_sets: List[AttrSet] = []

    for node, label, attrs in delta.node_inserts:
        graph.add_node(node, label, **dict(attrs))
        inverse_node_deletes.append(node)

    for source, target, label in delta.edge_inserts:
        graph.add_edge(source, target, label)
        inverse_edge_deletes.append((source, target, label))

    for source, target, label in delta.edge_deletes:
        graph.remove_edge(source, target, label)
        inverse_edge_inserts.append((source, target, label))

    for node in delta.node_deletes:
        label = graph.node_label(node)
        attrs = _freeze_attrs(graph.node_attrs(node))
        # Record the cascade: every incident edge dies with the node and must
        # come back with it on rollback.  (The affected-area computation also
        # reads these — they are the only surviving record of pre-delta
        # adjacency around a deleted node.)
        cascade = [
            (node, target, edge_label)
            for edge_label in sorted(graph.out_edge_labels(node), key=str)
            for target in sorted(graph.successors(node, edge_label), key=str)
        ]
        cascade += [
            (source, node, edge_label)
            for source in sorted(graph.predecessors(node), key=str)
            if source != node  # self-loops already recorded by the out pass
            for edge_label in sorted(graph.edge_labels(source, node), key=str)
        ]
        graph.remove_node(node)
        inverse_node_inserts.append((node, label, attrs))
        inverse_edge_inserts.extend(cascade)

    inserted = {node for node, _label, _attrs in delta.node_inserts}
    for node, key, value in delta.attr_sets:
        if node not in inserted:
            # Attr writes on nodes this batch inserted need no inverse entry:
            # the inverse deletes the node, and an attr op on a node the same
            # batch deletes would make the inverse fail its own validation.
            previous = graph.node_attrs(node).get(key, ABSENT)
            inverse_attr_sets.append((node, key, previous))
        if value is ABSENT:
            graph.remove_node_attr(node, key)
        else:
            graph.set_node_attr(node, key, value)

    if delta.is_structural():
        graph.collapse_version(base)

    # Inverse application order is the canonical order again: re-insert nodes,
    # re-insert edges (cascades included), delete inserted edges, delete
    # inserted nodes, restore attributes (last writer wins, so reversed).
    return GraphDelta(
        node_inserts=tuple(inverse_node_inserts),
        node_deletes=tuple(reversed(inverse_node_deletes)),
        edge_inserts=tuple(inverse_edge_inserts),
        edge_deletes=tuple(reversed(inverse_edge_deletes)),
        attr_sets=tuple(reversed(inverse_attr_sets)),
    )
