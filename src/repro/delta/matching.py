"""Graph-update incremental matching (the paper's IncQMatch, other axis).

:mod:`repro.matching.incremental` answers *query* changes incrementally; this
module answers *graph* changes.  The key fact is locality: a focus candidate
``v`` matches a pattern of radius ``r`` iff its ``r``-hop neighbourhood says
so, and a delta can only change the ``r``-hop neighbourhood of nodes that are
within ``r`` hops of something the delta touched.  That region is the
**affected area** ``AFF`` (the Section 4.2 notion transplanted to graph
updates):

* :func:`affected_area` computes it with the compiled d-hop machinery
  (:meth:`~repro.index.neighborhoods.NeighborhoodCSR.nodes_within_hops_ids`
  with one shared scratch buffer over the refreshed snapshot).  Deletions
  need care — a removed edge no longer exists in the post-delta graph, yet
  the nodes that *used* to reach through it are affected — so the expansion
  runs on the **union graph** (post-delta CSR plus an overlay of every
  removed edge, which the *inverse* delta records, cascades included).
  Distances in the union are ≤ distances in both the pre- and post-delta
  graphs, so the union d-hop ball of the touched nodes covers every node
  whose neighbourhood changed in either direction.
* :func:`inc_qmatch_delta` then re-verifies **only focus candidates inside
  AFF**: the answer is ``(cached \\ AFF) ∪ Q(AFF ∩ candidates)``, the cached
  matches outside the area carry over untouched, and the number of
  verifications performed is bounded by ``|AFF|`` (asserted in tests — the
  graph-update analogue of Proposition 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from repro.delta.ops import GraphDelta
from repro.graph.digraph import PropertyGraph
from repro.index.snapshot import GraphIndex
from repro.matching.qmatch import QMatch
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.patterns.qgp import QuantifiedGraphPattern

__all__ = ["DeltaMatchStats", "affected_area", "inc_qmatch_delta"]

NodeId = Hashable


@dataclass
class DeltaMatchStats:
    """Bookkeeping of one graph-update incremental evaluation.

    ``affected_area`` is AFF; ``verifications`` counts the focus candidates
    the re-evaluation actually verified (tests assert it stays ≤ ``|AFF|``);
    ``carried`` counts cached matches outside AFF that were reused without
    any work; ``added``/``removed`` are the answer diff against the cache —
    what a standing-query subscriber is notified with.
    """

    affected_area: Set[NodeId] = field(default_factory=set)
    verifications: int = 0
    carried: int = 0
    added: Set[NodeId] = field(default_factory=set)
    removed: Set[NodeId] = field(default_factory=set)

    @property
    def aff_size(self) -> int:
        return len(self.affected_area)


def _removed_edge_overlay(
    delta: GraphDelta, inverse: Optional[GraphDelta]
) -> Dict[NodeId, Set[NodeId]]:
    """Undirected adjacency of every edge the batch removed.

    The inverse batch re-inserts exactly the removed edges (explicit deletes
    plus node-delete cascades), so its ``edge_inserts`` are the complete
    removed-edge record; without an inverse only the explicit deletes are
    known, which is still complete when the delta deletes no nodes.
    """
    removed: Iterable = (
        inverse.edge_inserts if inverse is not None else delta.edge_deletes
    )
    overlay: Dict[NodeId, Set[NodeId]] = {}
    for source, target, _label in removed:
        overlay.setdefault(source, set()).add(target)
        overlay.setdefault(target, set()).add(source)
    return overlay


def affected_area(
    graph: PropertyGraph,
    delta: GraphDelta,
    hops: int,
    inverse: Optional[GraphDelta] = None,
    index: Optional[GraphIndex] = None,
) -> Set[NodeId]:
    """The paper's ``AFF``: nodes within *hops* of anything the batch touched.

    *graph* is the **post-delta** graph; pass the batch's *inverse* whenever
    the delta deletes nodes (the cascaded edges live only there).  The
    expansion runs over the compiled merged CSR of the (refreshed) snapshot —
    the same ``nodes_within_hops_ids`` frontier BFS DPar uses — plus an
    overlay of the removed edges, so the area is sound for insertions *and*
    deletions.  Deleted nodes seed the expansion but are not part of the
    returned area (they no longer exist to be matched).
    """
    seeds = delta.touched_nodes()
    if inverse is not None:
        for source, target, _label in inverse.edge_inserts:
            seeds.add(source)
            seeds.add(target)
    if not seeds:
        return set()
    if index is None:
        index = GraphIndex.for_graph(graph)
    index.ensure_fresh()
    overlay = _removed_edge_overlay(delta, inverse)
    merged = index.neighborhoods()
    encode = index.nodes.encode
    decode = index.nodes.decode
    dead = {node for node in seeds if encode(node) is None}

    if not overlay and not dead:
        # Pure-insert fast path: one compiled BFS per seed, shared scratch.
        scratch = bytearray(index.num_nodes)
        area: Set[NodeId] = set()
        for seed in seeds:
            area.update(
                map(decode, merged.nodes_within_hops_ids(encode(seed), hops, visited=scratch))
            )
        return area

    # Union-graph BFS: compiled rows for live nodes, overlay rows for removed
    # edges (and for deleted nodes, which exist only in the overlay).
    indptr, indices = merged.indptr, merged.indices
    frontier = set(seeds)
    reached: Set[NodeId] = set(seeds)
    for _ in range(hops):
        if not frontier:
            break
        next_frontier: Set[NodeId] = set()
        for node in frontier:
            dense = encode(node)
            if dense is not None:
                for cursor in range(indptr[dense], indptr[dense + 1]):
                    neighbor = decode(indices[cursor])
                    if neighbor not in reached:
                        reached.add(neighbor)
                        next_frontier.add(neighbor)
            for neighbor in overlay.get(node, ()):
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
    return {node for node in reached if graph.has_node(node)}


def inc_qmatch_delta(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    delta: GraphDelta,
    cached_answer: Iterable[NodeId],
    inverse: Optional[GraphDelta] = None,
    engine: Optional[QMatch] = None,
    index: Optional[GraphIndex] = None,
) -> Tuple[FrozenSet[NodeId], DeltaMatchStats]:
    """Maintain ``Q(xo, G)`` across an applied graph delta.

    Parameters
    ----------
    pattern:
        The standing QGP whose cached answer is being maintained.
    graph:
        The **post-delta** graph (apply the batch first).
    cached_answer:
        ``Q(xo, G_pre)`` — the answer computed before the batch.
    inverse:
        The inverse batch returned by :func:`repro.delta.ops.apply_delta`;
        required for exactness when the delta deletes nodes.
    engine:
        The sequential engine used for the re-verification (defaults to a
        fresh :class:`~repro.matching.qmatch.QMatch`); answers are
        engine-independent, so any configuration yields the same set.

    Returns ``(answer, stats)`` where *answer* is exactly ``Q(xo, G_post)``
    (asserted against cold re-evaluation in tests) and *stats* records AFF,
    the verification count (≤ ``|AFF|``) and the answer diff.
    """
    pattern.validate()
    engine = engine if engine is not None else QMatch()
    original = set(cached_answer)
    # A deleted focus match is *not* in AFF (deleted nodes cannot be part of
    # the post-delta area), so the carry-over below would keep it — drop the
    # dead matches before anything is carried.
    cached = original - set(delta.node_deletes) if delta.node_deletes else original
    stats = DeltaMatchStats()

    if not delta.is_structural():
        # Attribute-only batches cannot change any answer.
        stats.carried = len(cached)
        return frozenset(cached), stats

    with span("delta.inc_qmatch", pattern=pattern.name):
        aff = affected_area(
            graph, delta, pattern.radius(), inverse=inverse, index=index
        )
        stats.affected_area = aff
        if aff:
            outcome = engine.evaluate(pattern, graph, focus_restriction=aff)
            stats.verifications = outcome.counter.verifications
            carried = cached - aff
            answer = carried | set(outcome.answer)
        else:
            carried = cached
            answer = set(cached)
    stats.carried = len(carried)
    stats.added = answer - original
    stats.removed = original - answer
    registry = get_registry()
    if registry:
        registry.counter("delta.evaluations").inc()
        registry.counter("delta.verifications").inc(stats.verifications)
        registry.histogram(
            "delta.aff_size", buckets=(1, 4, 16, 64, 256, 1024, 4096)
        ).observe(stats.aff_size)
    return frozenset(answer), stats
