"""Incremental :class:`~repro.index.GraphIndex` maintenance under deltas.

``GraphIndex.build`` pays |V| + |E| with large constants: interning every
node, listing every edge, two CSR passes with per-row sorts, one bigint
signature fold per edge.  A small update batch invalidates none of that work
outside the touched neighbourhood, so :func:`refreshed_index` patches a fresh
snapshot out of the stale one instead:

* interning tables are **shared** when unchanged and copy-extended when the
  batch appends values (interners are append-only, so old ids never move);
* per-label CSR blocks are shared untouched; labels with changed rows are
  rewritten in one pass that bulk-copies untouched row runs and re-sorts only
  the touched rows;
* neighbourhood signatures are recomputed **only for the endpoints of changed
  edges** (a deleted edge cannot simply clear a bit — another edge may still
  set it — so affected nodes re-fold their rows);
* the merged undirected CSR and the per-label enumeration row stores are
  patched the same way, but only if the stale snapshot had materialised them
  — the refresh never *creates* derived structures the consumer has not paid
  for.

The contract — pinned by a hypothesis property — is that the refreshed
snapshot is **wire-byte-identical** to a from-scratch ``GraphIndex.build`` of
the post-delta graph (:func:`repro.index.serialize.to_bytes` over the
structural sections).  Byte identity is demanding: the wire encodes interner
*orders*.  A fresh build interns edge labels in **sorted** order (so the
order depends only on the label set, never on edge insertion order), which
lets the refresh decide eligibility without scanning the edge list; it
**falls back to a full rebuild** whenever the incremental result could
differ:

* the batch deletes nodes (dense ids shift),
* the batch introduces new *node* labels (signature bit positions shift),
* an edge label dies, or a brand-new edge label sorts before an existing one
  (either way the sorted interning order of a fresh build diverges from the
  append-only extension a patch can do),
* the touched set exceeds ``max_touched_fraction`` of the nodes (past that
  point patching costs more than building), or
* the snapshot is more than one batch behind its graph.

The fallback is always correct — it *is* the from-scratch build — so callers
never need to care which path ran; :func:`refresh_rebuild_count` exposes it
for tests and benchmarks that do.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Set, Tuple

from repro.delta.ops import GraphDelta
from repro.index.csr import LabeledCSR
from repro.index.interning import Interner
from repro.index.neighborhoods import NeighborhoodCSR
from repro.index.signatures import NeighborhoodSignatures
from repro.index.snapshot import GraphIndex
from repro.obs.metrics import CORE, get_registry
from repro.obs.trace import span
from repro.utils.timing import Timer

__all__ = [
    "refreshed_index",
    "refresh_call_count",
    "refresh_rebuild_count",
    "DEFAULT_MAX_TOUCHED_FRACTION",
]

# Past this fraction of touched nodes a patch walks most rows anyway; the
# from-scratch build is cheaper and trivially byte-identical.
DEFAULT_MAX_TOUCHED_FRACTION = 0.5

def refresh_call_count() -> int:
    """How many times :func:`refreshed_index` has run in this process.

    Reads the always-on :data:`repro.obs.metrics.CORE` counters (the old
    module globals leaked across tests; CORE is reset by the per-test
    observability fixture).  When a metrics registry is enabled the same
    events are also mirrored as ``index.refresh`` / ``index.refresh.fallback``.
    """
    return CORE.index_refreshes


def refresh_rebuild_count() -> int:
    """How many of those calls fell back to a full ``GraphIndex.build``."""
    return CORE.index_refresh_rebuilds


def _zeros(length: int) -> array:
    return array("i", bytes(length * array("i").itemsize))


# --------------------------------------------------------------- CSR patching

# label id -> node dense id -> (added neighbour ids, removed neighbour ids)
Changes = Dict[int, Dict[int, Tuple[Set[int], Set[int]]]]


def _patch_labeled_csr(
    old: LabeledCSR, v_new: int, l_new: int, changes: Changes
) -> LabeledCSR:
    """A fresh-build-identical CSR with only the changed rows rewritten.

    Labels without changes share the old arrays outright (both snapshots are
    immutable); when the node count grew, their index pointers are extended
    with the tail offset (new nodes have empty rows at the end).  Labels with
    changes are rewritten in one pass: untouched row runs are bulk slice
    copies, touched rows are set-patched and re-sorted.
    """
    v_old = old.num_nodes
    l_old = old.num_labels
    indptr: List[array] = []
    indices: List[array] = []
    for label_id in range(l_new):
        per_label = changes.get(label_id)
        old_ptr = old.indptr[label_id] if label_id < l_old else None
        old_block = old.indices[label_id] if label_id < l_old else None
        if not per_label:
            if old_ptr is not None and v_new == v_old:
                indptr.append(old_ptr)
                indices.append(old_block)
            elif old_ptr is not None:
                ptr = array("i", old_ptr)
                tail = ptr[-1]
                ptr.extend(array("i", [tail] * (v_new - v_old)))
                indptr.append(ptr)
                indices.append(old_block)
            else:  # unreachable: a new label always carries changes
                indptr.append(_zeros(v_new + 1))
                indices.append(array("i"))
            continue

        new_ptr = _zeros(v_new + 1)
        new_block = array("i")
        cursor = 0
        for node in sorted(per_label):
            if node > cursor and old_ptr is not None and cursor < v_old:
                stop = min(node, v_old)
                start_off, end_off = old_ptr[cursor], old_ptr[stop]
                shift = len(new_block) - start_off
                new_block.extend(old_block[start_off:end_off])
                for i in range(cursor, stop):
                    new_ptr[i + 1] = old_ptr[i + 1] + shift
                cursor = stop
            if node > cursor:  # untouched brand-new nodes: empty rows
                base = len(new_block)
                for i in range(cursor, node):
                    new_ptr[i + 1] = base
                cursor = node
            adds, removes = per_label[node]
            if old_ptr is not None and node < v_old:
                row = set(old_block[old_ptr[node]:old_ptr[node + 1]])
            else:
                row = set()
            row |= adds
            row -= removes
            new_block.extend(sorted(row))
            new_ptr[node + 1] = len(new_block)
            cursor = node + 1
        if old_ptr is not None and cursor < v_old:
            start_off, end_off = old_ptr[cursor], old_ptr[v_old]
            shift = len(new_block) - start_off
            new_block.extend(old_block[start_off:end_off])
            for i in range(cursor, v_old):
                new_ptr[i + 1] = old_ptr[i + 1] + shift
            cursor = v_old
        base = len(new_block)
        for i in range(cursor, v_new):
            new_ptr[i + 1] = base
        indptr.append(new_ptr)
        indices.append(new_block)

    total_degree = _patch_degrees(old.total_degree, v_new, changes)
    return LabeledCSR(v_new, indptr, indices, total_degree)


def _patch_degrees(old_total: array, v_new: int, changes: Changes) -> array:
    v_old = len(old_total)
    if not changes and v_new == v_old:
        return old_total
    new_total = array("i", old_total)
    if v_new > v_old:
        new_total.extend(_zeros(v_new - v_old))
    for per_label in changes.values():
        for node, (adds, removes) in per_label.items():
            new_total[node] += len(adds) - len(removes)
    return new_total


def _patch_merged(
    old_merged: NeighborhoodCSR,
    v_new: int,
    affected: Set[int],
    out: LabeledCSR,
    inc: LabeledCSR,
) -> NeighborhoodCSR:
    """Patch the merged undirected CSR: affected rows re-merged, rest copied."""
    v_old = old_merged.num_nodes
    old_ptr, old_block = old_merged.indptr, old_merged.indices
    new_ptr = _zeros(v_new + 1)
    new_block = array("i")
    num_labels = out.num_labels

    def merged_row(node: int) -> List[int]:
        row: Set[int] = set()
        for label_id in range(num_labels):
            block, start, end = out.row(label_id, node)
            row.update(block[start:end])
            block, start, end = inc.row(label_id, node)
            row.update(block[start:end])
        return sorted(row)

    cursor = 0
    for node in sorted(affected):
        if node > cursor and cursor < v_old:
            stop = min(node, v_old)
            start_off, end_off = old_ptr[cursor], old_ptr[stop]
            shift = len(new_block) - start_off
            new_block.extend(old_block[start_off:end_off])
            for i in range(cursor, stop):
                new_ptr[i + 1] = old_ptr[i + 1] + shift
            cursor = stop
        if node > cursor:
            base = len(new_block)
            for i in range(cursor, node):
                new_ptr[i + 1] = base
            cursor = node
        new_block.extend(merged_row(node))
        new_ptr[node + 1] = len(new_block)
        cursor = node + 1
    if cursor < v_old:
        start_off, end_off = old_ptr[cursor], old_ptr[v_old]
        shift = len(new_block) - start_off
        new_block.extend(old_block[start_off:end_off])
        for i in range(cursor, v_old):
            new_ptr[i + 1] = old_ptr[i + 1] + shift
        cursor = v_old
    base = len(new_block)
    for i in range(cursor, v_new):
        new_ptr[i + 1] = base
    return NeighborhoodCSR(v_new, new_ptr, new_block)


# ------------------------------------------------------------------- refresh


def refreshed_index(
    index: GraphIndex,
    delta: GraphDelta,
    max_touched_fraction: float = DEFAULT_MAX_TOUCHED_FRACTION,
) -> GraphIndex:
    """A fresh snapshot of ``index.graph`` after *delta* was applied to it.

    Call with the snapshot that was fresh *before* the batch and the batch
    itself, after :func:`repro.delta.ops.apply_delta` ran.  The result is
    cached on the graph (like :meth:`GraphIndex.for_graph`) and is wire-byte
    identical to ``GraphIndex.build(index.graph)``; see the module docs for
    when the incremental path applies and when it falls back to that build.
    """
    CORE.index_refreshes += 1
    registry = get_registry()
    if registry:
        registry.counter("index.refresh").inc()
    graph = index.graph

    if not index.is_stale():
        # Attribute-only batches (or an already-refreshed snapshot): the
        # compiled structure still matches, per the staleness discipline.
        return index

    def rebuild() -> GraphIndex:
        CORE.index_refresh_rebuilds += 1
        if registry:
            registry.counter("index.refresh.fallback").inc()
        snapshot = GraphIndex.build(graph)
        graph.cache_index(snapshot)
        return snapshot

    if graph.version != index.version + 1:
        return rebuild()  # drifted by more than the one batch we were given
    if delta.node_deletes:
        return rebuild()  # deletions shift every dense id after them

    touched = delta.touched_nodes()
    v_old = index.num_nodes
    if len(touched) > max(16, max_touched_fraction * max(v_old, 1)):
        return rebuild()

    # New *node* labels shift every signature bit position (the bit layout is
    # ``edge_label * num_node_labels + node_label``) — rebuild.
    old_node_labels = index.node_labels
    for _node, label, _attrs in delta.node_inserts:
        if old_node_labels.get(label) < 0:
            return rebuild()

    # Edge-label accounting: a fresh build interns the labels in sorted
    # order, so the patch can only extend the interner when every brand-new
    # label sorts *after* every existing one, and a dead label (a fresh build
    # would omit it) always forces the rebuild.
    old_edge_labels = index.edge_labels
    label_net: Dict[str, int] = {}
    for _s, _t, label in delta.edge_inserts:
        label_net[label] = label_net.get(label, 0) + 1
    for _s, _t, label in delta.edge_deletes:
        label_net[label] = label_net.get(label, 0) - 1
    new_label_names: List[str] = []
    for label, net in label_net.items():
        old_id = old_edge_labels.get(label)
        if old_id < 0:
            if net > 0:
                new_label_names.append(label)
        elif len(index.out.indices[old_id]) + net == 0:
            return rebuild()  # the label died with its last edge

    old_values = old_edge_labels.values()
    new_label_names.sort()
    if new_label_names and old_values and new_label_names[0] < old_values[-1]:
        return rebuild()  # the new label sorts into the middle — ids would move

    with span(
        "index.refresh", graph=graph.name, touched=len(touched)
    ), Timer() as timer:
        # ----------------------------------------------------- interning tables
        if delta.node_inserts:
            nodes = Interner(index.nodes.values())
            for node, _label, _attrs in delta.node_inserts:
                nodes.intern(node)
        else:
            nodes = index.nodes
        node_labels = old_node_labels  # verified: no new node labels
        if new_label_names:
            edge_labels = Interner(old_values + new_label_names)
        else:
            edge_labels = old_edge_labels
        v_new = len(nodes)

        # -------------------------------------------- node labels and members
        if delta.node_inserts:
            node_label_ids = array("i", index.node_label_ids)
            label_members: List[array] = list(index._label_members)
            copied_members: Set[int] = set()
            for node, label, _attrs in delta.node_inserts:
                label_id = node_labels.id_of(label)
                node_label_ids.append(label_id)
                if label_id not in copied_members:
                    label_members[label_id] = array("i", label_members[label_id])
                    copied_members.add(label_id)
                label_members[label_id].append(nodes.id_of(node))
        else:
            node_label_ids = index.node_label_ids
            label_members = index._label_members

        # ----------------------------------------------------------- CSR patch
        out_changes: Changes = {}
        in_changes: Changes = {}
        node_id = nodes.id_of
        edge_label_id = edge_labels.id_of
        for source, target, label in delta.edge_inserts:
            lid, sid, tid = edge_label_id(label), node_id(source), node_id(target)
            out_changes.setdefault(lid, {}).setdefault(sid, (set(), set()))[0].add(tid)
            in_changes.setdefault(lid, {}).setdefault(tid, (set(), set()))[0].add(sid)
        for source, target, label in delta.edge_deletes:
            lid, sid, tid = edge_label_id(label), node_id(source), node_id(target)
            out_changes.setdefault(lid, {}).setdefault(sid, (set(), set()))[1].add(tid)
            in_changes.setdefault(lid, {}).setdefault(tid, (set(), set()))[1].add(sid)
        l_new = len(edge_labels)
        out = _patch_labeled_csr(index.out, v_new, l_new, out_changes)
        inc = _patch_labeled_csr(index.inc, v_new, l_new, in_changes)

        # --------------------------------------------------------- signatures
        num_node_labels = max(len(node_labels), 1)
        out_sig = list(index.signatures.out_sig)
        in_sig = list(index.signatures.in_sig)
        out_sig.extend([0] * (v_new - v_old))
        in_sig.extend([0] * (v_new - v_old))

        def fold_signature(csr: LabeledCSR, node: int) -> int:
            sig = 0
            for label_id in range(l_new):
                block, start, end = csr.row(label_id, node)
                for position in range(start, end):
                    sig |= 1 << (
                        label_id * num_node_labels + node_label_ids[block[position]]
                    )
            return sig

        out_affected = {n for per in out_changes.values() for n in per}
        in_affected = {n for per in in_changes.values() for n in per}
        for node in out_affected:
            out_sig[node] = fold_signature(out, node)
        for node in in_affected:
            in_sig[node] = fold_signature(inc, node)
        signatures = NeighborhoodSignatures(num_node_labels, out_sig, in_sig)

        snapshot = GraphIndex(
            graph=graph,
            version=graph.version,
            nodes=nodes,
            node_labels=node_labels,
            edge_labels=edge_labels,
            node_label_ids=node_label_ids,
            out=out,
            inc=inc,
            signatures=signatures,
            label_members=label_members,
        )

        # ------------------------------------------- derived structures (hot)
        if index._neighborhoods is not None:
            affected = out_affected | in_affected
            affected.update(range(v_old, v_new))
            snapshot._neighborhoods = _patch_merged(
                index._neighborhoods, v_new, affected, out, inc
            )
        if index._compiled_rows:
            decode = nodes.decode
            for (incoming, label_id), old_store in index._compiled_rows.items():
                changes = in_changes if incoming else out_changes
                per_label = changes.get(label_id)
                if not per_label:
                    snapshot._compiled_rows[(incoming, label_id)] = old_store
                    continue
                store = dict(old_store)
                csr = inc if incoming else out
                for node in per_label:
                    block, start, end = csr.row(label_id, node)
                    if end > start:
                        store[decode(node)] = frozenset(
                            map(decode, block[start:end])
                        )
                    else:
                        store.pop(decode(node), None)
                snapshot._compiled_rows[(incoming, label_id)] = store

    snapshot.build_seconds = timer.elapsed
    if registry:
        registry.histogram("index.refresh_seconds").observe(timer.elapsed)
    graph.cache_index(snapshot)
    return snapshot
