"""Graph-update subsystem: typed deltas threaded through every layer.

``repro.delta`` is the sixth layer of the reproduction — the one that lets a
*live* system absorb graph churn without cold starts:

* :mod:`repro.delta.ops` — :class:`GraphDelta` batches,
  :func:`apply_delta` (one version bump per batch, exact inverse returned);
* :mod:`repro.delta.refresh` — incremental
  :class:`~repro.index.GraphIndex` maintenance (:func:`refreshed_index`,
  also reachable as ``GraphIndex.refreshed``), wire-byte-identical to a
  from-scratch build;
* :mod:`repro.delta.matching` — the graph-update analogue of IncQMatch:
  :func:`affected_area` (the paper's ``AFF``, from the delta's d-hop
  neighbourhood) and :func:`inc_qmatch_delta` (re-verify only inside it);
* :mod:`repro.delta.partition` — d-hop preserving partition maintenance:
  per-fragment sub-deltas with halo growth, so the parallel layer ships
  deltas instead of re-shipping fragments.

See ``docs/UPDATES.md`` for the executable walkthrough and
``benchmarks/bench_incremental.py`` for the figure this layer is measured by.
"""

from repro.delta.matching import DeltaMatchStats, affected_area, inc_qmatch_delta
from repro.delta.ops import ABSENT, GraphDelta, apply_delta, graph_diff
from repro.delta.partition import FragmentUpdate, apply_delta_to_partition
from repro.delta.refresh import (
    refresh_call_count,
    refresh_rebuild_count,
    refreshed_index,
)

__all__ = [
    "GraphDelta",
    "apply_delta",
    "graph_diff",
    "ABSENT",
    "refreshed_index",
    "refresh_call_count",
    "refresh_rebuild_count",
    "affected_area",
    "inc_qmatch_delta",
    "DeltaMatchStats",
    "apply_delta_to_partition",
    "FragmentUpdate",
]
