"""D-hop preserving partition maintenance under graph deltas.

A :class:`~repro.parallel.partition.HopPreservingPartition` is expensive to
build (one d-hop BFS per node) and, on the process backend, expensive to
*ship* (every fragment crosses the pool boundary as snapshot bytes).  Before
this module, any structural mutation invalidated the whole thing: re-partition,
re-serialise, re-ship, re-decode.  :func:`apply_delta_to_partition` instead
translates one graph batch into **per-fragment sub-deltas**:

* ownership is maintained — deleted nodes leave their fragment, inserted
  nodes are adopted by the fragment owning most of their neighbours (fewest
  owned nodes on ties, so churn keeps the partition balanced);
* the replicated halo *grows where it must*: an owned node's ``Nd`` can only
  gain members through a path crossing an **inserted** edge, so only owned
  nodes within ``d-1`` hops of an inserted edge's endpoints (a much tighter
  set than the full affected area, which deletions inflate for nothing) have
  their ``Nd`` recomputed (compiled frontier BFS) and any missing context is
  pulled into the fragment as node/edge inserts read from the post-delta
  source graph;
* each materialised fragment graph has its sub-delta applied in place (one
  version bump) and its cached compiled index *refreshed*, never rebuilt.

Fragments deliberately do **not** shed halo nodes that fell out of every
owned ``Nd``: each fragment stays an induced subgraph of the live graph
restricted to its node set, so surplus context can neither invent edges nor
miss them, and owned focus candidates still see their complete ``≤ d``-hop
neighbourhood — which is all Lemma 9(1) needs.  The stale surplus ages out at
the next full re-partition.

The returned :class:`FragmentUpdate` records are what
:meth:`repro.parallel.executor.ProcessExecutor.apply_delta` ships to pool
workers — the delta travels, the fragment does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.delta.ops import GraphDelta, apply_delta, _freeze_attrs
from repro.graph.digraph import PropertyGraph
from repro.index.snapshot import GraphIndex
from repro.parallel.partition import HopPreservingPartition
from repro.utils.errors import DeltaError

__all__ = ["FragmentUpdate", "apply_delta_to_partition"]

NodeId = Hashable


@dataclass(frozen=True)
class FragmentUpdate:
    """One fragment's share of a graph batch, ready to ship to a worker.

    ``graph`` is the coordinator-side materialised fragment graph *after* the
    sub-delta was applied; ``old_version`` is its mutation counter before it
    (the executor needs both to re-key its payload cache deterministically).
    ``owned_added``/``owned_removed`` carry ownership churn, which is not part
    of the fragment graph itself but is part of what a worker must know.
    ``refresh_ok`` records whether the coordinator's own index refresh took
    the incremental path — a worker replaying the same sub-delta on the same
    structure will too, so the executor only chains deltas with
    ``refresh_ok=True`` (anything else, e.g. a node-deleting batch, falls
    back to the re-ship path instead of making a pool worker rebuild).
    """

    fragment_id: int
    graph: PropertyGraph
    old_version: int
    delta: GraphDelta
    owned_added: Tuple[NodeId, ...] = ()
    owned_removed: Tuple[NodeId, ...] = ()
    refresh_ok: bool = False


def _adopting_fragment(partition, node: NodeId, graph: PropertyGraph) -> int:
    """The fragment that adopts an inserted node: most neighbours owned there,
    ties broken towards the lightest (fewest owned) fragment, then by id."""
    votes: Dict[int, int] = {}
    for neighbor in graph.neighbors(node):
        owner = partition.owner_of(neighbor)
        if owner is not None:
            votes[owner] = votes.get(owner, 0) + 1
    return min(
        partition.fragments,
        key=lambda fragment: (
            -votes.get(fragment.fragment_id, 0),
            len(fragment.owned_nodes),
            fragment.fragment_id,
        ),
    ).fragment_id


def apply_delta_to_partition(
    partition: HopPreservingPartition,
    delta: GraphDelta,
    inverse: Optional[GraphDelta] = None,
    index: Optional[GraphIndex] = None,
) -> List[FragmentUpdate]:
    """Propagate an applied graph batch into *partition*, fragment by fragment.

    Call **after** ``apply_delta(partition.source, delta)``; *inverse* is that
    call's return value (required for node deletions, whose cascaded edges
    only the inverse records).  Node sets, ownership and every materialised
    fragment graph (plus its cached compiled index) are updated in place; the
    partition stays covering and complete for the post-delta graph, which the
    regression tests assert via :meth:`HopPreservingPartition.is_covering`.

    Returns one :class:`FragmentUpdate` per materialised fragment whose graph
    structurally changed — the executor's shipping list.
    """
    graph = partition.source
    if delta.node_deletes and inverse is None:
        raise DeltaError(
            "partition maintenance needs the inverse batch when nodes are "
            "deleted (the cascaded edges are only recorded there)"
        )
    if not delta.is_structural():
        return []
    if index is None:
        index = GraphIndex.for_graph(graph)

    # Build the ownership map for the *pre-delta* owned sets before mutating
    # them; inserted-node adoption votes read it through partition.owner_of.
    partition.owner_of(None)
    deleted = set(delta.node_deletes)
    owned_dropped: Dict[int, List[NodeId]] = {}
    for fragment in partition.fragments:
        dropped = deleted & fragment.owned_nodes
        if dropped:
            owned_dropped[fragment.fragment_id] = sorted(dropped, key=str)
            fragment.owned_nodes -= dropped
        fragment.border_nodes -= deleted

    adopted: Dict[int, List[NodeId]] = {}
    for node, _label, _attrs in delta.node_inserts:
        owner = _adopting_fragment(partition, node, graph)
        adopted.setdefault(owner, []).append(node)

    merged = index.neighborhoods()
    encode = index.nodes.encode
    decode = index.nodes.decode
    scratch = bytearray(index.num_nodes)

    def within(node: NodeId, hops: int) -> Set[NodeId]:
        return set(
            map(decode, merged.nodes_within_hops_ids(encode(node), hops, visited=scratch))
        )

    def nd(node: NodeId) -> Set[NodeId]:
        return within(node, partition.d)

    # An owned node's Nd can only *grow* through a path that crosses an
    # inserted edge, so only owned nodes within d-1 hops of an inserted
    # edge's endpoints (post-delta) can need new context — a much tighter
    # set than the full affected area, which deletions inflate for nothing:
    # deletions never force halo growth (the surplus context just stays).
    grow_region: Set[NodeId] = set()
    if partition.d > 0:
        grow_seeds: Set[NodeId] = set()
        for source, target, _label in delta.edge_inserts:
            grow_seeds.add(source)
            grow_seeds.add(target)
        for seed in grow_seeds:
            grow_region |= within(seed, partition.d - 1)

    updates: List[FragmentUpdate] = []
    for fragment in partition.fragments:
        newly_owned = adopted.get(fragment.fragment_id, [])
        recompute = (fragment.owned_nodes & grow_region) | set(newly_owned)
        required: Set[NodeId] = set()
        for owned in recompute:
            required |= nd(owned)
        node_set = fragment.node_set
        pulled = required - node_set

        # The sub-delta, in source-graph vocabulary.  Edge inserts are (a)
        # the batch's own inserts that land inside the untouched node set and
        # (b) every post-graph edge incident to a pulled node with its other
        # endpoint inside the new node set; the two are disjoint because (a)
        # requires both endpoints pre-existing in the fragment.
        survivors = node_set - deleted
        new_node_set = survivors | pulled
        edge_inserts: List[Tuple[NodeId, NodeId, str]] = [
            (s, t, l)
            for (s, t, l) in delta.edge_inserts
            if s in survivors and t in survivors
        ]
        seen_pulled_edges: Set[Tuple[NodeId, NodeId, str]] = set()
        for node in pulled:
            for label in graph.out_edge_labels(node):
                for target in graph.successors(node, label):
                    if target in new_node_set:
                        seen_pulled_edges.add((node, target, label))
            for source in graph.predecessors(node):
                if source in new_node_set and source not in pulled:
                    for label in graph.edge_labels(source, node):
                        seen_pulled_edges.add((source, node, label))
        edge_inserts.extend(sorted(seen_pulled_edges, key=str))

        sub_delta = GraphDelta(
            node_inserts=tuple(
                (node, graph.node_label(node), _freeze_attrs(graph.node_attrs(node)))
                for node in sorted(pulled, key=str)
            ),
            node_deletes=tuple(node for node in delta.node_deletes if node in node_set),
            edge_inserts=tuple(edge_inserts),
            edge_deletes=tuple(
                (s, t, l)
                for (s, t, l) in delta.edge_deletes
                if s in node_set and t in node_set
            ),
            attr_sets=tuple(
                (node, key, value)
                for (node, key, value) in delta.attr_sets
                if node in new_node_set
            ),
        )

        fragment.node_set = new_node_set
        fragment.owned_nodes.update(newly_owned)

        fragment_graph = partition._graph_cache.get(fragment.fragment_id)
        if fragment_graph is None:
            # Never materialised: the next fragment_graph() call induces the
            # subgraph from the (already mutated) source — nothing to patch.
            continue
        if sub_delta.is_empty():
            continue
        old_version = fragment_graph.version
        cached_index = fragment_graph.cached_index()
        was_fresh = cached_index is not None and cached_index.version == old_version
        apply_delta(fragment_graph, sub_delta)
        refresh_ok = False
        if was_fresh and sub_delta.is_structural():
            from repro.delta.refresh import refresh_rebuild_count

            rebuilds_before = refresh_rebuild_count()
            cached_index.refreshed(sub_delta)
            refresh_ok = refresh_rebuild_count() == rebuilds_before
        if sub_delta.is_structural():
            updates.append(
                FragmentUpdate(
                    fragment_id=fragment.fragment_id,
                    graph=fragment_graph,
                    old_version=old_version,
                    delta=sub_delta,
                    owned_added=tuple(sorted(newly_owned, key=str)),
                    owned_removed=tuple(owned_dropped.get(fragment.fragment_id, ())),
                    refresh_ok=refresh_ok,
                )
            )

    partition._owner_map = None
    return updates
