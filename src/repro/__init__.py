"""repro — quantified graph patterns, quantified matching and QGARs.

A from-scratch Python reproduction of

    Wenfei Fan, Yinghui Wu, Jingbo Xu.
    "Adding Counting Quantifiers to Graph Patterns." SIGMOD 2016.

The package layers cleanly:

* :mod:`repro.graph`    — labeled directed property graphs, traversal,
  simulation, synthetic generators, I/O;
* :mod:`repro.patterns` — quantified graph patterns (QGPs), a builder and a
  textual DSL, the workload generator, and the complexity reductions;
* :mod:`repro.index`    — compiled graph snapshots (interned ids, per-label
  CSR adjacency, degree arrays, neighbourhood signatures) powering the
  ``use_index=True`` fast paths of the matching and parallel layers;
* :mod:`repro.matching` — the Enum baseline, QMatch/DMatch and the incremental
  IncQMatch for negated edges;
* :mod:`repro.parallel` — the d-hop preserving partitioner DPar and the
  parallel coordinator PQMatch;
* :mod:`repro.rules`    — quantified graph association rules (QGARs), GPARs,
  and the mining procedure;
* :mod:`repro.service`  — the query-serving layer: canonicalized pattern
  fingerprints, a version-aware LRU result cache, and the batching
  ``QueryService`` façade over PQMatch;
* :mod:`repro.delta`    — the graph-update layer: typed ``GraphDelta``
  batches, incremental index refresh, affected-area incremental matching,
  partition/pool delta shipping and standing-query maintenance;
* :mod:`repro.datasets` — Pokec-like / YAGO2-like / synthetic workloads;
* :mod:`repro.obs`      — unified observability: an opt-in metrics registry,
  span tracing with cross-process propagation, and the always-on service
  introspection behind ``QueryService.stats()``;
* :mod:`repro.serve`    — the scale-out tier: a shard router
  (``ShardedService``) over per-shard ``QueryService`` fleets, bounded
  admission with backpressure, and a CRC-checked cross-process result cache
  keyed on per-shard ``VersionVector``\\ s;
* :mod:`repro.core`     — the stable public API re-exported in one namespace.
"""

from repro.core import (
    DPar,
    DMatchOptions,
    EnumMatcher,
    GraphIndex,
    HopPreservingPartition,
    MatchResult,
    ParallelMatchResult,
    PatternBuilder,
    PQMatch,
    PropertyGraph,
    QGAR,
    QMatch,
    QuantifiedGraphPattern,
    CountingQuantifier,
    dgar_match,
    gar_match,
    mine_qgars,
    parse_pattern,
    penum_engine,
    pqmatch_engine,
    pqmatch_n_engine,
    pqmatch_s_engine,
    qmatch_engine,
    qmatch_n_engine,
    small_world_social_graph,
    QueryService,
    ResultCache,
    ServiceResult,
    Subscription,
    canonicalize,
    pattern_fingerprint,
    GraphDelta,
    apply_delta,
    graph_diff,
    inc_qmatch_delta,
    ShardedService,
    VersionVector,
    SharedResultCache,
    AdmissionConfig,
    AdmissionQueue,
    build_shards,
    MetricsRegistry,
    ServiceIntrospection,
    SlowQueryLog,
    enable_metrics,
    disable_metrics,
    active_metrics,
    get_registry,
    enable_tracing,
    disable_tracing,
    active_tracing,
    get_tracer,
    span,
    format_span_tree,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PropertyGraph",
    "GraphIndex",
    "small_world_social_graph",
    "CountingQuantifier",
    "QuantifiedGraphPattern",
    "PatternBuilder",
    "parse_pattern",
    "EnumMatcher",
    "QMatch",
    "qmatch_engine",
    "qmatch_n_engine",
    "DMatchOptions",
    "MatchResult",
    "ParallelMatchResult",
    "DPar",
    "HopPreservingPartition",
    "PQMatch",
    "pqmatch_engine",
    "pqmatch_s_engine",
    "pqmatch_n_engine",
    "penum_engine",
    "QGAR",
    "gar_match",
    "dgar_match",
    "mine_qgars",
    "QueryService",
    "ServiceResult",
    "ResultCache",
    "Subscription",
    "canonicalize",
    "pattern_fingerprint",
    "GraphDelta",
    "apply_delta",
    "graph_diff",
    "inc_qmatch_delta",
    "ShardedService",
    "VersionVector",
    "SharedResultCache",
    "AdmissionConfig",
    "AdmissionQueue",
    "build_shards",
    "MetricsRegistry",
    "ServiceIntrospection",
    "SlowQueryLog",
    "enable_metrics",
    "disable_metrics",
    "active_metrics",
    "get_registry",
    "enable_tracing",
    "disable_tracing",
    "active_tracing",
    "get_tracer",
    "span",
    "format_span_tree",
]
