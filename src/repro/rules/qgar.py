"""Quantified graph association rules (QGARs) — paper Section 6.

A QGAR ``R(xo): Q1(xo) ⇒ Q2(xo)`` pairs two QGPs sharing the query focus: the
*antecedent* ``Q1`` describes a behaviour pattern, the *consequent* ``Q2`` the
predicted behaviour (e.g. "will buy the album").  The rule's matches are

``R(xo, G) = Q1(xo, G) ∩ Q2(xo, G)``,

its **support** is ``|R(xo, G)|`` (anti-monotonic under extensions, Lemma 10),
and its **confidence** follows the local closed-world assumption (LCWA):

``conf(R, G) = |R(xo, G)| / |Q1(xo, G) ∩ Xo|``,

where ``Xo`` keeps only the "true negative" candidates — nodes that carry, for
every edge ``(xo, u)`` of the consequent, at least one outgoing edge of that
type in ``G`` (so a user with no ``buy`` edges at all is not counted as a
negative example of "buys the album").

The *quantified entity identification* (QEI) problem returns ``R(xo, G)``
whenever ``conf(R, G) ≥ η``; :func:`gar_match` is the sequential algorithm of
Corollary 11 and :func:`dgar_match` its fragment-parallel counterpart built on
PQMatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.qmatch import QMatch
from repro.parallel.coordinator import PQMatch
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.errors import RuleError

__all__ = ["QGAR", "RuleEvaluation", "gar_match", "dgar_match"]

NodeId = Hashable


@dataclass
class RuleEvaluation:
    """The full outcome of evaluating one QGAR on one graph."""

    matches: Set[NodeId] = field(default_factory=set)
    antecedent_matches: Set[NodeId] = field(default_factory=set)
    consequent_matches: Set[NodeId] = field(default_factory=set)
    negative_candidates: Set[NodeId] = field(default_factory=set)
    support: int = 0
    confidence: float = 0.0

    def identified_entities(self, eta: float) -> Set[NodeId]:
        """``R(xo, η, G)``: the matches, provided the confidence reaches *eta*."""
        if self.confidence >= eta:
            return set(self.matches)
        return set()


class QGAR:
    """A quantified graph association rule ``Q1(xo) ⇒ Q2(xo)``.

    The constructor enforces the well-formedness conditions of the paper:
    both patterns are connected, non-empty (at least one edge each), share the
    focus node id (with the same label), and do not share any edge.
    """

    def __init__(
        self,
        antecedent: QuantifiedGraphPattern,
        consequent: QuantifiedGraphPattern,
        name: str = "R",
    ) -> None:
        self.name = name
        self.antecedent = antecedent
        self.consequent = consequent
        self._validate()

    # -------------------------------------------------------------- validity

    def _validate(self) -> None:
        if self.antecedent.num_edges == 0 or self.consequent.num_edges == 0:
            raise RuleError("both the antecedent and the consequent need at least one edge")
        if not self.antecedent.has_focus() or not self.consequent.has_focus():
            raise RuleError("both patterns must declare the query focus")
        if self.antecedent.focus != self.consequent.focus:
            raise RuleError("antecedent and consequent must share the focus node id")
        focus = self.antecedent.focus
        if self.antecedent.node_label(focus) != self.consequent.node_label(focus):
            raise RuleError("the focus must carry the same label in both patterns")
        if not self.antecedent.is_connected() or not self.consequent.is_connected():
            raise RuleError("antecedent and consequent must each be connected")
        antecedent_edges = {edge.key for edge in self.antecedent.edges()}
        consequent_edges = {edge.key for edge in self.consequent.edges()}
        if antecedent_edges & consequent_edges:
            raise RuleError("antecedent and consequent must not share edges")

    # ----------------------------------------------------------- composition

    @property
    def focus(self) -> NodeId:
        return self.antecedent.focus

    def combined_pattern(self) -> QuantifiedGraphPattern:
        """``Q1 ∪ Q2`` as a single QGP (used when treating R itself as a pattern).

        Node labels must agree on shared node ids; the consequent's label wins
        only if the antecedent did not define the node.
        """
        combined = QuantifiedGraphPattern(name=f"{self.name}-combined")
        for pattern in (self.antecedent, self.consequent):
            for node in pattern.nodes():
                if combined.graph.has_node(node):
                    if combined.node_label(node) != pattern.node_label(node):
                        raise RuleError(
                            f"node {node!r} carries different labels in Q1 and Q2"
                        )
                else:
                    combined.add_node(node, pattern.node_label(node))
        for pattern in (self.antecedent, self.consequent):
            for edge in pattern.edges():
                combined.add_edge(edge.source, edge.target, edge.label, edge.quantifier)
        combined.set_focus(self.focus)
        return combined

    # ------------------------------------------------------------ evaluation

    def negative_candidate_pool(self, graph: PropertyGraph) -> Set[NodeId]:
        """``Xo``: candidates of the focus with every consequent edge *type* present.

        Under LCWA a node only counts as a negative example if the graph knows
        about the relevant relationship types for it at all.
        """
        focus_label = self.antecedent.node_label(self.focus)
        required_labels = {
            edge.label for edge in self.consequent.edges() if edge.source == self.focus
        }
        pool: Set[NodeId] = set()
        for node in graph.nodes_with_label(focus_label):
            if all(graph.out_degree(node, label) > 0 for label in required_labels):
                pool.add(node)
        return pool

    def evaluate(
        self,
        graph: PropertyGraph,
        engine: Optional[object] = None,
    ) -> RuleEvaluation:
        """Evaluate support and confidence of the rule on *graph*.

        *engine* is any object with ``evaluate_answer(pattern, graph)`` — the
        sequential QMatch by default; pass a :class:`PQMatch` instance for the
        parallel variant.
        """
        engine = engine or QMatch()
        antecedent_matches = set(engine.evaluate_answer(self.antecedent, graph))
        consequent_matches = set(engine.evaluate_answer(self.consequent, graph))
        matches = antecedent_matches & consequent_matches
        negatives = self.negative_candidate_pool(graph)
        denominator = antecedent_matches & negatives
        confidence = (len(matches) / len(denominator)) if denominator else 0.0
        return RuleEvaluation(
            matches=matches,
            antecedent_matches=antecedent_matches,
            consequent_matches=consequent_matches,
            negative_candidates=negatives,
            support=len(matches),
            confidence=confidence,
        )

    def identify(self, graph: PropertyGraph, eta: float, engine: Optional[object] = None) -> Set[NodeId]:
        """``R(xo, η, G)`` — the QEI answer (Section 6)."""
        return self.evaluate(graph, engine=engine).identified_entities(eta)

    # ---------------------------------------------------------------- dunder

    def __repr__(self) -> str:
        return (
            f"QGAR(name={self.name!r}, antecedent={self.antecedent.name!r}, "
            f"consequent={self.consequent.name!r})"
        )

    def describe(self) -> str:
        return "\n".join(
            [
                f"QGAR {self.name}: {self.antecedent.name}(xo) => {self.consequent.name}(xo)",
                self.antecedent.describe(),
                self.consequent.describe(),
            ]
        )


def gar_match(rule: QGAR, graph: PropertyGraph, eta: float) -> Set[NodeId]:
    """Sequential quantified entity identification (Corollary 11(1)).

    Returns ``R(xo, η, G)``: the rule's matches when its confidence reaches
    *eta*, and the empty set otherwise.
    """
    evaluation = rule.evaluate(graph, engine=QMatch())
    return evaluation.identified_entities(eta)


def dgar_match(
    rule: QGAR,
    graph: PropertyGraph,
    eta: float,
    num_workers: int = 4,
    d: Optional[int] = None,
    executor: str = "serial",
) -> Set[NodeId]:
    """Parallel quantified entity identification (Corollary 11(2)).

    Both patterns are evaluated fragment-parallel over one d-hop preserving
    partition whose radius covers the larger of the two pattern radii.
    Returns ``R(xo, η, G)`` like :func:`gar_match`.
    """
    radius = max(rule.antecedent.radius(), rule.consequent.radius())
    engine = PQMatch(num_workers=num_workers, d=d if d is not None else radius, executor=executor)
    evaluation = rule.evaluate(graph, engine=engine)
    return evaluation.identified_entities(eta)
