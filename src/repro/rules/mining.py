"""QGAR discovery: mine GPAR seeds, then grow quantifiers and consequents.

The paper does not contribute a full mining algorithm; its Exp-3 follows a
pragmatic two-phase procedure which this module reproduces:

1. **Mine top GPARs** (the quantifier-free rules of [16]): for a chosen focus
   label, enumerate candidate single-edge consequents and small star-shaped
   antecedents built from frequent edge features around the focus, compute
   support and LCWA confidence with the quantified-matching engine, and keep
   the rules above the thresholds.
2. **Extend each GPAR into a QGAR**: repeatedly strengthen the rule — widen
   the consequent with additional frequent edges, and raise the threshold of
   the antecedent's counting quantifiers in 10% (or +1) increments — for as
   long as the confidence stays above the threshold ``η``.  Lemma 10
   guarantees the support only shrinks along the way, so the search space is
   monotone.

The result of :func:`mine_qgars` is a ranked list of
:class:`DiscoveredRule` records, each carrying the rule and its measured
support and confidence — exactly the data reported for R5–R7 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.graph.digraph import PropertyGraph
from repro.matching.qmatch import QMatch
from repro.patterns.generator import FrequentEdge, mine_frequent_edges
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.rules.gpar import GPAR
from repro.rules.qgar import QGAR, RuleEvaluation
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["DiscoveredRule", "MiningConfig", "mine_gpars", "extend_to_qgar", "mine_qgars"]

NodeId = Hashable


@dataclass
class DiscoveredRule:
    """A mined rule together with its measured interestingness."""

    rule: QGAR
    support: int
    confidence: float

    def __repr__(self) -> str:
        return (
            f"DiscoveredRule(name={self.rule.name!r}, support={self.support}, "
            f"confidence={self.confidence:.2f})"
        )


@dataclass
class MiningConfig:
    """Knobs of the mining procedure (all with paper-faithful defaults)."""

    focus_label: Optional[str] = None
    min_support: int = 2
    min_confidence: float = 0.5
    max_antecedent_edges: int = 2
    max_rules: int = 10
    top_features: int = 8
    quantifier_step_percent: float = 10.0
    max_extension_rounds: int = 5


def _frequent_out_features(
    features: Sequence[FrequentEdge], source_label: str
) -> List[FrequentEdge]:
    return [feature for feature in features if feature.source_label == source_label]


def _build_antecedent(
    focus_label: str, features: Sequence[FrequentEdge], name: str
) -> QuantifiedGraphPattern:
    """A star-shaped conventional antecedent around the focus."""
    pattern = QuantifiedGraphPattern(name=name)
    pattern.add_node("xo", focus_label)
    pattern.set_focus("xo")
    for index, feature in enumerate(features):
        node = f"a{index}"
        pattern.add_node(node, feature.target_label)
        pattern.add_edge("xo", node, feature.edge_label)
    return pattern


def mine_gpars(
    graph: PropertyGraph,
    config: Optional[MiningConfig] = None,
    engine: Optional[QMatch] = None,
    seed: SeedLike = 0,
) -> List[DiscoveredRule]:
    """Mine top GPARs (single-edge consequents, no quantifiers) from *graph*."""
    config = config or MiningConfig()
    engine = engine or QMatch()
    rng = ensure_rng(seed)
    features = mine_frequent_edges(graph, top_k=config.top_features)
    if not features:
        return []
    focus_label = config.focus_label or features[0].source_label
    out_features = _frequent_out_features(features, focus_label)
    if not out_features:
        return []

    discovered: List[DiscoveredRule] = []
    rule_index = 0
    # Every frequent focus-out feature can serve as a consequent; the
    # antecedents are small combinations of the other features.
    for consequent_feature in out_features:
        other = [feature for feature in out_features if feature != consequent_feature]
        if not other:
            continue
        rng.shuffle(other)
        for width in range(1, min(config.max_antecedent_edges, len(other)) + 1):
            antecedent_features = other[:width]
            rule_index += 1
            antecedent = _build_antecedent(
                focus_label, antecedent_features, name=f"R{rule_index}-antecedent"
            )
            gpar = GPAR(
                antecedent,
                consequent_label=consequent_feature.edge_label,
                consequent_target_label=consequent_feature.target_label,
                name=f"R{rule_index}",
            )
            rule = gpar.as_qgar()
            evaluation = rule.evaluate(graph, engine=engine)
            if evaluation.support < config.min_support:
                continue
            if evaluation.confidence < config.min_confidence:
                continue
            discovered.append(
                DiscoveredRule(rule=rule, support=evaluation.support,
                               confidence=evaluation.confidence)
            )
            if len(discovered) >= config.max_rules:
                break
        if len(discovered) >= config.max_rules:
            break
    discovered.sort(key=lambda record: (-record.confidence, -record.support))
    return discovered


def _strengthen_quantifiers(
    pattern: QuantifiedGraphPattern, step_percent: float
) -> QuantifiedGraphPattern:
    """Raise every positive quantifier one step (ratios by *step_percent*, numerics by 1).

    Edges still carrying the existential default get their first ratio
    quantifier at *step_percent*.
    """
    strengthened = pattern.copy(name=pattern.name)
    for edge in pattern.out_edges(pattern.focus):
        quantifier = edge.quantifier
        if quantifier.is_negation:
            continue
        if quantifier.is_existential:
            replacement = CountingQuantifier.ratio_at_least(step_percent)
        elif quantifier.is_ratio:
            new_value = min(100.0, float(quantifier.value) + step_percent)
            replacement = CountingQuantifier(quantifier.op, new_value, True)
        else:
            replacement = CountingQuantifier(quantifier.op, int(quantifier.value) + 1, False)
        strengthened.set_quantifier(edge.source, edge.target, edge.label, replacement)
    return strengthened


def extend_to_qgar(
    seed_rule: QGAR,
    graph: PropertyGraph,
    eta: float,
    config: Optional[MiningConfig] = None,
    engine: Optional[QMatch] = None,
) -> DiscoveredRule:
    """Extend one GPAR-style rule into a QGAR by strengthening quantifiers.

    Quantifiers on the antecedent's focus edges are raised step by step; the
    strongest variant whose confidence stays at or above *eta* (and whose
    support stays positive) is returned.  If even the seed rule falls below
    *eta*, the seed is returned unchanged with its measured statistics.
    """
    config = config or MiningConfig()
    engine = engine or QMatch()
    best_rule = seed_rule
    best_eval = seed_rule.evaluate(graph, engine=engine)
    current = seed_rule
    for _ in range(config.max_extension_rounds):
        strengthened_antecedent = _strengthen_quantifiers(
            current.antecedent, config.quantifier_step_percent
        )
        candidate = QGAR(strengthened_antecedent, current.consequent, name=current.name)
        evaluation = candidate.evaluate(graph, engine=engine)
        if evaluation.support == 0 or evaluation.confidence < eta:
            break
        best_rule, best_eval = candidate, evaluation
        current = candidate
    return DiscoveredRule(rule=best_rule, support=best_eval.support,
                          confidence=best_eval.confidence)


def mine_qgars(
    graph: PropertyGraph,
    eta: float = 0.5,
    config: Optional[MiningConfig] = None,
    engine: Optional[QMatch] = None,
    seed: SeedLike = 0,
) -> List[DiscoveredRule]:
    """The full Exp-3 procedure: mine GPAR seeds, then extend each into a QGAR."""
    config = config or MiningConfig(min_confidence=eta)
    engine = engine or QMatch()
    seeds = mine_gpars(graph, config=config, engine=engine, seed=seed)
    extended = [
        extend_to_qgar(record.rule, graph, eta=eta, config=config, engine=engine)
        for record in seeds
    ]
    extended.sort(key=lambda record: (-record.confidence, -record.support))
    return extended
