"""GPARs: graph-pattern association rules without quantifiers (the baseline of [16]).

The paper positions QGARs against the GPARs of Fan et al. (PVLDB 2015): a GPAR
``Q1(xo) ⇒ q(xo, y)`` restricts the consequent to a *single edge* and allows
no counting quantifiers.  GPARs are both the mining seed of the paper's Exp-3
procedure (top GPARs are mined first and then *extended* with quantifiers and
richer consequents) and the natural expressivity baseline for the examples.

This module represents a GPAR as a thin wrapper producing the equivalent
:class:`~repro.rules.qgar.QGAR`, plus helpers to check the GPAR restrictions.
"""

from __future__ import annotations

from typing import Hashable

from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.rules.qgar import QGAR
from repro.utils.errors import RuleError

__all__ = ["GPAR", "is_gpar"]

NodeId = Hashable


def is_gpar(rule: QGAR) -> bool:
    """Whether *rule* satisfies the GPAR restrictions of [16].

    The antecedent must be a conventional pattern (no quantifiers beyond the
    existential default) and the consequent must be a single existential edge.
    """
    if not rule.antecedent.is_conventional:
        return False
    consequent_edges = rule.consequent.edges()
    if len(consequent_edges) != 1:
        return False
    return consequent_edges[0].is_existential


class GPAR:
    """A graph-pattern association rule with a single-edge consequent.

    Parameters
    ----------
    antecedent:
        A conventional (quantifier-free) pattern with focus ``xo``.
    consequent_label:
        The edge label of the predicted edge ``q(xo, y)``.
    consequent_target_label:
        The node label of the predicted edge's target ``y``.
    """

    def __init__(
        self,
        antecedent: QuantifiedGraphPattern,
        consequent_label: str,
        consequent_target_label: str,
        consequent_target: NodeId = "_y",
        name: str = "GPAR",
    ) -> None:
        if not antecedent.is_conventional:
            raise RuleError("a GPAR antecedent must be a conventional pattern")
        self.name = name
        self.antecedent = antecedent
        self.consequent_label = consequent_label
        self.consequent_target_label = consequent_target_label
        self.consequent_target = consequent_target

    def consequent_pattern(self) -> QuantifiedGraphPattern:
        """The single-edge consequent as a QGP sharing the antecedent's focus."""
        focus = self.antecedent.focus
        consequent = QuantifiedGraphPattern(name=f"{self.name}-consequent")
        consequent.add_node(focus, self.antecedent.node_label(focus))
        target = self.consequent_target
        if target == focus:
            raise RuleError("the consequent target must differ from the focus")
        consequent.add_node(target, self.consequent_target_label)
        consequent.add_edge(focus, target, self.consequent_label,
                            CountingQuantifier.existential())
        consequent.set_focus(focus)
        return consequent

    def as_qgar(self) -> QGAR:
        """The equivalent QGAR (GPARs are the quantifier-free special case)."""
        return QGAR(self.antecedent, self.consequent_pattern(), name=self.name)

    def __repr__(self) -> str:
        return (
            f"GPAR(name={self.name!r}, consequent="
            f"{self.consequent_label}->{self.consequent_target_label})"
        )
