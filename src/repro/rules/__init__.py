"""Quantified graph association rules: model, GPAR baseline, mining."""

from repro.rules.gpar import GPAR, is_gpar
from repro.rules.mining import (
    DiscoveredRule,
    MiningConfig,
    extend_to_qgar,
    mine_gpars,
    mine_qgars,
)
from repro.rules.qgar import QGAR, RuleEvaluation, dgar_match, gar_match

__all__ = [
    "QGAR",
    "RuleEvaluation",
    "gar_match",
    "dgar_match",
    "GPAR",
    "is_gpar",
    "DiscoveredRule",
    "MiningConfig",
    "mine_gpars",
    "extend_to_qgar",
    "mine_qgars",
]
