"""Query-serving layer: canonicalized patterns, cached answers, batched dispatch.

``repro.service`` is the request-level subsystem in front of the matching and
parallel layers — the piece a system serving heavy query traffic needs on top
of fast single-query evaluation:

* :mod:`repro.service.patterns` — a canonical form and stable SHA-256
  fingerprint for :class:`~repro.patterns.qgp.QuantifiedGraphPattern`
  (rename-, edge-order- and quantifier-spelling-invariant), so equivalent
  queries share one identity;
* :mod:`repro.service.cache` — a bounded LRU answer cache keyed on
  ``(graph, graph.version, fingerprint, engine options)`` that piggybacks on
  the graph's mutation counter: structural changes invalidate by
  unreachability, attribute updates keep it warm;
* :mod:`repro.service.server` — :class:`QueryService`, the façade that
  canonicalizes, serves hits from cache, deduplicates misses and ships them
  through the coordinator's persistent executor in one batched round, plus a
  thread-safe ``submit`` for concurrent callers.

See ``docs/ARCHITECTURE.md`` for how this layer composes with the graph,
index, matching and parallel layers, and ``benchmarks/bench_serving.py`` for
the throughput figure it is measured by.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.patterns import (
    CanonicalPattern,
    canonicalize,
    normalize_quantifier,
    pattern_fingerprint,
)
from repro.service.server import (
    DeltaNotification,
    QueryService,
    ServiceResult,
    ServiceStats,
    Subscription,
)

__all__ = [
    "CanonicalPattern",
    "canonicalize",
    "normalize_quantifier",
    "pattern_fingerprint",
    "CacheStats",
    "ResultCache",
    "QueryService",
    "ServiceResult",
    "ServiceStats",
    "Subscription",
    "DeltaNotification",
]
