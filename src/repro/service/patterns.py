"""Canonical forms and stable content hashes for quantified graph patterns.

A query-serving layer wants one cache entry per *semantic* query, but callers
spell the same query many ways: pattern variables carry arbitrary names, edges
arrive in arbitrary order, and ``σ(e) > p`` is the same constraint as
``σ(e) ≥ p+1``.  This module maps a :class:`~repro.patterns.qgp.QuantifiedGraphPattern`
to a *canonical form* that is invariant under

* **variable renaming** — node ids never enter the canonical encoding; nodes
  are addressed by a structurally determined position,
* **edge reordering** — the encoding sorts edges by canonical endpoints,
* **quantifier spelling** — numeric ``> p`` is normalised to ``≥ p+1`` (the
  rewriting the paper itself applies in Section 4.1), thresholds are rendered
  type-stably, and the existential default is one fixed token,

and derives from it a collision-resistant **fingerprint** (SHA-256 over the
encoding).  Two patterns with the same fingerprint are isomorphic as focused,
quantified patterns, hence have identical answers on every graph — which is
exactly the property the :mod:`repro.service.cache` result cache needs to
share entries between syntactically different queries.

The node ordering is computed by colour refinement (1-WL) seeded with
``(node label, is-focus)`` and refined over quantified edge contexts, followed
by exhaustive tie-breaking among the (tiny) residual symmetry classes: every
ordering consistent with the refined classes is encoded and the
lexicographically smallest encoding wins.  Validated QGPs are small (the
paper's workloads use ≤ 8 pattern nodes), and after refinement the residual
classes are almost always singletons, so the search is effectively linear; a
safety cap (:data:`MAX_TIE_ORDERINGS`) guards pathological symmetric inputs
by falling back to a name-based tie-break — still deterministic and still
sound for caching (the encoding itself never contains names; worst case two
renamings of one highly symmetric pattern miss sharing a cache entry).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from math import factorial
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier

__all__ = [
    "CanonicalPattern",
    "canonicalize",
    "pattern_fingerprint",
    "normalize_quantifier",
    "MAX_TIE_ORDERINGS",
]

NodeId = Hashable

# Upper bound on the number of tie-break orderings the canonical search will
# encode before falling back to the name-based tie-break (see module docs).
MAX_TIE_ORDERINGS = 5040  # 7!

# One normalised quantifier: a tuple of strings so that mixed quantifier
# kinds stay mutually comparable inside sorted() calls.
QuantToken = Tuple[str, ...]


def normalize_quantifier(quantifier: CountingQuantifier) -> QuantToken:
    """The spelling-invariant token of one counting quantifier.

    * negation            → ``("!",)``
    * numeric ``> p``     → ``("#", ">=", p+1)`` (the paper's own rewriting)
    * numeric ``⊙ p``     → ``("#", op, p)``
    * ratio   ``⊙ p%``    → ``("%", op, p)`` with ``p`` rendered via
      ``repr(float(p))`` so ``80`` and ``80.0`` collapse

    >>> from repro.patterns.quantifier import CountingQuantifier
    >>> normalize_quantifier(CountingQuantifier.more_than(2))
    ('#', '>=', '3')
    >>> normalize_quantifier(CountingQuantifier.at_least(3))
    ('#', '>=', '3')
    >>> normalize_quantifier(CountingQuantifier.negation())
    ('!',)
    """
    if quantifier.is_negation:
        return ("!",)
    if quantifier.is_ratio:
        return ("%", quantifier.op, repr(float(quantifier.value)))
    op = quantifier.op
    value = int(quantifier.value)
    if op == ">":
        op, value = ">=", value + 1
    return ("#", op, str(value))


# The fully ordered encoding of a pattern under one node ordering:
# (node labels by position, focus position, sorted edge tuples).
Encoding = Tuple[Tuple[str, ...], int, Tuple[Tuple[int, int, str, QuantToken], ...]]


@dataclass(frozen=True)
class CanonicalPattern:
    """The canonical form of one quantified graph pattern.

    Attributes
    ----------
    fingerprint:
        Hex SHA-256 of the canonical encoding — the cache key component.
        Equal fingerprints ⇒ isomorphic focused patterns ⇒ identical answers.
    encoding:
        The canonical encoding itself: node labels in canonical order, the
        focus position, and the sorted ``(source, target, label, quantifier)``
        edge tuples over canonical positions.
    order:
        Original node id → canonical position, for callers that need to map
        back (explanations, debugging).
    """

    fingerprint: str
    encoding: Encoding
    order: Dict[NodeId, int]

    @property
    def num_nodes(self) -> int:
        return len(self.encoding[0])

    @property
    def num_edges(self) -> int:
        return len(self.encoding[2])

    def as_pattern(self, name: str = "canonical") -> QuantifiedGraphPattern:
        """Rebuild the canonical pattern with nodes named ``x0`` … ``xN``.

        The rebuilt pattern is equivalent to every pattern sharing this
        fingerprint; it is what a service logs or persists when the original
        (arbitrarily named) query object is long gone.
        """
        labels, focus_position, edges = self.encoding
        pattern = QuantifiedGraphPattern(name=name)
        for position, label in enumerate(labels):
            pattern.add_node(f"x{position}", label)
        for source, target, label, token in edges:
            pattern.add_edge(f"x{source}", f"x{target}", label, _token_to_quantifier(token))
        pattern.set_focus(f"x{focus_position}")
        return pattern


def _token_to_quantifier(token: QuantToken) -> CountingQuantifier:
    """Inverse of :func:`normalize_quantifier` (on normalised tokens)."""
    if token == ("!",):
        return CountingQuantifier.negation()
    kind, op, value = token
    if kind == "%":
        return CountingQuantifier(op, float(value), is_ratio=True)
    return CountingQuantifier(op, int(value), is_ratio=False)


def _refine_colors(
    nodes: Sequence[NodeId],
    focus: NodeId,
    labels: Dict[NodeId, str],
    out_adj: Dict[NodeId, List[Tuple[str, QuantToken, NodeId]]],
    in_adj: Dict[NodeId, List[Tuple[str, QuantToken, NodeId]]],
) -> Dict[NodeId, int]:
    """1-WL colour refinement over the quantified pattern structure.

    Colours start from ``(node label, is-focus)`` and are repeatedly refined
    with the sorted multiset of ``(edge label, quantifier, neighbour colour)``
    contexts in both directions, then compressed to dense ranks.  Because the
    colour contents are built only from labels, quantifiers and structure, the
    rank assignment is invariant under node renaming.
    """
    seed = {node: (labels[node], node == focus) for node in nodes}
    ranked = sorted(set(seed.values()))
    colors = {node: ranked.index(seed[node]) for node in nodes}
    for _ in range(len(nodes)):
        refined = {
            node: (
                colors[node],
                tuple(sorted((lbl, tok, colors[t]) for lbl, tok, t in out_adj[node])),
                tuple(sorted((lbl, tok, colors[s]) for lbl, tok, s in in_adj[node])),
            )
            for node in nodes
        }
        ranked = sorted(set(refined.values()))
        new_colors = {node: ranked.index(refined[node]) for node in nodes}
        if len(ranked) == len(set(colors.values())):
            return new_colors
        colors = new_colors
    return colors


def _encode_under(
    order: Dict[NodeId, int],
    labels: Dict[NodeId, str],
    focus: NodeId,
    edge_rows: Sequence[Tuple[NodeId, NodeId, str, QuantToken]],
) -> Encoding:
    by_position = sorted(order, key=order.__getitem__)
    node_part = tuple(labels[node] for node in by_position)
    edge_part = tuple(
        sorted((order[s], order[t], lbl, tok) for s, t, lbl, tok in edge_rows)
    )
    return (node_part, order[focus], edge_part)


def canonicalize(pattern: QuantifiedGraphPattern) -> CanonicalPattern:
    """Compute the canonical form (and fingerprint) of *pattern*.

    The pattern must have a query focus; it does not need to pass
    :meth:`~repro.patterns.qgp.QuantifiedGraphPattern.validate` (the service
    validates before dispatching, but canonicalization itself only needs the
    structure).
    """
    focus = pattern.focus  # raises PatternError when unset
    nodes = list(pattern.nodes())
    labels = {node: pattern.node_label(node) for node in nodes}
    edge_rows: List[Tuple[NodeId, NodeId, str, QuantToken]] = []
    out_adj: Dict[NodeId, List[Tuple[str, QuantToken, NodeId]]] = {n: [] for n in nodes}
    in_adj: Dict[NodeId, List[Tuple[str, QuantToken, NodeId]]] = {n: [] for n in nodes}
    for edge in pattern.edges():
        token = normalize_quantifier(edge.quantifier)
        edge_rows.append((edge.source, edge.target, edge.label, token))
        out_adj[edge.source].append((edge.label, token, edge.target))
        in_adj[edge.target].append((edge.label, token, edge.source))

    colors = _refine_colors(nodes, focus, labels, out_adj, in_adj)

    # Group nodes into the refined colour classes, ordered by colour rank.
    classes: Dict[int, List[NodeId]] = {}
    for node in nodes:
        classes.setdefault(colors[node], []).append(node)
    class_list = [classes[color] for color in sorted(classes)]

    tie_orderings = 1
    for members in class_list:
        tie_orderings *= factorial(len(members))

    if tie_orderings > MAX_TIE_ORDERINGS:
        # Pathologically symmetric pattern: deterministic name-based
        # tie-break instead of the exhaustive search.  The encoding is still
        # name-free, so soundness is unaffected (see module docs).
        order: Dict[NodeId, int] = {}
        position = 0
        for members in class_list:
            for node in sorted(members, key=lambda n: (str(type(n).__name__), str(n))):
                order[node] = position
                position += 1
        best_order, best_encoding = order, _encode_under(order, labels, focus, edge_rows)
    else:
        best_order, best_encoding = None, None
        for permutations in itertools.product(
            *[itertools.permutations(members) for members in class_list]
        ):
            order = {}
            position = 0
            for block in permutations:
                for node in block:
                    order[node] = position
                    position += 1
            encoding = _encode_under(order, labels, focus, edge_rows)
            if best_encoding is None or encoding < best_encoding:
                best_order, best_encoding = order, encoding

    digest = hashlib.sha256(
        ("qgp-canon-v1:" + repr(best_encoding)).encode("utf-8")
    ).hexdigest()
    return CanonicalPattern(fingerprint=digest, encoding=best_encoding, order=best_order)


def pattern_fingerprint(pattern: QuantifiedGraphPattern) -> str:
    """The stable content hash of *pattern* (see :func:`canonicalize`).

    >>> from repro.patterns.builder import PatternBuilder
    >>> a = (PatternBuilder("A").focus("x", "person").node("y", "product")
    ...      .edge("x", "y", "buy", at_least=2).build())
    >>> b = (PatternBuilder("B").focus("u", "person").node("v", "product")
    ...      .edge("u", "v", "buy", more_than=1).build())
    >>> pattern_fingerprint(a) == pattern_fingerprint(b)
    True
    """
    return canonicalize(pattern).fingerprint
