"""A bounded, version-aware LRU cache for query answers.

The cache sits between the :class:`~repro.service.server.QueryService` façade
and the matching engines: an answer computed once for a canonicalized pattern
(:mod:`repro.service.patterns`) is reused for every equivalent query — for as
long as the graph has not structurally changed.

Invalidation piggybacks on the library's existing staleness discipline
instead of scanning or subscribing to anything: every entry is keyed on the
graph's **mutation counter** (:attr:`repro.graph.PropertyGraph.version`, the
same counter :class:`repro.index.GraphIndex` freshness checks use).  A
structural mutation bumps the counter, so every stale entry becomes
*unreachable* in O(1) — no invalidation pass — and ages out of the bounded
LRU under new traffic.  Attribute-only updates do **not** bump the counter
(the matching semantics never read attributes), so they keep the cache warm —
exactly mirroring the index layer's contract.

Entries **pin the graph object they answer for**: the key uses ``id(graph)``
for speed, and pinning makes object-identity reuse of a dead graph's id
impossible while its entries live (the same discipline
:class:`repro.parallel.executor.ProcessExecutor` applies to payloads).  A
lookup additionally verifies ``entry.graph is graph``.

All operations take an internal lock, so a cache instance may be shared by
concurrent ``submit`` callers.  Counters (hits / misses / insertions /
evictions) are exposed through :attr:`ResultCache.stats` and surfaced by the
serving benchmark's figure JSON.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.graph.digraph import PropertyGraph
from repro.obs.metrics import get_registry
from repro.utils.errors import ReproError

__all__ = ["CacheStats", "ResultCache"]

NodeId = Hashable

# (graph identity, graph version, pattern fingerprint, engine options key).
# The version slot is deliberately *opaque*: a single service files entries
# under the graph's scalar mutation counter, while the scale-out router files
# them under a per-shard :class:`repro.serve.VersionVector`.  The cache never
# does arithmetic on the slot — it only compares it for equality against the
# graph object's current ``.version`` — so any hashable, equality-comparable
# version token works.  Collapsing a fleet's vector to a scalar here would
# alias distinct fleet states (see ``tests/test_serve_versions.py`` for the
# stale read that permits).
CacheKey = Tuple[int, Hashable, str, Hashable]


@dataclass
class CacheStats:
    """Monotone counters describing one cache's lifetime behaviour.

    ``purged`` counts stale entries dropped by :meth:`ResultCache.purge_stale`
    (as opposed to capacity ``evictions``); ``migrated`` counts entries
    carried forward across a graph version by
    :meth:`ResultCache.carry_forward`.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    purged: int = 0
    migrated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (1.0 on an untouched cache, by convention)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "purged": self.purged,
            "migrated": self.migrated,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Entry:
    """One cached answer, pinning the graph it was computed on."""

    __slots__ = ("graph", "answer")

    def __init__(self, graph: PropertyGraph, answer: FrozenSet[NodeId]) -> None:
        self.graph = graph
        self.answer = answer


class ResultCache:
    """Bounded LRU mapping ``(graph, version, fingerprint, options)`` → answer.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is evicted
        first.  Stale entries (superseded graph versions) are preferentially
        unreachable anyway and simply age out.
    """

    def __init__(self, capacity: int = 1024, purge_interval: int = 64) -> None:
        if capacity <= 0:
            raise ReproError("cache capacity must be positive")
        if purge_interval <= 0:
            raise ReproError("purge interval must be positive")
        self.capacity = capacity
        # Every purge_interval insertions, store() sweeps superseded-version
        # entries out (see purge_stale): stale entries are unreachable by
        # construction, but while they wait for LRU eviction they pin their —
        # possibly mutated-and-forgotten — graph object alive.
        self.purge_interval = purge_interval
        self._inserts_since_purge = 0
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ----------------------------------------------------------------- access

    def _key(
        self,
        graph: PropertyGraph,
        fingerprint: str,
        options_key: Hashable,
        version: Optional[Hashable],
    ) -> CacheKey:
        return (
            id(graph),
            graph.version if version is None else version,
            fingerprint,
            options_key,
        )

    def lookup(
        self,
        graph: PropertyGraph,
        fingerprint: str,
        options_key: Hashable = None,
        version: Optional[Hashable] = None,
    ) -> Optional[FrozenSet[NodeId]]:
        """The cached answer for *fingerprint* on *graph*'s current version.

        Returns ``None`` on a miss.  A hit refreshes the entry's LRU position.
        The answer is a ``frozenset`` — share it freely, it cannot be mutated
        into disagreeing with the cache.

        ``version`` pins the graph version the caller observed; callers that
        compute on a miss **must** pass the version they looked up under to
        the matching :meth:`store`, so an answer computed against version *V*
        can never be filed under a later version if the graph mutates while
        the computation runs.
        """
        key = self._key(graph, fingerprint, options_key, version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.graph is graph:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                answer = entry.answer
            else:
                self.stats.misses += 1
                answer = None
        registry = get_registry()
        if registry:
            name = "service.cache.hits" if answer is not None else "service.cache.misses"
            registry.counter(name).inc()
        return answer

    def store(
        self,
        graph: PropertyGraph,
        fingerprint: str,
        answer: Iterable[NodeId],
        options_key: Hashable = None,
        version: Optional[Hashable] = None,
    ) -> FrozenSet[NodeId]:
        """Insert (or refresh) the answer for *fingerprint*.

        Pass the *version* the answer was computed against (see
        :meth:`lookup`); without it the graph's current counter is used,
        which is only safe when no mutation can have interleaved.
        """
        frozen = frozenset(answer)
        key = self._key(graph, fingerprint, options_key, version)
        evicted = 0
        with self._lock:
            self._entries[key] = _Entry(graph, frozen)
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            self._inserts_since_purge += 1
            if self._inserts_since_purge >= self.purge_interval:
                self._purge_stale_locked()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
            occupancy = len(self._entries)
        registry = get_registry()
        if registry:
            registry.counter("service.cache.insertions").inc()
            if evicted:
                registry.counter("service.cache.evictions").inc(evicted)
            registry.gauge("service.cache.entries").set(occupancy)
        return frozen

    # -------------------------------------------------------------- migration

    def peek(
        self,
        graph: PropertyGraph,
        fingerprint: str,
        options_key: Hashable = None,
        version: Optional[Hashable] = None,
    ) -> Optional[FrozenSet[NodeId]]:
        """Like :meth:`lookup`, but invisible: no stats, no LRU refresh.

        The delta-migration path inspects cached answers to decide carry vs
        drop; that inspection is bookkeeping, not traffic, and must not skew
        hit rates or entry recency.
        """
        key = self._key(graph, fingerprint, options_key, version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.graph is graph:
                return entry.answer
            return None

    def fingerprints_for(
        self, graph: PropertyGraph, version: Hashable
    ) -> Tuple[Tuple[str, Hashable], ...]:
        """The ``(fingerprint, options key)`` pairs cached for one graph version.

        The delta layer iterates these to decide, entry by entry, whether an
        answer can be carried across an applied batch (see
        :meth:`repro.service.server.QueryService.apply_delta`).
        """
        graph_id = id(graph)
        with self._lock:
            return tuple(
                (key[2], key[3])
                for key, entry in self._entries.items()
                if key[0] == graph_id and key[1] == version and entry.graph is graph
            )

    def carry_forward(
        self,
        graph: PropertyGraph,
        fingerprints: Iterable[Tuple[str, Hashable]],
        old_version: Hashable,
        new_version: Hashable,
    ) -> int:
        """Re-file cached answers from *old_version* under *new_version*.

        The **caller** owns the soundness argument — the cache cannot know
        whether an answer survived a mutation; it only moves what it is told
        survives, atomically under its lock.  The old entries are dropped
        (they are unreachable anyway), the carried ones keep the answer
        object.  Returns the number of entries carried.

        The versions are opaque tokens, not counters (see :data:`CacheKey`):
        a sharded fleet carries entries between *vectors*, and this method
        must never assume ``new_version == old_version + 1`` — there is no
        ``+ 1`` on a vector, and inventing one by collapsing to a scalar is
        exactly the aliasing bug ``tests/test_serve_versions.py`` pins.
        """
        carried = 0
        with self._lock:
            for fingerprint, options_key in fingerprints:
                old_key = self._key(graph, fingerprint, options_key, old_version)
                entry = self._entries.pop(old_key, None)
                if entry is None or entry.graph is not graph:
                    continue
                new_key = self._key(graph, fingerprint, options_key, new_version)
                self._entries[new_key] = entry
                self._entries.move_to_end(new_key)
                carried += 1
            self.stats.migrated += carried
        registry = get_registry()
        if registry and carried:
            registry.counter("service.cache.migrated").inc(carried)
        return carried

    # -------------------------------------------------------------- lifecycle

    def purge_stale(self) -> int:
        """Drop every entry whose graph has moved past the entry's version.

        Stale entries are already unreachable (their version is no longer
        looked up), but until LRU pressure evicts them they pin their graph
        object — a mutated-and-replaced graph could be kept alive behind
        entries nobody can hit.  ``store`` runs this sweep automatically every
        :attr:`purge_interval` insertions; call it directly after bulk
        mutations.  Returns the number of entries dropped.
        """
        with self._lock:
            dropped = self._purge_stale_locked()
        registry = get_registry()
        if registry and dropped:
            registry.counter("service.cache.purged").inc(dropped)
        return dropped

    def _purge_stale_locked(self) -> int:
        stale = [
            key for key, entry in self._entries.items() if entry.graph.version != key[1]
        ]
        for key in stale:
            del self._entries[key]
        self.stats.purged += len(stale)
        self._inserts_since_purge = 0
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}/{self.capacity}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
