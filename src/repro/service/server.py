"""The query-serving façade: canonicalize → cache → batched parallel dispatch.

:class:`QueryService` is the request-level layer in front of
:class:`~repro.parallel.coordinator.PQMatch`.  Where the coordinator answers
one pattern per call — walking candidate filtering, DMatch and the negated
edges from scratch every time — the service recognises *traffic*:

1. every incoming pattern is **canonicalized**
   (:mod:`repro.service.patterns`), so syntactically different spellings of
   one query share a single identity (its fingerprint);
2. answers are served from a **version-aware LRU cache**
   (:mod:`repro.service.cache`) keyed on the graph's mutation counter —
   structural mutations invalidate by unreachability, attribute updates keep
   the cache warm;
3. cache misses inside one batch are **deduplicated** by fingerprint and
   shipped as a single executor round: one
   :class:`~repro.parallel.worker.FragmentTask` per (unique pattern ×
   fragment), all submitted to the coordinator's persistent executor at once
   instead of one dispatch round per query.  On the process backend the
   fragments themselves were already shipped at pool creation, so a serving
   round moves only patterns and answers.

The pool, partition and executor are owned by the wrapped coordinator and
reused for the service's lifetime (close the service — or use it as a context
manager — to release pool processes).

Concurrency model: :meth:`QueryService.evaluate` and
:meth:`~QueryService.evaluate_many` serialise on an internal lock (the
matching engines are not thread-safe), while :meth:`QueryService.submit` is
the thread-safe entry point — it enqueues the query and returns a
:class:`concurrent.futures.Future`; a single dispatcher thread drains the
queue and evaluates whatever accumulated as **one batch**, so concurrent
callers amortise dispatch and share cache fills for duplicate queries.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future
from time import perf_counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.graph.digraph import PropertyGraph
from repro.matching.qmatch import QMatch
from repro.obs.explain import ExplainReport, StatsRegistry, build_report
from repro.obs.flight import FlightRecorder
from repro.obs.introspect import ServiceIntrospection
from repro.obs.metrics import get_registry
from repro.obs.trace import TraceContext, get_tracer, span
from repro.parallel.coordinator import PQMatch
from repro.parallel.worker import FragmentTask, engine_to_spec, options_key_from_spec
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.plan.cache import PlanCache
from repro.service.cache import ResultCache
from repro.service.patterns import CanonicalPattern, canonicalize
from repro.utils.counters import WorkCounter
from repro.utils.errors import ReproError
from repro.utils.timing import Timer

__all__ = [
    "QueryService",
    "ServiceResult",
    "ServiceStats",
    "Subscription",
    "DeltaNotification",
]


@dataclass(frozen=True)
class ServiceResult:
    """One served answer.

    ``answer`` is a frozenset — cached and freshly computed answers are the
    same immutable object family, so callers can compare them byte-for-byte
    with a cold :class:`~repro.parallel.coordinator.PQMatch` run.

    ``counter`` carries the merged :class:`~repro.utils.counters.WorkCounter`
    of the dispatch that computed the answer — ``None`` for cache hits (no
    matching work ran).  The scale-out router sums these across shards and
    the oracle tests assert the sum against the per-shard parts.
    """

    pattern: str
    fingerprint: str
    answer: FrozenSet
    cached: bool
    elapsed: float = 0.0
    counter: Optional[WorkCounter] = None

    def __len__(self) -> int:
        return len(self.answer)

    def __contains__(self, node: object) -> bool:
        return node in self.answer


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`QueryService`.

    ``deduplicated`` counts queries answered by sharing another query's
    computation *within the same batch* (cache hits are counted by the cache
    itself); ``dispatch_rounds`` counts executor rounds — the quantity batching
    minimises; ``computed`` counts unique patterns that actually reached the
    matching layer.  ``memo_hits`` counts canonicalizations skipped by the
    per-pattern-object memo; the ``delta_*`` family describes update batches:
    batches applied, cache entries carried across a version vs dropped, and
    standing-query answers delta-maintained.

    The object doubles as the service's introspection entry point: *reading*
    attributes (``service.stats.computed``) gives the lifetime counters, while
    *calling* it (``service.stats()``) returns the full introspection snapshot
    — per-fingerprint p50/p99 latencies, cache occupancy and hit rate, pool
    epoch, standing-query counts and the slow-query log — via the owning
    service's :meth:`QueryService.introspect`.
    """

    served: int = 0
    batches: int = 0
    dispatch_rounds: int = 0
    computed: int = 0
    deduplicated: int = 0
    submitted: int = 0
    memo_hits: int = 0
    deltas_applied: int = 0
    delta_cache_carried: int = 0
    delta_cache_dropped: int = 0
    delta_subscription_updates: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "served": self.served,
            "batches": self.batches,
            "dispatch_rounds": self.dispatch_rounds,
            "computed": self.computed,
            "deduplicated": self.deduplicated,
            "submitted": self.submitted,
            "memo_hits": self.memo_hits,
            "deltas_applied": self.deltas_applied,
            "delta_cache_carried": self.delta_cache_carried,
            "delta_cache_dropped": self.delta_cache_dropped,
            "delta_subscription_updates": self.delta_subscription_updates,
        }

    def __call__(self) -> Dict[str, object]:
        provider = getattr(self, "_snapshot_provider", None)
        if provider is None:
            return dict(self.as_dict())
        return provider()


@dataclass(frozen=True)
class DeltaNotification:
    """One standing-query answer change, as delivered to subscribers.

    ``version`` is the graph version the new answer holds for; ``added`` and
    ``removed`` are the answer diff against the previous version.
    """

    version: int
    added: FrozenSet
    removed: FrozenSet
    aff_size: int = 0

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


class Subscription:
    """A standing query: its answer is *maintained* across graph deltas.

    Created by :meth:`QueryService.subscribe`.  ``answer`` always reflects the
    service graph's current version; every structural batch the service
    applies re-verifies only the affected area (:func:`repro.delta.inc_qmatch_delta`)
    and, when the answer changed, appends a :class:`DeltaNotification` to
    ``notifications`` and invokes the optional callback.  Cancel with
    :meth:`cancel` (idempotent) to stop maintenance.
    """

    def __init__(
        self,
        service: "QueryService",
        pattern: QuantifiedGraphPattern,
        fingerprint: str,
        answer: FrozenSet,
        version: int,
        callback: Optional[Callable[["Subscription", DeltaNotification], None]] = None,
    ) -> None:
        self.pattern = pattern
        self.fingerprint = fingerprint
        self.answer = answer
        self.version = version
        self.callback = callback
        self.notifications: List[DeltaNotification] = []
        self.active = True
        self._service = service

    def cancel(self) -> None:
        """Stop maintaining this subscription (safe to call twice)."""
        if self.active:
            self.active = False
            self._service._drop_subscription(self)

    def __repr__(self) -> str:
        return (
            f"Subscription(pattern={self.pattern.name!r}, |answer|={len(self.answer)}, "
            f"version={self.version}, active={self.active})"
        )


def _engine_options_key(engine: object) -> Hashable:
    """A hashable identity for the engine configuration part of cache keys.

    Answers are engine-independent by the equivalence theorems the test suite
    pins down, but the cache still refuses to *assume* that: results computed
    under one engine configuration are never served for another.  The standard
    :class:`~repro.matching.qmatch.QMatch` maps to its full option tuple
    (``DMatchOptions`` is a frozen, hashable dataclass); anything else maps to
    its type identity.
    """
    return options_key_from_spec(engine_to_spec(engine))


class QueryService:
    """Serve quantified-pattern queries against one graph, with reuse.

    Parameters
    ----------
    graph:
        The live :class:`~repro.graph.PropertyGraph` being served.  The
        service reads its mutation counter on every batch, so structural
        updates between batches are picked up automatically (stale cache
        entries become unreachable, the coordinator re-partitions and — on
        the process backend — re-ships fragments).
    coordinator:
        The :class:`~repro.parallel.coordinator.PQMatch` that evaluates cache
        misses; defaults to a fresh serial-executor coordinator.  The service
        owns it: :meth:`close` closes it.
    cache_capacity:
        Bound on the number of cached answers (LRU beyond it).
    use_plans:
        Compile each unique fingerprint once into a
        :class:`repro.plan.CompiledPlan` (cached in a bounded
        :class:`repro.plan.PlanCache` beside the result cache) and hand it to
        the dispatch, so a result-cache miss still hits a warm plan.  Only
        effective with the standard :class:`QMatch` engine; answers and work
        counters are byte-identical either way.
    plan_cache_capacity:
        Bound on the plan cache (both epoch entries and compiled programs).

    >>> from repro.graph.generators import small_world_social_graph
    >>> from repro.datasets.workloads import workload_patterns
    >>> graph = small_world_social_graph(60, 150, seed=3)
    >>> queries = workload_patterns(graph, count=2, seed=5)
    >>> with QueryService(graph) as service:
    ...     first = service.evaluate_many(queries + queries)
    ...     again = service.evaluate(queries[0])
    >>> [r.cached for r in first], again.cached
    ([False, False, True, True], True)
    """

    def __init__(
        self,
        graph: PropertyGraph,
        coordinator: Optional[PQMatch] = None,
        cache_capacity: int = 1024,
        name: str = "QueryService",
        slow_query_threshold: Optional[float] = None,
        introspection_capacity: int = 512,
        slow_query_capacity: int = 64,
        use_plans: bool = True,
        plan_cache_capacity: int = 256,
        flight_capacity: int = 256,
        stats_registry_capacity: int = 256,
    ) -> None:
        self.graph = graph
        self.coordinator = coordinator if coordinator is not None else PQMatch(
            num_workers=4, d=2, engine=QMatch()
        )
        self.cache = ResultCache(cache_capacity)
        self.plans = PlanCache(plan_cache_capacity)
        self.name = name
        self.stats = ServiceStats()
        # Calling service.stats() (vs reading its counter attributes) yields
        # the full introspection snapshot.
        self.stats._snapshot_provider = self.introspect
        # Request-level accounting: per-fingerprint traffic + latency
        # histograms and the (opt-in via slow_query_threshold) slow-query log.
        self.introspection = ServiceIntrospection(
            capacity=introspection_capacity,
            slow_query_threshold=slow_query_threshold,
            slow_query_capacity=slow_query_capacity,
        )
        # Always-on, bounded post-mortem ring buffers (capacity 0 disables).
        self.flight = FlightRecorder(flight_capacity)
        # The per-fingerprint estimated-vs-observed feed behind explain() —
        # epoch key is the graph version each computed answer ran against.
        self.stats_registry = StatsRegistry(stats_registry_capacity)
        self._options_key = _engine_options_key(self.coordinator.engine)
        # Plans are only wired through for the standard QMatch engine: an
        # opaque engine would reject the plan keyword inside match_fragment's
        # TypeError fallback and silently lose its focus restriction with it.
        self._plans_enabled = bool(use_plans) and self._options_key[0] == "qmatch"
        # Prepared-statement style canonicalization memo: repeat submissions
        # of the *same pattern object* skip the ~50µs canonicalize.  Weak keys
        # so the memo never pins a caller's pattern; callers must treat a
        # submitted pattern as frozen (mutating it would stale the memo — the
        # same contract a prepared statement has).
        self._canonical_memo: "weakref.WeakKeyDictionary[QuantifiedGraphPattern, CanonicalPattern]" = (
            weakref.WeakKeyDictionary()
        )
        # fingerprint -> representative pattern object, kept so update batches
        # can reason per cached entry (radius, focus label) during migration.
        # Bounded like the answer cache; an evicted representative only costs
        # a dropped carry-forward.
        self._patterns: "OrderedDict[str, QuantifiedGraphPattern]" = OrderedDict()
        self._subscriptions: List[Subscription] = []
        # Serialises evaluation (engines, partition and executor are not
        # thread-safe); submit() only ever touches it via the dispatcher.
        self._evaluate_lock = threading.RLock()
        # submit() machinery: pending (pattern, future, trace context,
        # enqueue wall/perf timestamps) tuples drained in batches by a single
        # lazily started dispatcher thread.
        self._pending: List[
            Tuple[QuantifiedGraphPattern, Future, TraceContext, float, float]
        ] = []
        self._pending_lock = threading.Lock()
        self._pending_signal = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False

    # -------------------------------------------------------------- one query

    def evaluate(self, pattern: QuantifiedGraphPattern) -> ServiceResult:
        """Serve one pattern (cache → canonical dedupe → parallel dispatch)."""
        return self.evaluate_many([pattern])[0]

    def evaluate_answer(self, pattern: QuantifiedGraphPattern, graph=None) -> FrozenSet:
        """Engine-interface parity helper returning only the answer set.

        ``graph`` must be the served graph when given — a service is bound to
        one graph; passing another is almost certainly a bug, so it raises.
        """
        if graph is not None and graph is not self.graph:
            raise ReproError(
                f"{self.name} serves graph {self.graph.name!r}; "
                f"got a query for {graph.name!r}"
            )
        return self.evaluate(pattern).answer

    # ------------------------------------------------------------- batch path

    def evaluate_many(
        self, patterns: Sequence[QuantifiedGraphPattern]
    ) -> List[ServiceResult]:
        """Serve a batch of patterns, in input order.

        Duplicate (equivalent) patterns inside the batch are computed once;
        all cache misses ship to the executor in a single round.  The call is
        all-or-nothing: an invalid pattern anywhere in the batch raises (the
        :meth:`submit` path isolates failures per request instead, so one
        caller's bad pattern never fails a coalesced stranger's).
        """
        with self._evaluate_lock:
            # The closed-check must share the evaluation lock that close()
            # takes around the executor shutdown: a caller that passed an
            # unlocked check could otherwise resume after close() finished
            # and lazily resurrect a fresh process pool nothing would ever
            # shut down.
            if self._closed:
                raise ReproError(f"{self.name} is closed")
            return self._evaluate_batch(list(patterns))

    def _serve_batch(
        self,
        patterns: Sequence[QuantifiedGraphPattern],
        waits: Optional[List[float]] = None,
    ) -> List[ServiceResult]:
        """The closed-check-free batch path: the dispatcher drains queued
        submissions through this while :meth:`close` is joining it (close
        shuts the executor down only after the join returns)."""
        with self._evaluate_lock:
            return self._evaluate_batch(list(patterns), waits=waits)

    def _evaluate_batch(
        self,
        patterns: List[QuantifiedGraphPattern],
        waits: Optional[List[float]] = None,
    ) -> List[ServiceResult]:
        if not patterns:
            return []
        graph = self.graph
        # The graph version is read ONCE per batch: answers computed for the
        # misses below are filed under this version even if the owning thread
        # mutates the graph while the dispatch runs — a concurrent mutation
        # must never let a pre-mutation answer masquerade as a fresh one.
        version = graph.version
        results: List[Optional[ServiceResult]] = [None] * len(patterns)
        # fingerprint -> (representative pattern, canonical form, positions
        # awaiting it) — the form rides along so dispatch can attach the
        # compiled plan without re-canonicalizing.
        missing: Dict[str, Tuple[QuantifiedGraphPattern, CanonicalPattern, List[int]]] = {}
        # Per-request service time: a hit costs its lookup; a miss costs the
        # lookup plus its fingerprint's share of the dispatch round (the sum
        # of its fragments' evaluation times) — this is what feeds the
        # per-fingerprint p50/p99 and the slow-query log.
        request_elapsed: List[float] = [0.0] * len(patterns)
        compute_counters: Dict[str, WorkCounter] = {}
        with span("service.batch", size=len(patterns)), Timer() as timer:
            forms = [self._canonical(pattern) for pattern in patterns]
            for position, (pattern, form) in enumerate(zip(patterns, forms)):
                lookup_started = perf_counter()
                answer = self.cache.lookup(
                    graph, form.fingerprint, self._options_key, version=version
                )
                request_elapsed[position] = perf_counter() - lookup_started
                if answer is not None:
                    results[position] = ServiceResult(
                        pattern=pattern.name,
                        fingerprint=form.fingerprint,
                        answer=answer,
                        cached=True,
                    )
                else:
                    entry = missing.setdefault(form.fingerprint, (pattern, form, []))
                    entry[2].append(position)

            plan_labels: Dict[str, str] = {}
            if missing:
                unique = [
                    (fingerprint, pattern, form)
                    for fingerprint, (pattern, form, _) in missing.items()
                ]
                answers, timings, compute_counters, plan_labels = self._dispatch_batch(
                    graph, unique
                )
                for fingerprint, (pattern, form, positions) in missing.items():
                    answer = self.cache.store(
                        graph,
                        fingerprint,
                        answers[fingerprint],
                        self._options_key,
                        version=version,
                    )
                    self.stats_registry.record(
                        fingerprint,
                        pattern.name,
                        version,
                        counter=compute_counters.get(fingerprint),
                        answer_size=len(answer),
                        elapsed=timings.get(fingerprint, 0.0),
                    )
                    for position in positions:
                        request_elapsed[position] += timings.get(fingerprint, 0.0)
                        results[position] = ServiceResult(
                            pattern=patterns[position].name,
                            fingerprint=fingerprint,
                            answer=answer,
                            cached=False,
                            counter=compute_counters.get(fingerprint),
                        )
                self.stats.computed += len(missing)
                self.stats.deduplicated += sum(
                    len(positions) - 1 for _, _, positions in missing.values()
                )

        self.stats.served += len(patterns)
        self.stats.batches += 1
        elapsed = timer.elapsed
        batch_size = len(patterns)
        flight = self.flight
        for position, result in enumerate(results):
            cache_route = "l1" if result.cached else "compute"
            admission_wait = waits[position] if waits is not None else 0.0
            slow = self.introspection.observe(
                fingerprint=result.fingerprint,
                pattern_name=result.pattern,
                elapsed=request_elapsed[position],
                cached=result.cached,
                counter=None if result.cached else compute_counters.get(result.fingerprint),
                batch_size=batch_size,
                plan="" if result.cached else plan_labels.get(result.fingerprint, ""),
                cache_route=cache_route,
                admission_wait=admission_wait,
            )
            if flight and not result.cached:
                # Computed-work grain only: L1 hits stay off the recorder so
                # the default hot path costs two falsy checks, not an event.
                flight.record(
                    "query",
                    service=self.name,
                    fingerprint=result.fingerprint,
                    pattern=result.pattern,
                    cached=result.cached,
                    cache_route=cache_route,
                    elapsed=request_elapsed[position],
                    batch_size=batch_size,
                    admission_wait=admission_wait,
                )
            if flight and slow is not None:
                flight.record("slow_query", service=self.name, **slow.as_dict())
        registry = get_registry()
        if registry:
            registry.counter("service.batches").inc()
            registry.counter("service.served").inc(batch_size)
            registry.histogram("service.batch_seconds").observe(elapsed)
        return [
            ServiceResult(
                pattern=result.pattern,
                fingerprint=result.fingerprint,
                answer=result.answer,
                cached=result.cached,
                elapsed=elapsed,
                counter=result.counter,
            )
            for result in results
        ]

    def _dispatch_batch(
        self,
        graph: PropertyGraph,
        unique: List[Tuple[str, QuantifiedGraphPattern, CanonicalPattern]],
    ) -> Tuple[
        Dict[str, FrozenSet], Dict[str, float], Dict[str, WorkCounter], Dict[str, str]
    ]:
        """Evaluate the unique cache misses in one executor round.

        Composes :meth:`PQMatch.fragment_tasks` / ``run_fragment_tasks`` —
        the same construction and execution :meth:`PQMatch.evaluate` uses, so
        answers are byte-identical by sharing code, not by mirroring it — but
        concatenates *every* pattern's tasks into a single round, so the
        per-round fixed costs (pool round-trip, task scheduling) are paid once
        per batch instead of once per query.

        With plans enabled, each unique fingerprint is first resolved through
        the service's :class:`PlanCache` (compile once, reuse thereafter) and
        its tasks are stamped with the plan + canonical binding before the
        round runs.

        Returns ``(answers, timings, counters, plan_labels)``: per
        fingerprint, the frozen answer, the summed per-fragment evaluation
        seconds (its share of the round — the introspection layer's
        compute-latency sample), the merged work counters, and the serving
        plan's compact label for the slow-query log.
        """
        coordinator = self.coordinator
        radius = 0
        for _, pattern, _ in unique:
            pattern.validate()
            radius = max(radius, pattern.radius())
        partition = coordinator.ensure_radius(graph, radius)

        plans: Dict[str, object] = {}
        plan_labels: Dict[str, str] = {}
        if self._plans_enabled:
            for fingerprint, pattern, form in unique:
                plan = self.plans.plan_for(
                    graph, fingerprint, self._options_key, pattern, form=form
                )
                plans[fingerprint] = plan
                plan_labels[fingerprint] = (
                    f"{fingerprint[:12]} {plan.order_label(graph)}"
                )

        tasks: List[FragmentTask] = []
        owners: List[str] = []
        for fingerprint, pattern, form in unique:
            pattern_tasks = coordinator.fragment_tasks(
                pattern,
                partition,
                fingerprint=fingerprint if self._plans_enabled else None,
                plan=plans.get(fingerprint),
                plan_binding=form.order if self._plans_enabled else None,
            )
            tasks.extend(pattern_tasks)
            owners.extend([fingerprint] * len(pattern_tasks))

        self.stats.dispatch_rounds += 1
        with span("service.dispatch", patterns=len(unique), tasks=len(tasks)):
            fragment_results = coordinator.run_fragment_tasks(tasks)

        answers: Dict[str, set] = {fingerprint: set() for fingerprint, _, _ in unique}
        timings: Dict[str, float] = {fingerprint: 0.0 for fingerprint, _, _ in unique}
        counters: Dict[str, WorkCounter] = {
            fingerprint: WorkCounter() for fingerprint, _, _ in unique
        }
        for fingerprint, fragment_result in zip(owners, fragment_results):
            answers[fingerprint] |= fragment_result.answer
            timings[fingerprint] += fragment_result.elapsed
            counters[fingerprint].merge(fragment_result.counter)
        return (
            {fingerprint: frozenset(nodes) for fingerprint, nodes in answers.items()},
            timings,
            counters,
            plan_labels,
        )

    # -------------------------------------------------------- canonicalization

    def _canonical(self, pattern: QuantifiedGraphPattern) -> CanonicalPattern:
        """Canonicalize with the per-pattern-object memo (prepared statements).

        Repeat submissions of the same object skip the colour-refinement
        canonicalization entirely; distinct-but-equivalent objects still meet
        at the fingerprint, exactly as before.  Also records the pattern as
        the representative of its fingerprint for delta-time migration.
        """
        form = self._canonical_memo.get(pattern)
        if form is not None:
            self.stats.memo_hits += 1
            # Keep the representative registry's LRU order tracking real
            # traffic: without this, the hottest (always-memo-hit) patterns
            # would be the first evicted and lose delta-time carry-forward.
            self._patterns[form.fingerprint] = pattern
            self._patterns.move_to_end(form.fingerprint)
            return form
        form = canonicalize(pattern)
        try:
            self._canonical_memo[pattern] = form
        except TypeError:
            pass  # unhashable/unweakrefable pattern subclass: just skip the memo
        self._patterns[form.fingerprint] = pattern
        self._patterns.move_to_end(form.fingerprint)
        while len(self._patterns) > self.cache.capacity:
            self._patterns.popitem(last=False)
        return form

    # ----------------------------------------------------------------- updates

    def apply_delta(self, delta) -> "GraphDelta":
        """Apply one :class:`~repro.delta.GraphDelta` batch to the served graph.

        This is the single write entry point of the service, and it threads
        the batch through every layer instead of cold-starting any of them:

        1. the graph mutates once (one version bump) via
           :func:`repro.delta.apply_delta`;
        2. the compiled full-graph index is **refreshed**, not rebuilt;
        3. the coordinator maintains its partition in place and the process
           executor re-keys shipped fragments to delta chains
           (:meth:`PQMatch.apply_delta`) — no re-partition, no re-ship,
           zero worker rebuilds;
        4. cached answers migrate *selectively*: an entry whose pattern's
           affected area contains **no node carrying its focus label** cannot
           have changed (any focus candidate whose answer flipped is inside
           AFF) and is carried to the new version for free; entries the area
           might touch are dropped and recomputed on next request.  Note the
           focus-label guard is what makes the carry sound — an empty
           ``AFF ∩ answer`` alone would miss *newly created* matches;
        5. standing queries (:meth:`subscribe`) are delta-maintained via
           :func:`repro.delta.inc_qmatch_delta` and notified of their diff.

        Serialises with :meth:`evaluate_many`/:meth:`submit` on the evaluation
        lock, so every served answer reflects the graph strictly before or
        strictly after the batch — never a mix.  Returns the inverse batch;
        applying it rolls everything back (it is just another delta).
        """
        from repro.delta.matching import affected_area
        from repro.delta.ops import apply_delta as apply_graph_delta
        from repro.index.snapshot import GraphIndex

        with self._evaluate_lock, span(
            "service.delta", service=self.name, size=delta.size
        ) as delta_span:
            if self._closed:
                raise ReproError(f"{self.name} is closed")
            graph = self.graph
            old_version = graph.version
            inverse = apply_graph_delta(graph, delta)
            if not delta.is_structural():
                delta_span.annotate(structural=False)
                return inverse
            new_version = graph.version

            cached = graph.cached_index()
            if cached is not None and cached.version == old_version:
                index = cached.refreshed(delta)
                index_route = "refreshed"
            else:
                index = GraphIndex.for_graph(graph)
                index_route = "rebuilt"
            self.coordinator.apply_delta(graph, delta, inverse)

            # ---------------------------------------------- cache migration
            areas: Dict[int, set] = {}
            labels_in_area: Dict[int, set] = {}
            carried: List[Tuple[str, Hashable]] = []
            deleted = set(delta.node_deletes)
            dropped = 0
            for fingerprint, options_key in self.cache.fingerprints_for(graph, old_version):
                pattern = self._patterns.get(fingerprint)
                if pattern is None or options_key != self._options_key:
                    dropped += 1
                    continue
                radius = pattern.radius()
                if radius not in areas:
                    areas[radius] = affected_area(
                        graph, delta, radius, inverse=inverse, index=index
                    )
                    labels_in_area[radius] = {
                        graph.node_label(node) for node in areas[radius]
                    }
                focus_label = pattern.node_label(pattern.focus)
                if focus_label in labels_in_area[radius]:
                    dropped += 1
                    continue
                if deleted:
                    # Deleted nodes are *not* in AFF (they no longer exist),
                    # so the label guard above cannot see a cached match the
                    # batch itself deleted — same blind spot inc_qmatch_delta
                    # covers by subtracting node_deletes before carrying.
                    answer = self.cache.peek(
                        graph, fingerprint, options_key, version=old_version
                    )
                    if answer is None or not deleted.isdisjoint(answer):
                        dropped += 1
                        continue
                carried.append((fingerprint, options_key))
            if carried:
                self.cache.carry_forward(graph, carried, old_version, new_version)
            self.stats.delta_cache_carried += len(carried)
            self.stats.delta_cache_dropped += dropped

            # ------------------------------------------------- subscriptions
            self._maintain_subscriptions(delta, inverse, index, new_version)
            self.stats.deltas_applied += 1
            delta_span.annotate(
                index=index_route, carried=len(carried), dropped=dropped
            )
            if self.flight:
                self.flight.record(
                    "delta",
                    service=self.name,
                    graph=graph.name,
                    version=new_version,
                    size=delta.size,
                    index=index_route,
                    carried=len(carried),
                    dropped=dropped,
                )
            return inverse

    def subscribe(
        self,
        pattern: QuantifiedGraphPattern,
        callback: Optional[Callable[[Subscription, DeltaNotification], None]] = None,
    ) -> Subscription:
        """Register *pattern* as a standing query.

        The initial answer is served through the normal path (cache, batch
        dispatch); from then on every :meth:`apply_delta` batch maintains the
        answer incrementally — re-verifying only the affected area — instead
        of recomputing it, keeps the result cache warm at the new version,
        and notifies the subscription (list + optional callback) of the diff.
        """
        with self._evaluate_lock:
            if self._closed:
                raise ReproError(f"{self.name} is closed")
            result = self._evaluate_batch([pattern])[0]
            subscription = Subscription(
                service=self,
                pattern=pattern,
                fingerprint=result.fingerprint,
                answer=result.answer,
                version=self.graph.version,
                callback=callback,
            )
            self._subscriptions.append(subscription)
            return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    def _maintenance_engine(self) -> Tuple[QMatch, bool]:
        """The sequential engine used to maintain standing queries.

        Returns ``(engine, cacheable)``: *cacheable* marks that the engine is
        equivalent to the coordinator's (the standard QMatch rebuilt from its
        options), so maintained answers may be filed into the result cache
        under the service's options key.  Opaque engines maintain answers with
        a default QMatch — answers are engine-independent — but never touch
        the cache, honouring its never-cross-options discipline.
        """
        spec = engine_to_spec(self.coordinator.engine)
        if spec[0] == "qmatch":
            _, use_incremental, options, name = spec
            return QMatch(use_incremental=use_incremental, options=options, name=name), True
        return QMatch(), False

    def _maintain_subscriptions(self, delta, inverse, index, new_version: int) -> None:
        if not self._subscriptions:
            return
        from repro.delta.matching import inc_qmatch_delta

        engine, cacheable = self._maintenance_engine()
        for subscription in list(self._subscriptions):
            if not subscription.active:
                continue
            maintain_started = perf_counter()
            answer, stats = inc_qmatch_delta(
                subscription.pattern,
                self.graph,
                delta,
                subscription.answer,
                inverse=inverse,
                engine=engine,
                index=index,
            )
            self.introspection.slow_queries.record(
                subscription.fingerprint,
                subscription.pattern.name,
                perf_counter() - maintain_started,
                cached=False,
                counter=WorkCounter(verifications=stats.verifications),
                aff_size=stats.aff_size,
            )
            if cacheable:
                answer = self.cache.store(
                    self.graph,
                    subscription.fingerprint,
                    answer,
                    self._options_key,
                    version=new_version,
                )
            subscription.answer = answer
            subscription.version = new_version
            self.stats.delta_subscription_updates += 1
            if stats.added or stats.removed:
                notification = DeltaNotification(
                    version=new_version,
                    added=frozenset(stats.added),
                    removed=frozenset(stats.removed),
                    aff_size=stats.aff_size,
                )
                subscription.notifications.append(notification)
                if subscription.callback is not None:
                    subscription.callback(subscription, notification)

    # ------------------------------------------------------------- submission

    def submit(self, pattern: QuantifiedGraphPattern) -> "Future[ServiceResult]":
        """Thread-safe asynchronous entry point.

        Enqueues the query and returns a future; a single dispatcher thread
        drains the queue, so queries submitted concurrently coalesce into one
        batch (deduplicated and dispatched together).  Call from any thread.
        Cancelling the returned future before the dispatcher picks it up is
        honoured (the query is skipped).
        """
        future: "Future[ServiceResult]" = Future()
        # The submit span is the root the dispatcher's batch spans parent
        # under (via attach), so one submitted query reads as one tree even
        # though serving happens on another thread.  Context + timestamps are
        # captured inside the span; the enqueue timestamps are always taken —
        # they feed the always-on admission-wait field of the slow-query log.
        with span("service.submit", service=self.name, pattern=pattern.name):
            context = get_tracer().current_context()
            enqueued_wall = time.time()
            enqueued_perf = perf_counter()
            with self._pending_lock:
                # Closed-check and enqueue share the lock close() takes, so a
                # submit racing close() either lands before it (and is
                # drained) or observes _closed — it can never restart the
                # dispatcher and resurrect the coordinator's executor after
                # shutdown.
                if self._closed:
                    raise ReproError(f"{self.name} is closed")
                self._pending.append(
                    (pattern, future, context, enqueued_wall, enqueued_perf)
                )
                self._ensure_dispatcher()
                self._pending_signal.set()
                self.stats.submitted += 1
        return future

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name=f"{self.name}-dispatcher", daemon=True
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while True:
            # A plain blocking wait: submit() always sets the signal under
            # the pending lock after appending and close() sets it too, so
            # there is no lost-wakeup window and no idle polling.
            self._pending_signal.wait()
            with self._pending_lock:
                batch = self._pending
                self._pending = []
                if not self._closed:
                    self._pending_signal.clear()
                # else: leave the signal set so the next wait() returns
                # immediately and the empty drain below terminates the loop.
            if not batch:
                if self._closed:
                    return
                continue
            # Claim each future; ones cancelled while queued are skipped (and
            # must not poison the rest of the batch — a dead dispatcher would
            # orphan every later future).
            claimed = [
                request
                for request in batch
                if request[1].set_running_or_notify_cancel()
            ]
            if not claimed:
                continue
            patterns = [request[0] for request in claimed]
            # Pending-queue wait per claimed request: always computed (it
            # feeds the slow-query log), and — when the submitter captured a
            # live trace — also filed as a synthetic span under its submit
            # span, so queueing time shows up in the tree it delayed.
            claimed_at = perf_counter()
            waits = [claimed_at - request[4] for request in claimed]
            tracer = get_tracer()
            if tracer.enabled:
                for request, wait in zip(claimed, waits):
                    if request[2].enabled:
                        tracer.record_span(
                            "service.pending.wait",
                            start=request[3],
                            wall=wait,
                            context=request[2],
                            pattern=request[0].name,
                        )
            try:
                # The coalesced batch runs once; its spans parent under the
                # first claimant's submit span (the others' trees keep their
                # submit root + wait span and share the served work).
                with tracer.attach(claimed[0][2]):
                    served = self._serve_batch(patterns, waits=waits)
            except BaseException:
                # The coalesced batch mixes unrelated callers, so a failure
                # (typically one invalid pattern) must not fan out: fall back
                # to serving each request on its own and fail only the
                # request that is actually broken.  Valid requests stay cheap
                # — whatever the failed round cached is reused.
                for request, wait in zip(claimed, waits):
                    pattern, future = request[0], request[1]
                    try:
                        with tracer.attach(request[2]):
                            result = self._serve_batch([pattern], waits=[wait])[0]
                    except BaseException as error:
                        if not future.done():
                            future.set_exception(error)
                    else:
                        if not future.done():
                            future.set_result(result)
            else:
                for request, result in zip(claimed, served):
                    future = request[1]
                    if not future.done():
                        future.set_result(result)

    # -------------------------------------------------------------- telemetry

    def explain(
        self,
        query,
        analyze: bool = False,
        analyze_limit: Optional[int] = None,
    ) -> ExplainReport:
        """EXPLAIN (ANALYZE) one query: the compiled plan with per-step
        estimated vs observed cardinalities.

        *query* is a pattern object or the canonical fingerprint of one this
        service has seen (the representative registry keeps one live pattern
        per served fingerprint).  Estimates come from the graph's
        :class:`~repro.graph.statistics.CardinalityModel`; observations come
        from the :class:`StatsRegistry` traffic averages and — with
        ``analyze=True`` — from re-running the enumeration with a per-depth
        probe profile (``analyze_limit`` caps the embeddings enumerated).
        """
        from repro.plan.compile import compile_plan

        with self._evaluate_lock:
            if self._closed:
                raise ReproError(f"{self.name} is closed")
            if isinstance(query, str):
                pattern = self._patterns.get(query)
                if pattern is None:
                    raise ReproError(
                        f"{self.name} has no pattern registered for "
                        f"fingerprint {query!r}"
                    )
            else:
                pattern = query
            form = self._canonical(pattern)
            fingerprint = form.fingerprint
            if self._plans_enabled:
                plan = self.plans.plan_for(
                    self.graph, fingerprint, self._options_key, pattern, form=form
                )
            else:
                plan = compile_plan(
                    pattern,
                    fingerprint=fingerprint,
                    options_key=self._options_key,
                    form=form,
                )
            return build_report(
                plan,
                self.graph,
                pattern=pattern,
                traffic=self.stats_registry.observed(fingerprint),
                analyze=analyze,
                analyze_limit=analyze_limit,
            )

    @property
    def worker_rebuilds(self) -> int:
        """``GraphIndex.build`` calls reported by pool workers (0 otherwise).

        The process executor aggregates worker-side build counts; serving must
        keep it at zero — fragments reach workers as decoded snapshots, never
        as recompilation work.  Serial/threaded backends trivially report 0.
        Reads the coordinator's executor *if one exists* — telemetry must not
        lazily create (or, after close, resurrect) a pool.
        """
        return getattr(self.coordinator.current_executor, "last_worker_rebuilds", 0)

    def stats_snapshot(self) -> Dict[str, float]:
        """Service + cache counters in one flat dict (bench/figure friendly)."""
        merged = {f"cache_{key}": value for key, value in self.cache.stats.as_dict().items()}
        merged.update(
            {f"plan_{key}": value for key, value in self.plans.stats.as_dict().items()}
        )
        merged.update(self.stats.as_dict())
        merged["worker_rebuilds"] = float(self.worker_rebuilds)
        return merged

    def introspect(self) -> Dict[str, object]:
        """The full operator-facing snapshot (also what ``stats()`` returns).

        One nested dict answering the runtime questions in one read: lifetime
        service counters, cache occupancy/capacity/hit-rate, the live pool's
        backend and payload epoch, active standing-query count, per-fingerprint
        traffic with p50/p99 latency, and the slow-query log.
        """
        executor = self.coordinator.current_executor
        epoch = getattr(executor, "pool_epoch", None)
        cache_stats = self.cache.stats.as_dict()
        cache_stats["entries"] = len(self.cache)
        cache_stats["capacity"] = self.cache.capacity
        return {
            "service": self.stats.as_dict(),
            "cache": cache_stats,
            "plans": self.plans.describe(),
            "pool": {
                "backend": getattr(executor, "name", None),
                "epoch_fragments": len(epoch) if epoch else 0,
                "worker_rebuilds": self.worker_rebuilds,
                "deltas_shipped": getattr(executor, "deltas_shipped", 0),
                "worker_plan_hits": getattr(executor, "last_worker_plan_hits", 0),
                "worker_plan_compiles": getattr(
                    executor, "last_worker_plan_compiles", 0
                ),
            },
            "graph": {"name": self.graph.name, "version": self.graph.version},
            "subscriptions": sum(1 for s in self._subscriptions if s.active),
            "fingerprints": self.introspection.snapshot(),
            "slow_queries": [
                record.as_dict()
                for record in self.introspection.slow_queries.records()
            ],
            "explain": self.stats_registry.snapshot(),
            "flight": self.flight.snapshot(),
        }

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop the dispatcher (draining queued work) and release the executor.

        The join is unbounded on purpose: close() promises queued submissions
        are drained, and shutting the executor down under a timed-out join
        would race the still-running dispatcher.  The executor shutdown takes
        the evaluation lock, so an in-flight ``evaluate_many`` that passed its
        closed-check first finishes before the pool goes down — and can never
        resurrect it afterwards.
        """
        with self._pending_lock:
            self._closed = True
        dispatcher = self._dispatcher
        if dispatcher is not None and dispatcher.is_alive():
            self._pending_signal.set()
            dispatcher.join()
        self._dispatcher = None
        with self._evaluate_lock:
            self.coordinator.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryService(graph={self.graph.name!r}, served={self.stats.served}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
