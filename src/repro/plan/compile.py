"""Compiling canonicalized patterns into straight-line execution plans.

The service layer canonicalizes every pattern to a stable fingerprint
(:mod:`repro.service.patterns`), so a Zipf-hot pattern arrives thousands of
times under the same identity — yet the matching layer re-interpreted it per
query: quantifier checks dispatched through :meth:`CountingQuantifier.check`
attribute lookups, edge-label row stores re-resolved from strings, candidate
pools ordered by stringifying every member.  A :class:`CompiledPlan` pays
those costs **once per fingerprint per process**:

* quantifier checks are lowered to closed-over threshold comparisons
  (:func:`lower_quantifier` — a closure per distinct quantifier, no
  ``eval``-style codegen),
* per-label row-store references and ``str``-order ranks are pre-resolved
  against a concrete :class:`~repro.index.GraphIndex` snapshot into a
  :class:`PlanResolution` (one per graph epoch, cached inside the plan),
* the canonical matching-order preview derived from the snapshot's label
  statistics is kept for diagnostics (slow-query log, ``stats()``) and as
  groundwork for cost-based ordering (ROADMAP item 3).

Byte-identity contract
----------------------
A plan removes *uncounted* constant-factor interpretation only.  Answers and
every :class:`~repro.utils.counters.WorkCounter` field are asserted equal to
the interpreted fallback (same contract as ``use_index=False``), which is why
the **live matching order stays per-query**: the greedy most-constrained
order depends on the actual candidate sets, and freezing it per fingerprint
would change ``extensions`` counts.  The stats-derived order here is surfaced
as plan info, not imposed on the search.

Plans are picklable **by reference** only: the service and the pool ship the
fingerprint (plus the node→canonical-position binding) across the process
boundary and workers compile-or-reuse from their own per-process
:class:`~repro.plan.cache.PlanCache` — closures and row stores never cross a
pickle boundary.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.digraph import PropertyGraph
from repro.index.snapshot import GraphIndex
from repro.obs.metrics import get_registry
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.patterns.quantifier import CountingQuantifier
from repro.utils.timing import Timer

__all__ = [
    "CompiledPlan",
    "PlanResolution",
    "compile_plan",
    "lower_quantifier",
    "plan_compile_count",
]

NodeId = Hashable
QuantifierCheck = Callable[[int, int], bool]

# Canonical edge of a plan: (source position, target position, label, quantifier).
PlanEdge = Tuple[int, int, str, CountingQuantifier]

# How many per-graph-epoch resolutions one plan keeps alive (LRU).  A service
# resolves the full graph plus one fragment graph per pool worker, so the
# bound comfortably covers a partitioned deployment; eviction only costs a
# re-resolution, never a recompile.
_MAX_RESOLUTIONS = 32

# Process-wide count of plan compilations (always on, like
# ``repro.index.build_call_count``): the acceptance contract is that each
# unique fingerprint compiles at most once per process, and tests read this
# on both sides of the pool boundary to pin that down.
_COMPILE_COUNT = 0


def plan_compile_count() -> int:
    """How many :func:`compile_plan` calls have run in this process."""
    return _COMPILE_COUNT


def lower_quantifier(quantifier: CountingQuantifier) -> QuantifierCheck:
    """Lower a quantifier to a closed-over ``(count, total) -> bool`` check.

    Replicates :meth:`CountingQuantifier.check` exactly for the non-negative
    inputs the engines produce (counts are ``len`` of matched-children sets,
    totals are out-degrees) — including the ratio epsilons and the
    ``total == 0 -> False`` ratio rule — while replacing the per-call
    attribute dispatch (``is_ratio``/``op``/``value`` lookups and float
    coercions) with one closure call over prebound constants.
    """
    if quantifier.is_ratio:
        value = float(quantifier.value)
        if quantifier.op == ">=":
            floor = value - 1e-9
            return lambda count, total: total > 0 and 100.0 * count / total >= floor
        if quantifier.op == ">":
            ceiling = value + 1e-9
            return lambda count, total: total > 0 and 100.0 * count / total > ceiling
        return lambda count, total: total > 0 and abs(100.0 * count / total - value) <= 1e-9
    threshold = int(quantifier.value)
    if quantifier.op == ">=":
        return lambda count, total: count >= threshold
    if quantifier.op == ">":
        return lambda count, total: count > threshold
    return lambda count, total: count == threshold


class PlanResolution:
    """One plan resolved against one graph epoch (snapshot-pinned).

    Everything here is derived from a concrete :class:`GraphIndex` snapshot:
    the per-canonical-edge compiled row stores (both orientations, ``None``
    when the edge label does not occur in the graph), the shared
    ``str``-order rank map, and the label-statistics order preview.  A
    resolution is only valid while its snapshot is the graph's current one;
    :meth:`CompiledPlan.resolution_for` re-resolves after a version bump.
    """

    __slots__ = (
        "graph",
        "snapshot",
        "edge_rows",
        "out_degree_rows",
        "str_ranks",
        "order_preview",
        "_neighbors",
        "_translated",
        "_dense_cache",
    )

    def __init__(self, program: "CompiledPlan", graph: PropertyGraph) -> None:
        snapshot = GraphIndex.for_graph(graph)
        self.graph = graph
        self.snapshot = snapshot
        encode_label = snapshot.edge_labels.encode
        edge_rows: Dict[Tuple[int, int, str], tuple] = {}
        for source_pos, target_pos, label, _quantifier in program.edges:
            key = (source_pos, target_pos, label)
            if key in edge_rows:
                continue
            edge_label = encode_label(label)
            if edge_label is None:
                edge_rows[key] = (None, None)
            else:
                # Same orientation rule as MatchContext._refresh_snapshot: an
                # outgoing pattern edge constrains its source's pool to
                # predecessors of the bound target (the incoming CSR rows),
                # and vice versa.
                edge_rows[key] = (
                    snapshot.compiled_rows(True, edge_label),
                    snapshot.compiled_rows(False, edge_label),
                )
        self.edge_rows = edge_rows
        # Per-label outgoing rows double as degree tables: a row is the
        # successor frozenset of one node under one label, so ``len(row)``
        # IS ``graph.out_degree(node, label)`` and the lowered quantifier
        # totals become one dict probe instead of a graph method call.
        self.out_degree_rows: Dict[str, Dict[NodeId, frozenset]] = {}
        for _source_pos, _target_pos, label, _quantifier in program.edges:
            if label not in self.out_degree_rows:
                edge_label = encode_label(label)
                self.out_degree_rows[label] = (
                    {} if edge_label is None else snapshot.compiled_rows(False, edge_label)
                )
        self.str_ranks = snapshot.str_ranks()
        self.order_preview = self._stats_order(program, snapshot)
        self._neighbors: Optional[Dict[NodeId, tuple]] = None
        self._translated: Optional[tuple] = None
        self._dense_cache = None

    def ball(self, source: NodeId, radius: int) -> set:
        """``nodes_within_hops`` over a flat per-epoch neighbour table.

        The interpreted BFS copies three sets per visited node
        (``successors | predecessors`` behind ``graph.neighbors``); here the
        undirected adjacency is flattened once per epoch into tuples and the
        sweep is allocation-free.  Membership is identical — same
        reachability, same radius — so the locality-restricted candidate
        pools (and every count derived from them) cannot change.
        """
        neighbors = self._neighbors
        if neighbors is None:
            graph = self.graph
            neighbors = {node: tuple(graph.neighbors(node)) for node in graph.nodes()}
            self._neighbors = neighbors
        if source not in neighbors:
            # Unknown source: defer to the interpreted traversal so the
            # failure mode (NodeNotFoundError) stays exactly the same.
            from repro.graph.traversal import nodes_within_hops

            return nodes_within_hops(self.graph, source, radius)
        visited = {source}
        frontier = (source,)
        for _ in range(radius):
            next_frontier: List[NodeId] = []
            append = next_frontier.append
            add = visited.add
            for node in frontier:
                for neighbor in neighbors[node]:
                    if neighbor not in visited:
                        add(neighbor)
                        append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
        return visited

    def dense_runs(self) -> Tuple["GraphIndex", "array", bool]:
        """The per-epoch dense-run tables of the vectorized execution mode.

        ``(snapshot, str-rank array, ranks-injective flag)`` — the CSR rows
        of the pinned snapshot are the sorted runs themselves (sorted
        ascending at build, exposed without copying via
        :meth:`~repro.index.csr.LabeledCSR.sorted_runs`), and the rank array
        is the dense ordering key.  Both are memoised per ``(graph,
        version)`` exactly like the frozenset row stores: the resolution is
        pinned to one snapshot, and the snapshot caches the array, so every
        context of an epoch — coordinator or pool worker — shares one table
        and nothing ships across the pool boundary.
        """
        snapshot = self.snapshot
        srank, unique = snapshot.str_rank_array()
        return snapshot, srank, unique

    def dense_cache(self):
        """The per-epoch :class:`~repro.plan.vectorized.DenseRunCache`.

        Memoises radius balls and label-local candidate runs against the
        pinned snapshot — pure per-epoch derivations, so every vectorized
        query of the epoch shares one cache and a Zipf-hot focus candidate
        pays its ball BFS once per epoch rather than once per request.
        """
        cache = self._dense_cache
        if cache is None:
            from repro.plan.vectorized import DenseRunCache

            cache = DenseRunCache(self.snapshot)
            self._dense_cache = cache
        return cache

    def translated_adjacency(
        self, adjacency: Dict, binding: Dict[NodeId, int]
    ) -> Optional[Dict[NodeId, List[tuple]]]:
        """Pattern adjacency translated onto this resolution's row stores.

        One-slot memo pinned on the identity of (*adjacency*, *binding*): the
        engine passes the same adjacency object for every focus candidate of
        a query and the same binding object for the fingerprint's lifetime,
        so the translation — a loop the locality search would otherwise pay
        per candidate — runs once per (query, epoch).  Returns ``None`` when
        an edge falls outside the canonical shape (caller resolves
        generically).
        """
        memo = self._translated
        if memo is not None and memo[0] is adjacency and memo[1] is binding:
            return memo[2]
        edge_rows = self.edge_rows
        compiled_adjacency: Dict[NodeId, List[tuple]] = {}
        try:
            for pattern_node, constraints in adjacency.items():
                compiled = []
                for neighbor, label, outgoing in constraints:
                    if outgoing:
                        key = (binding[pattern_node], binding[neighbor], label)
                    else:
                        key = (binding[neighbor], binding[pattern_node], label)
                    rows = edge_rows[key]
                    compiled.append((neighbor, rows[0] if outgoing else rows[1]))
                compiled_adjacency[pattern_node] = compiled
        except KeyError:
            return None
        self._translated = (adjacency, binding, compiled_adjacency)
        return compiled_adjacency

    @staticmethod
    def _stats_order(program: "CompiledPlan", snapshot: GraphIndex) -> Tuple[int, ...]:
        """Greedy connected order over canonical positions by label count.

        The same SelectNext shape as ``_search_order`` but driven by the
        snapshot's per-label population statistics instead of live candidate
        sets — i.e. what a cost-based planner would pick *before* seeing the
        query.  Diagnostic only (plan info, slow-query log): the live search
        keeps its per-query order to preserve work-counter byte-identity.
        """
        positions = range(len(program.node_labels))
        sizes = {
            position: snapshot.label_count(
                snapshot.node_label_id(program.node_labels[position])
            )
            for position in positions
        }
        adjacency: Dict[int, List[int]] = {position: [] for position in positions}
        for source_pos, target_pos, _label, _quantifier in program.edges:
            adjacency[source_pos].append(target_pos)
            adjacency[target_pos].append(source_pos)
        order = [program.focus_position]
        placed = {program.focus_position}
        while len(order) < len(sizes):
            frontier = [
                position
                for position in positions
                if position not in placed
                and any(neighbor in placed for neighbor in adjacency[position])
            ]
            if not frontier:
                frontier = [position for position in positions if position not in placed]
            chosen = min(frontier, key=lambda position: (sizes[position], position))
            order.append(chosen)
            placed.add(chosen)
        return tuple(order)


class CompiledPlan:
    """The graph-independent program compiled once per fingerprint.

    Holds the canonical shape of the pattern (node labels by canonical
    position, focus position, canonical edges) plus the lowered quantifier
    checks.  Graph-dependent state — row stores, ``str`` ranks, the stats
    order — lives in per-epoch :class:`PlanResolution` objects cached here
    (bounded LRU; entries pin their graph, mirroring the result cache).
    """

    __slots__ = (
        "fingerprint",
        "options_key",
        "node_labels",
        "focus_position",
        "edges",
        "compile_seconds",
        "_checks",
        "_edge_specs",
        "_resolutions",
        "_pattern_view",
        "_ordering_ranks",
        "_lock",
    )

    def __init__(
        self,
        fingerprint: str,
        options_key: object,
        node_labels: Tuple[str, ...],
        focus_position: int,
        edges: Tuple[PlanEdge, ...],
        compile_seconds: float = 0.0,
    ) -> None:
        self.fingerprint = fingerprint
        self.options_key = options_key
        self.node_labels = node_labels
        self.focus_position = focus_position
        self.edges = edges
        self.compile_seconds = compile_seconds
        self._checks: Dict[CountingQuantifier, QuantifierCheck] = {}
        for _source, _target, _label, quantifier in edges:
            if quantifier not in self._checks:
                self._checks[quantifier] = lower_quantifier(quantifier)
        # Positification rewrites negated edges to the existential quantifier,
        # so pre-lower it: the positive parts a QMatch evaluation hands back
        # to the plan never miss the memo.
        existential = CountingQuantifier.existential()
        if existential not in self._checks:
            self._checks[existential] = lower_quantifier(existential)
        # Per concrete edge-tuple lowered specs (see ``edge_specs``), keyed by
        # identity of the edge list the engine passes: dmatch builds one edge
        # tuple per evaluation, so this stays a one-entry memo in practice.
        self._edge_specs: Dict[Tuple[Tuple[NodeId, str, CountingQuantifier], ...], tuple] = {}
        self._resolutions: "OrderedDict[Tuple[int, int], PlanResolution]" = OrderedDict()
        self._pattern_view: Optional[tuple] = None
        self._ordering_ranks: Optional[tuple] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------- lowering

    def check_for(self, quantifier: CountingQuantifier) -> QuantifierCheck:
        """The lowered check for *quantifier* (memoised per plan)."""
        check = self._checks.get(quantifier)
        if check is None:
            # Idempotent insert: racing threads build equivalent closures.
            check = lower_quantifier(quantifier)
            self._checks[quantifier] = check
        return check

    def pattern_view(self, pattern: QuantifiedGraphPattern, build: Callable[[], tuple]) -> tuple:
        """One-slot memo for read-only derivatives of one live pattern object.

        The locality search constructs one :class:`MatchContext` per focus
        candidate over the *same* stratified pattern object; its adjacency
        and label map are graph-independent and never mutated, so they are
        built once (via *build*) and pinned on the pattern's identity.  A new
        pattern object — the next query's :meth:`QGP.pi` product — simply
        replaces the slot.
        """
        view = self._pattern_view
        if view is not None and view[0] is pattern:
            return view[1]
        value = build()
        self._pattern_view = (pattern, value)
        return value

    def ordering_ranks(
        self, ordering: Dict[NodeId, Sequence[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, int]]:
        """Rank maps of a potential-ordering, memoised per ordering object.

        An ordering's preference lists span entire candidate pools, and the
        locality search would otherwise rebuild the rank dictionaries for
        every focus-candidate context.  One ordering object is computed per
        query, so a one-slot identity-pinned memo collapses that to once.
        """
        memo = self._ordering_ranks
        if memo is not None and memo[0] is ordering:
            return memo[1]
        ranks = {
            pattern_node: {node: rank for rank, node in enumerate(preferred)}
            for pattern_node, preferred in ordering.items()
        }
        self._ordering_ranks = (ordering, ranks)
        return ranks

    def edge_specs(self, edges: Sequence) -> Tuple[Tuple[NodeId, str, QuantifierCheck], ...]:
        """Lowered ``(source node, edge label, check)`` specs for live edges.

        *edges* are :class:`~repro.patterns.qgp.PatternEdge` objects of the
        (stratified, possibly positified) pattern being evaluated — node ids,
        not canonical positions, because the verification loop binds graph
        nodes through the live assignment.  The spec tuple replaces the
        per-edge attribute chain (``edge.source``/``edge.label``/
        ``edge.quantifier.check``) with prebound locals.
        """
        key = tuple((edge.source, edge.label, edge.quantifier) for edge in edges)
        specs = self._edge_specs.get(key)
        if specs is None:
            specs = tuple(
                (source, label, self.check_for(quantifier))
                for source, label, quantifier in key
            )
            self._edge_specs[key] = specs
        return specs

    # ----------------------------------------------------------- resolution

    def resolution_for(self, graph: PropertyGraph) -> PlanResolution:
        """The :class:`PlanResolution` of *graph* at its current version.

        Keyed ``(id(graph), graph.version)`` with the graph pinned by the
        entry (mirrors :class:`repro.service.cache.ResultCache`), so an id
        can never be recycled while its key is live.  A version bump makes a
        fresh key — the stale resolution ages out of the LRU — and only the
        resolution is redone: the compiled program (closures, canonical
        shape) is reused as-is.
        """
        key = (id(graph), graph.version)
        with self._lock:
            resolution = self._resolutions.get(key)
            if resolution is not None and resolution.graph is graph:
                self._resolutions.move_to_end(key)
                return resolution
        resolution = PlanResolution(self, graph)
        with self._lock:
            self._resolutions[key] = resolution
            self._resolutions.move_to_end(key)
            while len(self._resolutions) > _MAX_RESOLUTIONS:
                self._resolutions.popitem(last=False)
        return resolution

    # ---------------------------------------------------------- diagnostics

    def order_preview_for(self, graph: PropertyGraph) -> Tuple[int, ...]:
        """This epoch's stats-derived matching-order preview (canonical
        positions, focus first) — the order ``EXPLAIN`` estimates along."""
        return self.resolution_for(graph).order_preview

    def order_label(self, graph: Optional[PropertyGraph] = None) -> str:
        """Compact ``x0:label>x2:label`` rendering of the stats order.

        With a *graph*, renders that epoch's resolution preview; without one,
        the most recently resolved preview (or canonical position order when
        the plan has never been resolved).  This string is what the
        slow-query log records as the serving plan.
        """
        preview: Tuple[int, ...]
        if graph is not None:
            preview = self.resolution_for(graph).order_preview
        else:
            with self._lock:
                last = next(reversed(self._resolutions)) if self._resolutions else None
                preview = (
                    self._resolutions[last].order_preview
                    if last is not None
                    else tuple(range(len(self.node_labels)))
                )
        return ">".join(f"x{position}:{self.node_labels[position]}" for position in preview)

    def describe(self) -> Dict[str, object]:
        """Introspection payload surfaced by ``QueryService.stats()``."""
        return {
            "fingerprint": self.fingerprint,
            "nodes": len(self.node_labels),
            "edges": len(self.edges),
            "focus": f"x{self.focus_position}:{self.node_labels[self.focus_position]}",
            "quantifiers": sorted(
                {quantifier.describe() for _, _, _, quantifier in self.edges}
            ),
            "order": self.order_label(),
            "compile_seconds": self.compile_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPlan(fingerprint={self.fingerprint[:12]!r}, "
            f"nodes={len(self.node_labels)}, edges={len(self.edges)})"
        )


def compile_plan(
    pattern: QuantifiedGraphPattern,
    fingerprint: Optional[str] = None,
    options_key: object = None,
    form: Optional[object] = None,
) -> CompiledPlan:
    """Compile *pattern* into a :class:`CompiledPlan`.

    *form* is an optional pre-computed
    :class:`~repro.service.patterns.CanonicalPattern`; the service passes its
    memoised one so compilation never re-canonicalizes.  Counts into the
    ``plan.compile`` counter and ``plan.compile_seconds`` histogram when the
    metrics registry is enabled, and into the always-on
    :func:`plan_compile_count` either way.
    """
    global _COMPILE_COUNT
    with Timer() as timer:
        if form is None or fingerprint is None:
            from repro.service.patterns import canonicalize

            form = canonicalize(pattern)
            fingerprint = form.fingerprint if fingerprint is None else fingerprint
        order: Dict[NodeId, int] = form.order
        labels: List[str] = [""] * len(order)
        for node, position in order.items():
            labels[position] = pattern.node_label(node)
        edges = tuple(
            sorted(
                (
                    (order[edge.source], order[edge.target], edge.label, edge.quantifier)
                    for edge in pattern.edges()
                ),
                # Quantifiers are not orderable; (source, target, label) is
                # already a unique edge key, so it alone decides the order.
                key=lambda item: item[:3],
            )
        )
        plan = CompiledPlan(
            fingerprint=fingerprint,
            options_key=options_key,
            node_labels=tuple(labels),
            focus_position=order[pattern.focus],
            edges=edges,
        )
    plan.compile_seconds = timer.elapsed
    _COMPILE_COUNT += 1
    registry = get_registry()
    if registry:
        registry.counter("plan.compile").inc()
        registry.histogram("plan.compile_seconds").observe(timer.elapsed)
    return plan
