"""The bounded plan cache: compile once per fingerprint, resolve per epoch.

Sits beside :class:`repro.service.cache.ResultCache` in the service (and as a
module-level per-process instance inside pool workers): a result-cache miss —
a fresh graph version, a cold entry — still hits a warm plan, so Zipf-hot
fingerprints pay interpretation setup exactly once per process.

The cache is two-level by design:

* **entries** are keyed ``(fingerprint, options_key, id(graph),
  graph.version)`` — the "index stats epoch" — and pin their graph exactly
  like the result cache (a live key can never see a recycled ``id``).  A
  graph mutation therefore *misses* (statistics changed, the plan's
  resolution must be redone) …
* … but **programs** are keyed ``(fingerprint, options_key)`` only, so the
  miss re-resolves against the new snapshot without recompiling: the lowered
  closures and canonical shape are graph-independent.  ``stats.compiles``
  counts program compilations, and the acceptance contract — each unique
  fingerprint compiles at most once per process — is asserted against it on
  both the coordinator and worker sides.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.graph.digraph import PropertyGraph
from repro.obs.metrics import get_registry
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.plan.compile import CompiledPlan, compile_plan

__all__ = ["PlanCache", "PlanCacheStats", "worker_plan_cache", "reset_worker_plan_cache"]

NodeId = Hashable

# (fingerprint, options_key, id(graph), graph.version)
#
# options_key carries the full engine options (a frozen dataclass), so any
# switch that changes execution strategy — including the ``vectorized``
# sorted-run mode — partitions cache entries automatically: a vectorized and
# a frozenset service never share a plan entry, even though their answers are
# byte-identical by contract.
PlanKey = Tuple[str, object, int, int]
ProgramKey = Tuple[str, object]

DEFAULT_PLAN_CACHE_CAPACITY = 256


@dataclass
class PlanCacheStats:
    """Always-on counters (mirrored into the registry when one is enabled)."""

    hits: int = 0
    misses: int = 0
    compiles: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
        }


class _Entry:
    """One cached (plan, graph-epoch) pairing; holding the graph pins its id."""

    __slots__ = ("graph", "plan")

    def __init__(self, graph: PropertyGraph, plan: CompiledPlan) -> None:
        self.graph = graph
        self.plan = plan


class PlanCache:
    """Bounded LRU over compiled plans, epoch-keyed, program-preserving."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, _Entry]" = OrderedDict()
        self._programs: "OrderedDict[ProgramKey, CompiledPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def plan_for(
        self,
        graph: PropertyGraph,
        fingerprint: str,
        options_key: object,
        pattern: QuantifiedGraphPattern,
        form: Optional[object] = None,
    ) -> CompiledPlan:
        """The compiled plan for *fingerprint* under *options_key* on *graph*.

        A hit returns the cached program directly.  A miss first consults the
        program registry — an epoch change or an eviction re-registers the
        *existing* program under the new key without recompiling — and only
        compiles when the ``(fingerprint, options_key)`` pair has never been
        seen in this process.  *pattern* must be a pattern with the given
        fingerprint (any isomorphic spelling works: the compiled shape is
        canonical); *form* optionally passes the caller's memoised
        :class:`~repro.service.patterns.CanonicalPattern` through.
        """
        key: PlanKey = (fingerprint, options_key, id(graph), graph.version)
        program_key: ProgramKey = (fingerprint, options_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.graph is graph:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                plan = entry.plan
            else:
                self.stats.misses += 1
                plan = self._programs.get(program_key)
                if plan is None:
                    plan = compile_plan(
                        pattern,
                        fingerprint=fingerprint,
                        options_key=options_key,
                        form=form,
                    )
                    self.stats.compiles += 1
                else:
                    self._programs.move_to_end(program_key)
                self._programs[program_key] = plan
                while len(self._programs) > self.capacity:
                    self._programs.popitem(last=False)
                self._entries[key] = _Entry(graph, plan)
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                entry = None
        registry = get_registry()
        if registry:
            if entry is not None:
                registry.counter("plan.cache.hits").inc()
            else:
                registry.counter("plan.cache.misses").inc()
        # Resolve eagerly so the first probe of the enumeration finds warm
        # row stores; a hit on the same epoch returns the memoised resolution.
        plan.resolution_for(graph)
        return plan

    def purge_stale(self) -> int:
        """Drop entries whose graph has mutated past their epoch."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.graph.version != key[3]
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Forget entries *and* programs (fingerprints recompile after this)."""
        with self._lock:
            self._entries.clear()
            self._programs.clear()

    def describe(self) -> Dict[str, object]:
        """Introspection payload: stats plus per-fingerprint plan info."""
        with self._lock:
            programs = {
                fingerprint: plan.describe()
                for (fingerprint, _options), plan in self._programs.items()
            }
            entries = len(self._entries)
        payload: Dict[str, object] = {
            "capacity": self.capacity,
            "entries": entries,
            "programs": programs,
        }
        payload.update(self.stats.as_dict())
        return payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------- pool workers

# One cache per pool-worker process: fragment tasks ship only (fingerprint,
# plan binding), and the worker compiles-or-reuses here.  A plan compile is
# pure Python over the canonical pattern — never a snapshot rebuild — so the
# pool's ``last_worker_rebuilds == 0`` contract is untouched.
_WORKER_PLAN_CACHE: Optional[PlanCache] = None


def worker_plan_cache() -> PlanCache:
    """The per-process plan cache used inside pool workers (lazily built)."""
    global _WORKER_PLAN_CACHE
    if _WORKER_PLAN_CACHE is None:
        _WORKER_PLAN_CACHE = PlanCache()
    return _WORKER_PLAN_CACHE


def reset_worker_plan_cache() -> None:
    """Drop the worker-process cache (test isolation helper)."""
    global _WORKER_PLAN_CACHE
    _WORKER_PLAN_CACHE = None
