"""Sorted-run merge-intersection kernels and the dense-id enumeration state.

PR 7 compiled each fingerprint into a straight-line program, but the
innermost enumeration still did frozenset algebra per extension probe —
hashing node-id strings and allocating a fresh set per pool.  This module is
the other half of ROADMAP open item 2: candidate pools become **sorted runs
of dense interned ids** (the CSR rows of a :class:`~repro.index.GraphIndex`
are already sorted ascending, so they *are* runs — no re-materialisation),
and pool derivation becomes set-at-a-time merge-intersection over those runs,
the same move worst-case-optimal join evaluation makes (leapfrog-style sorted
intersection).  Nothing decodes back to an original node id until a match is
actually yielded.

Three layers live here:

* **Kernels** — :func:`intersect2`, :func:`intersect_k` (smallest-first) and
  :func:`intersect_into` (writes into a caller-owned scratch ``array``; no
  allocation per probe).  Runs whose lengths are skewed by
  :data:`GALLOP_FACTOR` or more switch from the linear merge to a
  galloping/binary probe of the short run into the long one
  (``bisect_left`` is C-level), so a huge hub row costs
  ``O(small · log large)`` instead of ``O(large)``.
  :func:`intersect_reference` is the pure-python oracle the kernels are
  property-tested against.
* **:class:`DenseState`** — the per-:class:`~repro.matching.generic.MatchContext`
  dense mirror: static candidate pools encoded to sorted dense runs (with an
  encode-time soundness check: every candidate must be known to the snapshot
  and carry its pattern node's label, otherwise the state refuses to build
  and the frozenset path runs unchanged), the pattern adjacency translated to
  direct CSR ``indptr``/``indices`` references, and an anchored enumerator
  that is byte-identical to the frozenset path — same assignments, same
  emission order (pools are ordered by the snapshot's precomputed dense
  ``str``-rank array), same ``WorkCounter`` increments.
* **:class:`DenseLocality`** — the per-query locality sweep of DMatch in
  dense-id space: the radius ball is one frontier-array BFS over the merged
  CSR (reusable visited scratch), the ball becomes a sorted run, and every
  local candidate pool is one kernel intersection of a static run with it —
  replacing, per focus candidate, a dict-backed BFS, a per-node set
  intersection sweep and a full ``MatchContext`` construction.

Work accounting: the dense enumerator increments ``counter.extensions`` for
exactly the candidates the frozenset path would visit, in the same order.
The per-candidate label check of ``is_extendable`` is *elided*, not skipped:
the encode-time purity check proves every pool member already carries the
right label (pools only ever shrink from the verified static runs), and any
input that could make the check fail — a ghost candidate, a mislabeled one —
disqualifies the dense state entirely at build time, so the fallback raises
or filters exactly as before.

Observability: kernels take an optional :class:`VectorizedStats` accumulator
(``None`` when the metrics registry is disabled — the disabled path costs one
``is not None`` test per pool, allocation-free).  The accumulated
``plan.vectorized.probes`` / ``plan.vectorized.galloping_steps`` are flushed
into the registry once per query (never inside the probe loop), honouring the
obs granularity invariant.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import get_registry

__all__ = [
    "GALLOP_FACTOR",
    "VectorizedStats",
    "intersect2",
    "intersect_into",
    "intersect_k",
    "intersect_reference",
    "DenseRunCache",
    "DenseState",
    "DenseLocality",
    "build_dense_state",
    "EMPTY_LOCALITY",
]

NodeId = Hashable

# Length skew at which the linear merge hands over to the galloping probe:
# with the long run at least this many times the short one, ``len(short)``
# C-level ``bisect_left`` probes beat walking the long run element-wise.
GALLOP_FACTOR = 8

_ITEMSIZE = array("i").itemsize


def _int_run(length: int) -> array:
    """A zeroed ``array('i')`` scratch of *length* slots."""
    return array("i", bytes(length * _ITEMSIZE))


class VectorizedStats:
    """Per-query kernel counters, flushed to the registry at query grain.

    ``probes`` counts pool intersections (one per kernel call from the
    enumeration), ``galloping_steps`` counts binary probes taken on the
    galloping path.  The instance is only created when the metrics registry
    is enabled at state-build time; the disabled hot path carries ``None``
    and pays one identity test per pool.
    """

    __slots__ = ("probes", "galloping_steps")

    def __init__(self) -> None:
        self.probes = 0
        self.galloping_steps = 0

    def flush(self) -> None:
        """Add the accumulated counts to the live registry and reset."""
        registry = get_registry()
        if registry and (self.probes or self.galloping_steps):
            registry.counter("plan.vectorized.probes").inc(self.probes)
            registry.counter("plan.vectorized.galloping_steps").inc(
                self.galloping_steps
            )
        self.probes = 0
        self.galloping_steps = 0


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def intersect_into(
    a,
    a_lo: int,
    a_hi: int,
    b,
    b_lo: int,
    b_hi: int,
    out,
    stats: Optional[VectorizedStats] = None,
) -> int:
    """Intersect two sorted runs into ``out[0:k]``; return ``k``.

    *a* and *b* are sorted ascending, duplicate-free integer sequences
    (``array('i')``, ``memoryview`` or any indexable), windowed by the
    ``lo``/``hi`` bounds so CSR row slices intersect without copying.  *out*
    must have capacity for ``min`` of the two window lengths; it may alias
    *a* or *b* (the write cursor never overtakes either read cursor).  When
    the longer window is at least :data:`GALLOP_FACTOR` times the shorter,
    each element of the short run is binary-probed into the long one
    (galloping), with the probe window shrinking after every hit.
    """
    la = a_hi - a_lo
    lb = b_hi - b_lo
    if la > lb:
        a, a_lo, a_hi, b, b_lo, b_hi = b, b_lo, b_hi, a, a_lo, a_hi
        la, lb = lb, la
    if la == 0:
        return 0
    k = 0
    if lb >= la * GALLOP_FACTOR:
        if stats is not None:
            stats.galloping_steps += la
        for position in range(a_lo, a_hi):
            value = a[position]
            cursor = bisect_left(b, value, b_lo, b_hi)
            if cursor >= b_hi:
                break
            if b[cursor] == value:
                out[k] = value
                k += 1
                b_lo = cursor + 1
                if b_lo >= b_hi:
                    break
            else:
                b_lo = cursor
        return k
    i = a_lo
    j = b_lo
    while i < a_hi and j < b_hi:
        x = a[i]
        y = b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            out[k] = x
            k += 1
            i += 1
            j += 1
    return k


def intersect2(a, b, stats: Optional[VectorizedStats] = None) -> array:
    """The intersection of two sorted runs as a fresh ``array('i')``."""
    out = _int_run(min(len(a), len(b)))
    k = intersect_into(a, 0, len(a), b, 0, len(b), out, stats)
    del out[k:]
    return out


def intersect_k(runs: Sequence, stats: Optional[VectorizedStats] = None) -> array:
    """Intersect any number of sorted runs, smallest-first.

    Ordering by length makes every intermediate result no longer than the
    shortest run, so each later step intersects a tiny run against one more —
    the smallest-first discipline the frozenset path applies with
    ``rows.sort(key=len)``.  Raises ``ValueError`` on an empty run list (the
    empty intersection is the universe, which a finite kernel cannot return).
    """
    ordered = sorted(runs, key=len)
    if not ordered:
        raise ValueError("intersect_k needs at least one run")
    result = ordered[0]
    for run in ordered[1:]:
        if not len(result):
            break
        result = intersect2(result, run, stats)
    if result is ordered[0]:
        result = array("i", result)
    return result


def intersect_reference(runs: Sequence) -> List[int]:
    """Pure-python oracle: ``reduce(frozenset.intersection)``, sorted.

    Deliberately built on set algebra (the representation the kernels
    replace) so the property tests pin the kernels against an independent
    implementation.  Test/reference use only — never on a hot path.
    """
    sets = [frozenset(run) for run in runs]  # hotpath: ok (reference oracle)
    if not sets:
        raise ValueError("intersect_reference needs at least one run")
    common = frozenset.intersection(*sets)  # hotpath: ok (reference oracle)
    return sorted(common)


# ---------------------------------------------------------------------------
# Dense enumeration state
# ---------------------------------------------------------------------------

# Sentinel returned by DenseLocality.context_for when the focus candidate is
# provably unmatchable (an empty local pool) — the caller answers False
# without enumerating, exactly like the frozenset path's emptiness check.
EMPTY_LOCALITY = object()


class DenseRunCache:
    """Per-epoch memo of locality runs: radius balls and label-local pools.

    A radius ball is a pure function of ``(snapshot, source, radius)`` and a
    label-restricted local pool of ``(label, source, radius)``, so both are
    memoised per graph epoch — the same move the plan layer makes for
    compiled row stores.  A Zipf stream keeps re-verifying the same focus
    candidates, and with this cache each distinct candidate pays the frontier
    BFS and the members-run intersection once per epoch instead of once per
    request.  Nothing here ships across the pool boundary: workers derive
    their own caches from their own cached snapshots.

    Both memos are bounded; at capacity they clear and refill (entries are
    idempotent derivations, so losing one only costs a recomputation).  Misses
    serialise on a lock because the ball BFS shares one visited scratch; hits
    are plain lock-free dict probes.
    """

    __slots__ = (
        "snapshot",
        "neighborhoods",
        "visited",
        "balls",
        "label_balls",
        "capacity",
        "_lock",
    )

    def __init__(self, snapshot, capacity: int = 4096) -> None:
        self.snapshot = snapshot
        self.neighborhoods = snapshot.neighborhoods()
        self.visited = bytearray(snapshot.num_nodes)
        self.balls: Dict[Tuple[int, int], array] = {}
        self.label_balls: Dict[Tuple[int, int, int], array] = {}
        self.capacity = capacity
        self._lock = threading.Lock()

    def ball(self, source_id: int, radius: int) -> array:
        """The sorted dense ball around *source_id* (shared, do not mutate)."""
        key = (source_id, radius)
        run = self.balls.get(key)
        if run is None:
            with self._lock:
                run = self.balls.get(key)
                if run is None:
                    reached = self.neighborhoods.nodes_within_hops_ids(
                        source_id, radius, self.visited
                    )
                    run = array("i", sorted(reached))
                    if len(self.balls) >= self.capacity:
                        self.balls.clear()
                    self.balls[key] = run
        return run

    def label_ball(
        self,
        label_id: int,
        source_id: int,
        radius: int,
        stats: Optional[VectorizedStats] = None,
    ) -> array:
        """``members(label) ∩ ball(source, radius)`` as a sorted shared run."""
        key = (label_id, source_id, radius)
        run = self.label_balls.get(key)
        if run is None:
            members = self.snapshot.members_ids(label_id)
            ball = self.ball(source_id, radius)
            if stats is not None:
                stats.probes += 1
            out = _int_run(min(len(members), len(ball)))
            k = intersect_into(
                members, 0, len(members), ball, 0, len(ball), out, stats
            )
            del out[k:]
            with self._lock:
                if len(self.label_balls) >= self.capacity * 2:
                    self.label_balls.clear()
                self.label_balls[key] = out
            run = out
        return run


class DenseState:
    """The dense-id mirror of one :class:`MatchContext`'s search state.

    Built (or refused) once per context by :func:`build_dense_state`; holds
    the encoded static candidate runs, the pattern adjacency translated onto
    CSR ``(indptr, indices)`` pairs, the active-constraint plan for the
    context's matching order, the snapshot's dense ``str``-rank array and the
    reusable intersection scratch.  :meth:`enumerate` is the anchored
    backtracking search over that state.
    """

    __slots__ = (
        "snapshot",
        "decode",
        "encode",
        "srank",
        "pattern",
        "adjacency",
        "dense_adjacency",
        "runs",
        "run_lens",
        "run_labels",
        "cache",
        "order",
        "active",
        "single",
        "scratch_a",
        "scratch_b",
        "view_a",
        "view_b",
        "static_sorted",
        "stats",
        "capacity",
    )

    def __init__(
        self,
        snapshot,
        pattern,
        adjacency: Dict[NodeId, List[tuple]],
        dense_adjacency: Dict[NodeId, List[tuple]],
        runs: Dict[NodeId, array],
        run_labels: Dict[NodeId, Optional[int]],
        order: List[NodeId],
        srank: array,
        cache: Optional[DenseRunCache] = None,
    ) -> None:
        self.snapshot = snapshot
        self.decode = snapshot.nodes.decode
        self.encode = snapshot.nodes.encode
        self.srank = srank
        self.pattern = pattern
        self.adjacency = adjacency
        self.dense_adjacency = dense_adjacency
        self.runs = runs
        self.run_lens = {node: len(run) for node, run in runs.items()}
        # pattern node -> node label id when its pool is the untouched
        # label-wide member run (locality restrictions then come from the
        # per-epoch cache), None when the pool was pruned (per-query run).
        self.run_labels = run_labels
        self.cache = cache if cache is not None else DenseRunCache(snapshot)
        self.order = list(order)
        self.active, self.single = dense_active_plan(order, dense_adjacency)
        self.capacity = max([len(run) for run in runs.values()] or [0]) + 1
        self.scratch_a = _int_run(self.capacity)
        self.scratch_b = _int_run(self.capacity)
        self.view_a = memoryview(self.scratch_a)
        self.view_b = memoryview(self.scratch_b)
        # Static pools ordered by srank, cached per pattern node: the pools
        # are immutable for the life of the state, so the sort runs once.
        self.static_sorted: Dict[NodeId, List[int]] = {}
        self.stats: Optional[VectorizedStats] = (
            VectorizedStats() if get_registry() else None
        )

    def flush_stats(self) -> None:
        """Flush accumulated kernel counters to the registry (query grain)."""
        if self.stats is not None:
            self.stats.flush()

    def enumerate(
        self,
        anchor: Dict[NodeId, NodeId],
        counter,
        limit: Optional[int] = None,
    ) -> Iterator[Dict[NodeId, NodeId]]:
        """Anchored enumeration over the static runs (original-id anchor).

        The caller (``MatchContext.isomorphisms``) has already validated the
        anchor against the candidate pools; membership there implies the
        anchor encodes and carries the right label, so the per-pair
        ``_consistent`` label check is a proven tautology here.
        """
        encode = self.encode
        anchor_items = []
        for pattern_node, graph_node in anchor.items():
            dense_id = encode(graph_node)
            if dense_id is None:  # pools are ghost-free; not a candidate
                return
            anchor_items.append((pattern_node, dense_id))
        yield from dense_isomorphisms(
            self,
            self.runs,
            self.run_lens,
            self.order,
            self.active,
            self.single,
            self.static_sorted,
            anchor_items,
            counter,
            limit,
        )


def dense_active_plan(
    order: Sequence[NodeId], dense_adjacency: Dict[NodeId, List[tuple]]
) -> Tuple[Dict[NodeId, Optional[tuple]], Dict[NodeId, tuple]]:
    """Per-node active constraints for *order*, in dense-row form.

    Mirrors ``MatchContext._build_active_plan`` exactly — same placement
    invariant, same ``None``-marks-impossible convention, same single-entry
    fast map — with constraints carried as ``(neighbor, indptr, indices)``
    CSR references instead of row-store dicts.
    """
    plan: Dict[NodeId, Optional[tuple]] = {}
    single: Dict[NodeId, tuple] = {}
    placed = set()
    for pattern_node in order:
        actives = []
        impossible = False
        for entry in dense_adjacency[pattern_node]:
            if entry[0] not in placed:
                continue
            if entry[1] is None:
                impossible = True
                break
            actives.append(entry)
        plan[pattern_node] = None if impossible else tuple(actives)
        if not impossible and len(actives) == 1:
            single[pattern_node] = actives[0]
        placed.add(pattern_node)
    return plan, single


def build_dense_state(
    snapshot,
    pattern,
    adjacency: Dict[NodeId, List[tuple]],
    pattern_labels: Dict[NodeId, str],
    candidates: Dict[NodeId, set],
    order: List[NodeId],
    rank_table: Optional[Tuple[array, bool]] = None,
    cache: Optional[DenseRunCache] = None,
) -> Optional[DenseState]:
    """Encode a context's candidate pools into a :class:`DenseState`.

    Returns ``None`` — leaving the frozenset path to serve unchanged — when
    the dense mirror cannot be byte-identical:

    * the snapshot's ``str`` ranks are not injective (two distinct nodes
      share a ``str`` form, so rank-sorting could tie-break differently than
      the set-iteration order the frozenset path inherits);
    * some candidate is unknown to the snapshot (a ghost — the frozenset path
      surfaces it and lets ``is_extendable`` raise ``NodeNotFoundError``);
    * some candidate does not carry its pattern node's label (the frozenset
      path counts the extension, then filters it — eliding the label check
      would diverge silently).

    Both disqualifiers collapse into one C-level subset test per pool:
    ``pool <= members_frozenset(label)`` holds exactly when every candidate
    is a snapshot node carrying the pattern node's label.  An untouched
    label-wide pool is recognised by size and becomes the snapshot's shared
    member run — nothing encodes at all; a pruned pool encodes through the
    interner (``dict.get`` + C sort, never a per-element Python check).
    """
    srank, unique = (
        rank_table if rank_table is not None else snapshot.str_rank_array()
    )
    if not unique:
        return None
    encode = snapshot.nodes.encode
    label_id_of = snapshot.node_labels.get
    runs: Dict[NodeId, array] = {}
    run_labels: Dict[NodeId, Optional[int]] = {}
    for pattern_node, label in pattern_labels.items():
        pool = candidates.get(pattern_node)
        if pool is None:
            pool = frozenset()
        elif not isinstance(pool, (set, frozenset)):
            pool = frozenset(pool)
        label_id = label_id_of(label)
        members = (
            snapshot.members_frozenset(label_id)
            if label_id is not None
            else frozenset()
        )
        if not pool <= members:
            return None  # a ghost or a mislabeled candidate
        if label_id is not None and len(pool) == len(members):
            runs[pattern_node] = snapshot.members_ids(label_id)
            run_labels[pattern_node] = label_id
        else:
            runs[pattern_node] = array("i", sorted(map(encode, pool)))
            run_labels[pattern_node] = None
    encode_label = snapshot.edge_labels.encode
    out_csr, inc_csr = snapshot.out, snapshot.inc
    dense_adjacency: Dict[NodeId, List[tuple]] = {}
    for pattern_node, constraints in adjacency.items():
        entries = []
        for neighbor, label, outgoing in constraints:
            edge_label = encode_label(label)
            if edge_label is None:
                entries.append((neighbor, None, None))
                continue
            # Same orientation rule as the frozenset resolve: an outgoing
            # pattern edge constrains the pool to predecessors of the bound
            # neighbour — the incoming CSR — and vice versa.
            csr = inc_csr if outgoing else out_csr
            indptr, indices = csr.sorted_runs(edge_label)
            entries.append((neighbor, indptr, indices))
        dense_adjacency[pattern_node] = entries
    return DenseState(
        snapshot,
        pattern,
        adjacency,
        dense_adjacency,
        runs,
        run_labels,
        order,
        srank,
        cache=cache,
    )


def dense_isomorphisms(
    state: DenseState,
    pools: Dict[NodeId, array],
    pool_lens: Dict[NodeId, int],
    order: Sequence[NodeId],
    active: Dict[NodeId, Optional[tuple]],
    single: Dict[NodeId, tuple],
    static_sorted: Dict[NodeId, List[int]],
    anchor_items: Sequence[Tuple[NodeId, int]],
    counter,
    limit: Optional[int] = None,
) -> Iterator[Dict[NodeId, NodeId]]:
    """The dense-id anchored backtracking search.

    Byte-identical to the frozenset branch of ``MatchContext.isomorphisms``:
    pools are derived from the same active-constraint plan (single-constraint
    fast case, smallest-first chains otherwise), ordered by the dense
    ``str``-rank array (same keys as the ``str_ranks`` map, unique by the
    build-time guard), and ``counter.extensions`` is incremented for exactly
    the candidates the frozenset loop would visit.  Assignments live in dense
    ids; decoding to original ids happens only when a full match is yielded.
    """
    srank_key = state.srank.__getitem__
    decode = state.decode
    stats = state.stats
    scratch_a, scratch_b = state.scratch_a, state.scratch_b
    view_a, view_b = state.view_a, state.view_b
    single_get = single.get
    count = counter is not None

    assignment: Dict[NodeId, int] = dict(anchor_items)
    used = set(assignment.values())
    total = len(order)
    yielded = 0

    def ordered_candidates(pattern_node: NodeId):
        entry = single_get(pattern_node)
        run = pools[pattern_node]
        run_len = pool_lens[pattern_node]
        if entry is not None:
            indptr = entry[1]
            bound = assignment[entry[0]]
            row_lo = indptr[bound]
            row_hi = indptr[bound + 1]
            if row_lo == row_hi:  # empty row: the pool is already empty
                return ()
            if stats is not None:
                stats.probes += 1
            k = intersect_into(
                run, 0, run_len, entry[2], row_lo, row_hi, scratch_a, stats
            )
            if not k:
                return ()
            return sorted(view_a[:k], key=srank_key)
        actives = active[pattern_node]
        if actives is None:  # an active edge label is absent from the graph
            return ()
        if not actives:
            # Constraint-free node: the (invariant) static pool, sorted once.
            cached = static_sorted.get(pattern_node)
            if cached is None:
                cached = sorted(memoryview(run)[:run_len], key=srank_key)
                static_sorted[pattern_node] = cached
            return cached
        rows = []
        for neighbor, indptr, indices in actives:
            bound = assignment[neighbor]
            row_lo = indptr[bound]
            row_hi = indptr[bound + 1]
            if row_lo == row_hi:
                return ()
            rows.append((row_hi - row_lo, row_lo, row_hi, indices))
        rows.sort(key=_row_length)  # smallest-first, stable on ties
        source, source_hi = run, run_len
        out_run, out_view, spare_run, spare_view = (
            scratch_a,
            view_a,
            scratch_b,
            view_b,
        )
        result_view = None
        for _length, row_lo, row_hi, indices in rows:
            if stats is not None:
                stats.probes += 1
            k = intersect_into(
                source, 0, source_hi, indices, row_lo, row_hi, out_run, stats
            )
            if not k:
                return ()
            source, source_hi = out_run, k
            result_view = out_view
            out_run, out_view, spare_run, spare_view = (
                spare_run,
                spare_view,
                out_run,
                out_view,
            )
        return sorted(result_view[:source_hi], key=srank_key)

    def extend(position: int) -> Iterator[Dict[NodeId, NodeId]]:
        nonlocal yielded
        if position == total:
            yielded += 1
            yield {node: decode(dense) for node, dense in assignment.items()}
            return
        pattern_node = order[position]
        for dense_node in ordered_candidates(pattern_node):
            if dense_node in used:
                continue
            if count:
                counter.extensions += 1
            # The frozenset path's is_extendable label check is a proven
            # tautology here (see build_dense_state), so it is elided.
            assignment[pattern_node] = dense_node
            used.add(dense_node)
            yield from extend(position + 1)
            del assignment[pattern_node]
            used.discard(dense_node)
            if limit is not None and yielded >= limit:
                return

    yield from extend(len(anchor_items))


def _row_length(row: tuple) -> int:
    return row[0]


# ---------------------------------------------------------------------------
# The DMatch locality sweep, vectorized
# ---------------------------------------------------------------------------


class DenseLocality:
    """Per-query dense state for DMatch's locality-restricted verification.

    Shares the query's :class:`DenseState` (the encoded static runs are
    exactly the pools the locality sweep restricts) and its per-epoch
    :class:`DenseRunCache`: the radius ball and every label-wide local pool
    are memoised runs, so a repeated focus candidate pays neither the BFS nor
    the members-run intersection again.  Pruned (per-query) pools intersect
    with the cached ball through the kernels into reusable buffers.  The
    matching order still follows the local pool sizes per candidate (the same
    per-candidate ``_search_order`` the frozenset path runs), memoised by the
    size profile — two candidates with the same local pool sizes share one
    order and one active-constraint plan.

    :meth:`context_for` returns ``self`` primed for one candidate,
    :data:`EMPTY_LOCALITY` when a local pool is empty (definite non-match),
    or ``None`` when this candidate cannot be served densely (unknown focus
    node — the caller falls back and fails exactly as before).  The sweep is
    sequential, so one instance serves every candidate of the query.
    """

    __slots__ = (
        "state",
        "pattern",
        "focus",
        "radius",
        "buffers",
        "pools",
        "lengths",
        "order",
        "active",
        "single",
        "static_sorted",
        "focus_candidate",
        "_focus_dense",
        "_order_cache",
        "_nodes",
    )

    def __init__(self, state: DenseState, focus: NodeId, radius: int) -> None:
        self.state = state
        self.pattern = state.pattern
        self.focus = focus
        self.radius = radius
        # Scratch buffers only for pools the per-epoch cache cannot serve:
        # the focus singleton and pruned (per-query) runs.
        self.buffers = {
            node: _int_run(max(len(run), 1))
            for node, run in state.runs.items()
            if node == focus or state.run_labels[node] is None
        }
        self.pools: Dict[NodeId, array] = dict(state.runs)
        self.lengths: Dict[NodeId, int] = {}
        self.order: List[NodeId] = []
        self.active: Dict[NodeId, Optional[tuple]] = {}
        self.single: Dict[NodeId, tuple] = {}
        self.static_sorted: Dict[NodeId, List[int]] = {}
        self.focus_candidate: Optional[NodeId] = None
        self._focus_dense = -1
        # size profile -> (order, active, single); per query, bounded.
        self._order_cache: Dict[tuple, tuple] = {}
        self._nodes = tuple(state.runs)

    def context_for(self, focus_candidate: NodeId):
        """Prime the local pools for one focus candidate.

        Mirrors the frozenset locality restriction step for step: the ball,
        the per-node intersections, the focus-pool override and the
        emptiness check — in dense-id space, through the kernels and the
        per-epoch run cache.
        """
        state = self.state
        focus_dense = state.encode(focus_candidate)
        if focus_dense is None:
            # Unknown focus candidate: the generic path raises
            # NodeNotFoundError from the ball BFS — fall back to it.
            return None
        focus = self.focus
        focus_run = state.runs[focus]
        focus_len = state.run_lens[focus]
        cursor = bisect_left(focus_run, focus_dense, 0, focus_len)
        if cursor >= focus_len or focus_run[cursor] != focus_dense:
            # local_candidates[focus] would be empty: definite non-match.
            return EMPTY_LOCALITY
        cache = state.cache
        radius = self.radius
        stats = state.stats
        lengths = self.lengths
        buffers = self.buffers
        pools = self.pools
        run_labels = state.run_labels
        ball: Optional[array] = None
        ball_len = 0
        for pattern_node, run in state.runs.items():
            if pattern_node == focus:
                focus_buffer = buffers[focus]
                focus_buffer[0] = focus_dense
                pools[focus] = focus_buffer
                lengths[focus] = 1
                continue
            label_id = run_labels[pattern_node]
            if label_id is not None:
                # Label-wide pool: the restriction is a memoised per-epoch
                # run — one kernel intersection per (label, candidate), ever.
                local = cache.label_ball(label_id, focus_dense, radius, stats)
                k = len(local)
                if not k:
                    return EMPTY_LOCALITY
                pools[pattern_node] = local
                lengths[pattern_node] = k
                continue
            if ball is None:
                ball = cache.ball(focus_dense, radius)
                ball_len = len(ball)
            if stats is not None:
                stats.probes += 1
            k = intersect_into(
                run,
                0,
                state.run_lens[pattern_node],
                ball,
                0,
                ball_len,
                buffers[pattern_node],
                stats,
            )
            if not k:
                return EMPTY_LOCALITY
            pools[pattern_node] = buffers[pattern_node]
            lengths[pattern_node] = k
        # Per-candidate matching order from the local pool sizes — the same
        # SelectNext policy (and tie-break) as the per-candidate context the
        # frozenset path builds.  The policy reads pool *sizes* only, so the
        # result is memoised on the size profile.
        key = tuple(map(lengths.__getitem__, self._nodes))
        cached = self._order_cache.get(key)
        if cached is None:
            from repro.matching.generic import _search_order

            sized = {node: range(size) for node, size in lengths.items()}
            order = _search_order(
                self.pattern, sized, {focus}, adjacency=state.adjacency
            )
            cached = (order, *dense_active_plan(order, state.dense_adjacency))
            if len(self._order_cache) >= 1024:
                self._order_cache.clear()
            self._order_cache[key] = cached
        self.order, self.active, self.single = cached
        self.static_sorted.clear()
        self.focus_candidate = focus_candidate
        self._focus_dense = focus_dense
        return self

    def isomorphisms(
        self,
        anchor: Optional[Dict[NodeId, NodeId]] = None,
        counter=None,
        limit: Optional[int] = None,
    ) -> Iterator[Dict[NodeId, NodeId]]:
        """Enumerate matches anchored at the primed focus candidate."""
        anchor = anchor or {}
        if list(anchor.items()) != [(self.focus, self.focus_candidate)]:
            raise ValueError(
                "DenseLocality serves exactly the primed focus anchor"
            )
        yield from dense_isomorphisms(
            self.state,
            self.pools,
            self.lengths,
            self.order,
            self.active,
            self.single,
            self.static_sorted,
            [(self.focus, self._focus_dense)],
            counter,
            limit,
        )
