"""Compiled query plans: per-fingerprint straight-line execution.

The service canonicalizes every pattern to a stable fingerprint; this package
compiles each fingerprint **once per process** into a :class:`CompiledPlan`
(lowered quantifier closures, pre-resolved per-label row stores, shared
``str``-order ranks, a stats-derived order preview) and caches it in a
bounded :class:`PlanCache` keyed ``(fingerprint, engine options, index stats
epoch)`` — beside the result cache in the service, per-process inside pool
workers.  The interpreted path stays the asserted-byte-identical fallback
(answers and work counters), same contract as ``use_index=False``.
"""

from repro.plan.cache import (
    PlanCache,
    PlanCacheStats,
    reset_worker_plan_cache,
    worker_plan_cache,
)
from repro.plan.compile import (
    CompiledPlan,
    PlanResolution,
    compile_plan,
    lower_quantifier,
    plan_compile_count,
)
from repro.plan.vectorized import (
    GALLOP_FACTOR,
    VectorizedStats,
    build_dense_state,
    intersect2,
    intersect_into,
    intersect_k,
    intersect_reference,
)

__all__ = [
    "CompiledPlan",
    "GALLOP_FACTOR",
    "PlanCache",
    "PlanCacheStats",
    "PlanResolution",
    "VectorizedStats",
    "build_dense_state",
    "compile_plan",
    "intersect2",
    "intersect_into",
    "intersect_k",
    "intersect_reference",
    "lower_quantifier",
    "plan_compile_count",
    "reset_worker_plan_cache",
    "worker_plan_cache",
]
