"""Candidate computation and filtering (``FilterCandidate`` of QMatch).

QMatch initialises, for every pattern node ``u``, a candidate set ``C(u)`` and
the auxiliary structures the paper calls ``X``, ``c`` and ``U`` (Section 4.1):

* ``U(v, e)`` — an upper bound on ``|Me(vx, v, Q)|``, initialised to
  ``|Me(v)|`` (the number of ``v``'s children via an edge with ``e``'s label)
  and here immediately sharpened to count only children carrying the right
  node label;
* candidates whose upper bound already fails a positive quantifier are removed
  before the search starts (the paper's Example 5: ``x1`` is dropped because
  ``U(x1, (xo, z1)) = 1 < 2``);
* optionally, the candidate sets are intersected with the maximal dual
  simulation relation (Lemma 13), a polynomial pre-filter that is sound for
  isomorphism;
* finally the global pruning rule of Lemma 12 can conclude that the focus has
  no match at all when some pattern node retains fewer candidates than the
  largest numeric threshold on its incoming edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.graph.simulation import dual_simulation_relation
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter

__all__ = ["CandidateIndex", "build_candidate_index"]

NodeId = Hashable


@dataclass
class CandidateIndex:
    """Filtered candidate sets plus the upper-bound structures of QMatch."""

    pattern: QuantifiedGraphPattern
    graph: PropertyGraph
    candidates: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    # (pattern edge key, graph node) -> upper bound U(v, e)
    upper_bounds: Dict[tuple, int] = field(default_factory=dict)
    pruned: int = 0

    def candidate_set(self, pattern_node: NodeId) -> Set[NodeId]:
        return self.candidates.get(pattern_node, set())

    def is_empty(self) -> bool:
        """True when some pattern node has no candidate left (no match exists)."""
        return any(not members for members in self.candidates.values())

    def upper_bound(self, edge_key: tuple, graph_node: NodeId) -> int:
        return self.upper_bounds.get((edge_key, graph_node), 0)

    def global_prune_check(self) -> bool:
        """Lemma 12: the focus can only have a match if every pattern node keeps
        at least ``pm`` candidates, where ``pm`` is the largest numeric
        threshold over the positive quantifiers of its incoming edges.

        Returns ``True`` when the check passes (a match is still possible).
        """
        for node in self.pattern.nodes():
            required = 1
            for edge in self.pattern.in_edges(node):
                quantifier = edge.quantifier
                if quantifier.is_negation or quantifier.is_ratio:
                    continue
                if quantifier.op in (">=", ">", "="):
                    threshold = quantifier.numeric_threshold(0)
                    if quantifier.op == ">":
                        threshold += 1
                    required = max(required, threshold)
            if len(self.candidates.get(node, ())) < required:
                return False
        return True


def _upper_bound(
    graph: PropertyGraph, source: NodeId, edge_label: str, target_label: str
) -> int:
    """A cheap upper bound on ``|Me(vx, v, Q)|``: children with the right labels."""
    children = graph.successors(source, edge_label)
    if not children:
        return 0
    return sum(1 for child in children if graph.node_label(child) == target_label)


def build_candidate_index(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    use_simulation: bool = True,
    counter: Optional[WorkCounter] = None,
) -> CandidateIndex:
    """Build filtered candidate sets for a *positive* pattern.

    The filters applied, in order:

    1. node-label candidates,
    2. (optional) dual graph simulation on the stratified pattern,
    3. per-edge quantifier upper bounds ``U(v, e)``.

    Every filter is sound for isomorphism, so the filtered sets still contain
    every true match; tests assert this against the reference engine.
    """
    index = CandidateIndex(pattern=pattern, graph=graph)
    if use_simulation:
        index.candidates = dual_simulation_relation(pattern.stratified().graph, graph)
    else:
        index.candidates = {
            u: set(graph.nodes_with_label(pattern.node_label(u)))
            for u in pattern.nodes()
        }

    # Quantifier-aware upper-bound filter.
    for edge in pattern.edges():
        quantifier = edge.quantifier
        if quantifier.is_negation:
            continue
        edge_key = edge.key
        target_label = pattern.node_label(edge.target)
        survivors: Set[NodeId] = set()
        for candidate in index.candidates.get(edge.source, ()):
            bound = _upper_bound(graph, candidate, edge.label, target_label)
            index.upper_bounds[(edge_key, candidate)] = bound
            total = graph.out_degree(candidate, edge.label)
            if quantifier.may_still_hold(bound, total):
                survivors.add(candidate)
            else:
                index.pruned += 1
        index.candidates[edge.source] = survivors

    if counter is not None:
        counter.candidates_pruned += index.pruned
    return index
