"""Candidate computation and filtering (``FilterCandidate`` of QMatch).

QMatch initialises, for every pattern node ``u``, a candidate set ``C(u)`` and
the auxiliary structures the paper calls ``X``, ``c`` and ``U`` (Section 4.1):

* ``U(v, e)`` — an upper bound on ``|Me(vx, v, Q)|``, initialised to
  ``|Me(v)|`` (the number of ``v``'s children via an edge with ``e``'s label)
  and here immediately sharpened to count only children carrying the right
  node label;
* candidates whose upper bound already fails a positive quantifier are removed
  before the search starts (the paper's Example 5: ``x1`` is dropped because
  ``U(x1, (xo, z1)) = 1 < 2``);
* optionally, the candidate sets are intersected with the maximal dual
  simulation relation (Lemma 13), a polynomial pre-filter that is sound for
  isomorphism;
* finally the global pruning rule of Lemma 12 can conclude that the focus has
  no match at all when some pattern node retains fewer candidates than the
  largest numeric threshold on its incoming edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.graph.simulation import dual_simulation_relation
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter

__all__ = ["CandidateIndex", "build_candidate_index", "apply_quantifier_bound_filter"]

NodeId = Hashable


@dataclass
class CandidateIndex:
    """Filtered candidate sets plus the upper-bound structures of QMatch."""

    pattern: QuantifiedGraphPattern
    graph: PropertyGraph
    candidates: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    # (pattern edge key, graph node) -> upper bound U(v, e)
    upper_bounds: Dict[tuple, int] = field(default_factory=dict)
    pruned: int = 0

    def candidate_set(self, pattern_node: NodeId) -> Set[NodeId]:
        return self.candidates.get(pattern_node, set())

    def is_empty(self) -> bool:
        """True when some pattern node has no candidate left (no match exists)."""
        return any(not members for members in self.candidates.values())

    def upper_bound(self, edge_key: tuple, graph_node: NodeId) -> int:
        return self.upper_bounds.get((edge_key, graph_node), 0)

    def global_prune_check(self) -> bool:
        """Lemma 12: the focus can only have a match if every pattern node keeps
        at least ``pm`` candidates, where ``pm`` is the largest numeric
        threshold over the positive quantifiers of its incoming edges.

        Returns ``True`` when the check passes (a match is still possible).
        """
        for node in self.pattern.nodes():
            required = 1
            for edge in self.pattern.in_edges(node):
                quantifier = edge.quantifier
                if quantifier.is_negation or quantifier.is_ratio:
                    continue
                if quantifier.op in (">=", ">", "="):
                    threshold = quantifier.numeric_threshold(0)
                    if quantifier.op == ">":
                        threshold += 1
                    required = max(required, threshold)
            if len(self.candidates.get(node, ())) < required:
                return False
        return True


def _upper_bound(
    graph: PropertyGraph, source: NodeId, edge_label: str, target_label: str
) -> int:
    """A cheap upper bound on ``|Me(vx, v, Q)|``: children with the right labels."""
    children = graph.successors(source, edge_label)
    if not children:
        return 0
    return sum(1 for child in children if graph.node_label(child) == target_label)


def apply_quantifier_bound_filter(
    index: CandidateIndex,
    edge,
    graph: PropertyGraph,
    graph_index=None,
) -> None:
    """Apply the ``U(v, e)`` upper-bound filter of one pattern edge to *index*.

    Records the bound for every candidate of ``edge.source``, keeps the ones
    whose quantifier may still hold, and counts the rest in ``index.pruned``.
    The same routine serves the full build (:func:`build_candidate_index`)
    and the incremental rebuild around positified edges
    (:mod:`repro.matching.incremental`): with *graph_index* the bound walks
    one CSR row and the total comes from the degree arrays, otherwise both
    are dict scans — values (and therefore prune counts) are identical.
    Negated edges are skipped (they constrain via subtraction, not counting).
    """
    quantifier = edge.quantifier
    if quantifier.is_negation:
        return
    edge_key = edge.key
    target_label = index.pattern.node_label(edge.target)
    survivors: Set[NodeId] = set()
    if graph_index is not None:
        edge_label_id = graph_index.edge_label_id(edge.label)
        target_label_id = graph_index.node_label_id(target_label)
        for candidate in index.candidates.get(edge.source, ()):
            candidate_id = graph_index.node_id(candidate)
            if edge_label_id < 0 or candidate_id < 0:
                bound = 0
                total = 0
            else:
                bound = graph_index.count_out_with_label(
                    candidate_id, edge_label_id, target_label_id
                )
                total = graph_index.out_degree_ids(candidate_id, edge_label_id)
            index.upper_bounds[(edge_key, candidate)] = bound
            if quantifier.may_still_hold(bound, total):
                survivors.add(candidate)
            else:
                index.pruned += 1
    else:
        for candidate in index.candidates.get(edge.source, ()):
            bound = _upper_bound(graph, candidate, edge.label, target_label)
            index.upper_bounds[(edge_key, candidate)] = bound
            total = graph.out_degree(candidate, edge.label)
            if quantifier.may_still_hold(bound, total):
                survivors.add(candidate)
            else:
                index.pruned += 1
    index.candidates[edge.source] = survivors


def build_candidate_index(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    use_simulation: bool = True,
    counter: Optional[WorkCounter] = None,
    use_index: bool = True,
) -> CandidateIndex:
    """Build filtered candidate sets for a *positive* pattern.

    The filters applied, in order:

    1. node-label candidates,
    2. (optional) dual graph simulation on the stratified pattern,
    3. per-edge quantifier upper bounds ``U(v, e)``.

    Every filter is sound for isomorphism, so the filtered sets still contain
    every true match; tests assert this against the reference engine.

    ``use_index=True`` (the default) resolves the label candidates, the
    simulation fixpoint and the degree probes of step 3 through a compiled
    :class:`repro.index.GraphIndex` snapshot instead of per-node dict scans.
    Both paths produce identical candidate sets, upper bounds and prune
    counts; the dict fallback is kept precisely so tests can assert that.
    """
    index = CandidateIndex(pattern=pattern, graph=graph)
    graph_index = None
    if use_index:
        from repro.index.snapshot import GraphIndex

        graph_index = GraphIndex.for_graph(graph)
    if use_simulation:
        index.candidates = dual_simulation_relation(
            pattern.stratified().graph, graph, use_index=use_index
        )
    elif graph_index is not None:
        index.candidates = {
            u: graph_index.nodes_with_label(pattern.node_label(u))
            for u in pattern.nodes()
        }
    else:
        index.candidates = {
            u: graph.nodes_with_label(pattern.node_label(u))
            for u in pattern.nodes()
        }

    # Quantifier-aware upper-bound filter.  The compiled path computes
    # U(v, e) by walking one CSR row and reads the total degree from the
    # per-label degree arrays; values are identical to the dict path.
    for edge in pattern.edges():
        apply_quantifier_bound_filter(index, edge, graph, graph_index)

    if counter is not None:
        counter.candidates_pruned += index.pruned
    return index
