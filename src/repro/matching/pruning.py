"""Selection and pruning heuristics for the DMatch search (paper Appendix B).

DMatch does not visit candidate children in arbitrary order: at every
extension step it ranks the candidates of the next pattern node by a
*potential* score

``potential(v') = (1 + |P(v') ∩ C(u)| / |C(u)|) · Σ_{e=(u',u'')} U(v', e) / p_e``

that favours candidates which (a) are children of many other candidates —
verifying them benefits future backtracking — and (b) have head-room with
respect to the quantifier thresholds of their own outgoing edges, so they are
more likely to be matches themselves.  The functions here compute that score
and produce the per-pattern-node candidate orderings consumed by the generic
search engine.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.candidates import CandidateIndex
from repro.patterns.qgp import QuantifiedGraphPattern

__all__ = ["candidate_potential", "potential_ordering"]

NodeId = Hashable


def candidate_potential(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    index: CandidateIndex,
    pattern_node: NodeId,
    candidate: NodeId,
) -> float:
    """The potential score of *candidate* as a match of *pattern_node*."""
    # Term 1: how many candidate parents (across all incoming pattern edges)
    # could benefit from verifying this candidate.
    parent_bonus = 0.0
    for edge in pattern.in_edges(pattern_node):
        parent_candidates = index.candidate_set(edge.source)
        if not parent_candidates:
            continue
        parents_in_graph = graph.predecessors(candidate, edge.label)
        overlap = len(parents_in_graph & parent_candidates)
        parent_bonus = max(parent_bonus, overlap / len(parent_candidates))

    # Term 2: head-room of the candidate w.r.t. its own outgoing quantifiers.
    headroom = 0.0
    out_edges = pattern.out_edges(pattern_node)
    if out_edges:
        for edge in out_edges:
            quantifier = edge.quantifier
            if quantifier.is_negation:
                continue
            bound = index.upper_bound(edge.key, candidate)
            total = graph.out_degree(candidate, edge.label)
            threshold = max(quantifier.numeric_threshold(total), 1)
            headroom += bound / threshold
    else:
        headroom = 1.0
    return (1.0 + parent_bonus) * headroom


def _potential_ordering_indexed(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    index: CandidateIndex,
    restrict_to: Optional[Dict[NodeId, Set[NodeId]]] = None,
) -> Dict[NodeId, List[NodeId]]:
    """The compiled twin of :func:`potential_ordering`.

    Computes *exactly* the same scores (same float operations in the same
    order), but hoists the per-candidate work the dict path repeats: pattern
    in/out edge lists are built once per pattern node instead of once per
    candidate, parent candidate pools are interned once, and the
    parent-overlap / degree probes walk CSR rows and degree arrays instead of
    copying adjacency sets per probe.
    """
    from repro.index.snapshot import GraphIndex

    graph_index = GraphIndex.for_graph(graph)
    node_id = graph_index.node_id
    in_csr = graph_index.inc
    ordering: Dict[NodeId, List[NodeId]] = {}
    for pattern_node in pattern.nodes():
        pool: Iterable[NodeId] = index.candidate_set(pattern_node)
        if restrict_to is not None and pattern_node in restrict_to:
            pool = [v for v in pool if v in restrict_to[pattern_node]]
        # Hoisted per-pattern-node state: (edge label id, interned parent
        # pool, pool size) per incoming edge; quantifier rows per outgoing.
        in_specs = []
        for edge in pattern.in_edges(pattern_node):
            parent_candidates = index.candidate_set(edge.source)
            if not parent_candidates:
                continue
            parent_ids = {node_id(parent) for parent in parent_candidates}
            in_specs.append(
                (graph_index.edge_label_id(edge.label), parent_ids, len(parent_candidates))
            )
        out_specs = [
            (edge.key, edge.quantifier, graph_index.edge_label_id(edge.label))
            for edge in pattern.out_edges(pattern_node)
        ]
        upper_bounds = index.upper_bounds
        scored = []
        for candidate in pool:
            candidate_id = node_id(candidate)
            parent_bonus = 0.0
            for edge_label_id, parent_ids, parent_count in in_specs:
                if edge_label_id < 0 or candidate_id < 0:
                    continue
                indices, start, end = in_csr.row(edge_label_id, candidate_id)
                overlap = 0
                for position in range(start, end):
                    if indices[position] in parent_ids:
                        overlap += 1
                bonus = overlap / parent_count
                if bonus > parent_bonus:
                    parent_bonus = bonus
            headroom = 0.0
            if out_specs:
                for edge_key, quantifier, edge_label_id in out_specs:
                    if quantifier.is_negation:
                        continue
                    bound = upper_bounds.get((edge_key, candidate), 0)
                    total = (
                        graph_index.out_degree_ids(candidate_id, edge_label_id)
                        if candidate_id >= 0 and edge_label_id >= 0
                        else 0
                    )
                    threshold = max(quantifier.numeric_threshold(total), 1)
                    headroom += bound / threshold
            else:
                headroom = 1.0
            scored.append(((1.0 + parent_bonus) * headroom, candidate))
        scored.sort(key=lambda pair: (-pair[0], str(pair[1])))
        ordering[pattern_node] = [candidate for _, candidate in scored]
    return ordering


def potential_ordering(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    index: CandidateIndex,
    restrict_to: Optional[Dict[NodeId, Set[NodeId]]] = None,
    use_index: bool = False,
) -> Dict[NodeId, List[NodeId]]:
    """Per-pattern-node candidate lists sorted by decreasing potential.

    ``restrict_to`` optionally narrows the candidate pools (e.g. to the d-hop
    neighbourhood of the focus candidate currently being verified).
    ``use_index`` computes the same scores through the compiled
    :class:`repro.index.GraphIndex` (identical ordering, fewer dict probes).
    """
    if use_index:
        return _potential_ordering_indexed(pattern, graph, index, restrict_to)
    ordering: Dict[NodeId, List[NodeId]] = {}
    for pattern_node in pattern.nodes():
        pool: Iterable[NodeId] = index.candidate_set(pattern_node)
        if restrict_to is not None and pattern_node in restrict_to:
            pool = [v for v in pool if v in restrict_to[pattern_node]]
        scored = [
            (candidate_potential(pattern, graph, index, pattern_node, candidate), candidate)
            for candidate in pool
        ]
        scored.sort(key=lambda pair: (-pair[0], str(pair[1])))
        ordering[pattern_node] = [candidate for _, candidate in scored]
    return ordering
