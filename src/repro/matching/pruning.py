"""Selection and pruning heuristics for the DMatch search (paper Appendix B).

DMatch does not visit candidate children in arbitrary order: at every
extension step it ranks the candidates of the next pattern node by a
*potential* score

``potential(v') = (1 + |P(v') ∩ C(u)| / |C(u)|) · Σ_{e=(u',u'')} U(v', e) / p_e``

that favours candidates which (a) are children of many other candidates —
verifying them benefits future backtracking — and (b) have head-room with
respect to the quantifier thresholds of their own outgoing edges, so they are
more likely to be matches themselves.  The functions here compute that score
and produce the per-pattern-node candidate orderings consumed by the generic
search engine.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.candidates import CandidateIndex
from repro.patterns.qgp import QuantifiedGraphPattern

__all__ = ["candidate_potential", "potential_ordering"]

NodeId = Hashable


def candidate_potential(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    index: CandidateIndex,
    pattern_node: NodeId,
    candidate: NodeId,
) -> float:
    """The potential score of *candidate* as a match of *pattern_node*."""
    # Term 1: how many candidate parents (across all incoming pattern edges)
    # could benefit from verifying this candidate.
    parent_bonus = 0.0
    for edge in pattern.in_edges(pattern_node):
        parent_candidates = index.candidate_set(edge.source)
        if not parent_candidates:
            continue
        parents_in_graph = graph.predecessors(candidate, edge.label)
        overlap = len(parents_in_graph & parent_candidates)
        parent_bonus = max(parent_bonus, overlap / len(parent_candidates))

    # Term 2: head-room of the candidate w.r.t. its own outgoing quantifiers.
    headroom = 0.0
    out_edges = pattern.out_edges(pattern_node)
    if out_edges:
        for edge in out_edges:
            quantifier = edge.quantifier
            if quantifier.is_negation:
                continue
            bound = index.upper_bound(edge.key, candidate)
            total = graph.out_degree(candidate, edge.label)
            threshold = max(quantifier.numeric_threshold(total), 1)
            headroom += bound / threshold
    else:
        headroom = 1.0
    return (1.0 + parent_bonus) * headroom


def potential_ordering(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    index: CandidateIndex,
    restrict_to: Optional[Dict[NodeId, Set[NodeId]]] = None,
) -> Dict[NodeId, List[NodeId]]:
    """Per-pattern-node candidate lists sorted by decreasing potential.

    ``restrict_to`` optionally narrows the candidate pools (e.g. to the d-hop
    neighbourhood of the focus candidate currently being verified).
    """
    ordering: Dict[NodeId, List[NodeId]] = {}
    for pattern_node in pattern.nodes():
        pool: Iterable[NodeId] = index.candidate_set(pattern_node)
        if restrict_to is not None and pattern_node in restrict_to:
            pool = [v for v in pool if v in restrict_to[pattern_node]]
        scored = [
            (candidate_potential(pattern, graph, index, pattern_node, candidate), candidate)
            for candidate in pool
        ]
        scored.sort(key=lambda pair: (-pair[0], str(pair[1])))
        ordering[pattern_node] = [candidate for _, candidate in scored]
    return ordering
