"""Matching engines: generic search, the Enum baseline, QMatch and IncQMatch."""

from repro.matching.candidates import CandidateIndex, build_candidate_index
from repro.matching.dmatch import DMatchOptions, DMatchOutcome, dmatch
from repro.matching.enumerate import EnumMatcher, evaluate_positive_by_enumeration
from repro.matching.explain import EdgeEvidence, MatchExplanation, explain_match
from repro.matching.generic import (
    MatchContext,
    count_isomorphisms,
    exists_isomorphism,
    find_isomorphisms,
    label_candidates,
)
from repro.matching.incremental import inc_qmatch
from repro.matching.pruning import candidate_potential, potential_ordering
from repro.matching.qmatch import QMatch, qmatch_engine, qmatch_n_engine
from repro.matching.result import (
    FragmentResult,
    IncrementalStats,
    MatchResult,
    ParallelMatchResult,
)

__all__ = [
    "find_isomorphisms",
    "exists_isomorphism",
    "count_isomorphisms",
    "label_candidates",
    "MatchContext",
    "explain_match",
    "MatchExplanation",
    "EdgeEvidence",
    "EnumMatcher",
    "evaluate_positive_by_enumeration",
    "CandidateIndex",
    "build_candidate_index",
    "candidate_potential",
    "potential_ordering",
    "DMatchOptions",
    "DMatchOutcome",
    "dmatch",
    "inc_qmatch",
    "QMatch",
    "qmatch_engine",
    "qmatch_n_engine",
    "MatchResult",
    "IncrementalStats",
    "FragmentResult",
    "ParallelMatchResult",
]
