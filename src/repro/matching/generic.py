"""Generic subgraph-isomorphism search (the paper's procedure ``Match``).

The paper observes (after [27]) that state-of-the-art subgraph-isomorphism
algorithms share one generic backtracking skeleton — ``Match`` in Figure 4 —
and differ only in how they implement candidate filtering, the choice of the
next pattern node, and the extension test.  Every engine in this library is
built on the same skeleton, implemented here as :func:`find_isomorphisms`:

* ``FilterCandidate``  →  :func:`label_candidates` (plus the engine-specific
  filters layered on top in :mod:`repro.matching.candidates`),
* ``SelectNext``       →  a connected, most-constrained-first ordering,
* ``IsExtend``         →  :func:`_consistent`, which checks every pattern edge
  between the new pair and already-matched nodes,
* ``Verify``           →  implicit: a complete assignment that passed every
  extension check is an isomorphism.

The search yields isomorphisms as dictionaries ``pattern node -> graph node``.
It can be *anchored*: fixing the query focus (or any partial assignment)
restricts the search to embeddings extending that assignment, which is how
both the quantifier verification of DMatch and the incremental step reuse the
same code path.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.errors import MatchingError

__all__ = [
    "label_candidates",
    "MatchContext",
    "find_isomorphisms",
    "exists_isomorphism",
    "count_isomorphisms",
]

NodeId = Hashable
Assignment = Dict[NodeId, NodeId]


def label_candidates(
    pattern: QuantifiedGraphPattern, graph: PropertyGraph
) -> Dict[NodeId, Set[NodeId]]:
    """The baseline candidate sets ``C(u)``: graph nodes with ``u``'s label."""
    return {
        u: set(graph.nodes_with_label(pattern.node_label(u)))
        for u in pattern.nodes()
    }


def _build_adjacency(pattern: QuantifiedGraphPattern) -> Dict[NodeId, List[tuple]]:
    """Pattern adjacency as ``node -> [(neighbor, label, is_outgoing)]``."""
    adjacency: Dict[NodeId, List[tuple]] = {u: [] for u in pattern.nodes()}
    for edge in pattern.edges():
        adjacency[edge.source].append((edge.target, edge.label, True))
        adjacency[edge.target].append((edge.source, edge.label, False))
    return adjacency


def _search_order(
    pattern: QuantifiedGraphPattern,
    candidates: Dict[NodeId, Set[NodeId]],
    anchored: Set[NodeId],
) -> List[NodeId]:
    """A connected matching order: anchored nodes first, then most-constrained.

    Starting from the anchored nodes (or the focus when nothing is anchored),
    repeatedly pick the unmatched pattern node adjacent to the matched region
    with the smallest candidate set.  This is the ``SelectNext`` policy shared
    by all engines.
    """
    adjacency = _build_adjacency(pattern)
    all_nodes = list(pattern.nodes())
    order: List[NodeId] = [node for node in all_nodes if node in anchored]
    placed = set(order)
    if not order:
        start = pattern.focus if pattern.has_focus() else min(all_nodes, key=lambda u: len(candidates[u]))
        order.append(start)
        placed.add(start)
    while len(order) < len(all_nodes):
        frontier = [
            node
            for node in all_nodes
            if node not in placed
            and any(neighbor in placed for neighbor, _, _ in adjacency[node])
        ]
        if not frontier:
            # Disconnected pattern (should not happen for validated QGPs, but
            # the generic engine stays robust): fall back to any remaining node.
            frontier = [node for node in all_nodes if node not in placed]
        chosen = min(frontier, key=lambda u: (len(candidates[u]), str(u)))
        order.append(chosen)
        placed.add(chosen)
    return order


def _consistent(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    adjacency: Dict[NodeId, List[tuple]],
    assignment: Assignment,
    pattern_node: NodeId,
    graph_node: NodeId,
) -> bool:
    """``IsExtend``: can *pattern_node -> graph_node* extend *assignment*?

    Checks the node label and, for every pattern edge between *pattern_node*
    and an already-assigned pattern node, the presence of a matching graph
    edge with the same label and direction.
    """
    if graph.node_label(graph_node) != pattern.node_label(pattern_node):
        return False
    for neighbor, label, outgoing in adjacency[pattern_node]:
        other = assignment.get(neighbor)
        if other is None:
            continue
        if outgoing:
            if not graph.has_edge(graph_node, other, label):
                return False
        else:
            if not graph.has_edge(other, graph_node, label):
                return False
    return True


class MatchContext:
    """Reusable search state for anchored isomorphism enumeration.

    DMatch verifies thousands of focus candidates against the same pattern,
    graph and candidate sets; only the anchored graph node changes between
    calls.  The context therefore precomputes everything that does not depend
    on the anchor value — the pattern adjacency, the matching order and the
    candidate pools — and exposes :meth:`isomorphisms`, which performs one
    anchored enumeration without re-paying that setup cost.

    Parameters
    ----------
    anchored_nodes:
        The pattern nodes that :meth:`isomorphisms` will receive bindings for
        (typically just the query focus).  They are placed first in the
        matching order.
    """

    def __init__(
        self,
        pattern: QuantifiedGraphPattern,
        graph: PropertyGraph,
        candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
        candidate_order: Optional[Dict[NodeId, List[NodeId]]] = None,
        anchored_nodes: Optional[Set[NodeId]] = None,
    ) -> None:
        if pattern.num_nodes == 0:
            raise MatchingError("cannot match an empty pattern")
        self.pattern = pattern
        self.graph = graph
        self.candidates = candidates if candidates is not None else label_candidates(pattern, graph)
        for pattern_node in pattern.nodes():
            self.candidates.setdefault(pattern_node, set())
        self.candidate_order = candidate_order
        # Rank maps let the hot loop order a (small) dynamic pool without
        # scanning the full preference list of a pattern node.
        self._ranks: Dict[NodeId, Dict[NodeId, int]] = {}
        if candidate_order:
            for pattern_node, preferred in candidate_order.items():
                self._ranks[pattern_node] = {node: rank for rank, node in enumerate(preferred)}
        self.anchored_nodes = set(anchored_nodes or ())
        for anchored in self.anchored_nodes:
            if anchored not in self.candidates:
                raise MatchingError(f"anchored node {anchored!r} is not a pattern node")
        self.adjacency = _build_adjacency(pattern)
        self.order = _search_order(pattern, self.candidates, self.anchored_nodes)

    def isomorphisms(
        self,
        anchor: Optional[Assignment] = None,
        counter: Optional[WorkCounter] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Assignment]:
        """Enumerate isomorphisms extending *anchor* (keys ⊆ ``anchored_nodes``)."""
        pattern, graph = self.pattern, self.graph
        adjacency, candidates = self.adjacency, self.candidates
        candidate_order = self.candidate_order
        anchor = dict(anchor or {})
        for pattern_node, graph_node in anchor.items():
            if pattern_node not in candidates:
                raise MatchingError(f"anchored node {pattern_node!r} is not a pattern node")
            if graph_node not in candidates[pattern_node]:
                return  # The anchor itself is not a viable candidate.
        if len(set(anchor.values())) != len(anchor):
            return  # Anchor violates injectivity.

        order = self.order
        if set(anchor) != self.anchored_nodes:
            # The caller anchored a different node set than the context was
            # built for: fall back to a per-call matching order.
            order = _search_order(pattern, candidates, set(anchor))

        assignment: Assignment = {}
        used: Set[NodeId] = set()

        # Validate the anchored pairs against each other before searching.
        for pattern_node in order[: len(anchor)]:
            graph_node = anchor[pattern_node]
            if not _consistent(pattern, graph, adjacency, assignment, pattern_node, graph_node):
                return
            assignment[pattern_node] = graph_node
            used.add(graph_node)

        yielded = 0

        def dynamic_pool(pattern_node: NodeId) -> Set[NodeId]:
            """Candidates implied by the already-matched pattern neighbours.

            Intersecting the adjacency lists of the matched neighbours keeps
            the pool tiny even on large graphs; the static candidate set is
            only scanned for the first (anchor-free) node.
            """
            pool: Optional[Set[NodeId]] = None
            for neighbor, label, outgoing in adjacency[pattern_node]:
                other = assignment.get(neighbor)
                if other is None:
                    continue
                if outgoing:
                    reachable = graph.predecessors(other, label)
                else:
                    reachable = graph.successors(other, label)
                pool = reachable if pool is None else (pool & reachable)
                if not pool:
                    return set()
            if pool is None:
                return set(candidates[pattern_node])
            return pool & candidates[pattern_node]

        ranks = self._ranks

        def ordered_candidates(pattern_node: NodeId) -> List[NodeId]:
            pool = dynamic_pool(pattern_node)
            rank = ranks.get(pattern_node)
            if rank:
                unranked = len(rank)
                return sorted(pool, key=lambda node: rank.get(node, unranked))
            return list(pool)

        def extend(position: int) -> Iterator[Assignment]:
            nonlocal yielded
            if position == len(order):
                yielded += 1
                yield dict(assignment)
                return
            pattern_node = order[position]
            for graph_node in ordered_candidates(pattern_node):
                if graph_node in used:
                    continue
                if counter is not None:
                    counter.extensions += 1
                if not _consistent(pattern, graph, adjacency, assignment, pattern_node, graph_node):
                    continue
                assignment[pattern_node] = graph_node
                used.add(graph_node)
                yield from extend(position + 1)
                del assignment[pattern_node]
                used.discard(graph_node)
                if limit is not None and yielded >= limit:
                    return

        yield from extend(len(anchor))


def find_isomorphisms(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
    anchor: Optional[Assignment] = None,
    counter: Optional[WorkCounter] = None,
    limit: Optional[int] = None,
    candidate_order: Optional[Dict[NodeId, List[NodeId]]] = None,
) -> Iterator[Assignment]:
    """Enumerate isomorphisms of the (stratified) *pattern* in *graph*.

    Quantifiers on the pattern are ignored here — this routine implements the
    purely topological notion of a match of ``Qπ`` (Section 2.1); counting is
    layered on top by the callers.  This is a convenience wrapper around
    :class:`MatchContext` for one-off enumerations; callers that anchor the
    same pattern at many different graph nodes should build the context once.

    Parameters
    ----------
    candidates:
        Optional pre-filtered candidate sets; defaults to label candidates.
    anchor:
        A partial assignment that every yielded isomorphism must extend
        (commonly ``{xo: vx}``); its pairs are validated first.
    counter:
        When given, extension attempts are tallied into it.
    limit:
        Stop after yielding this many isomorphisms.
    candidate_order:
        Optional per-pattern-node candidate orderings (e.g. the potential
        ordering of DMatch); nodes missing from a list are appended after it.
    """
    context = MatchContext(
        pattern,
        graph,
        candidates=candidates,
        candidate_order=candidate_order,
        anchored_nodes=set(anchor or ()),
    )
    yield from context.isomorphisms(anchor=anchor, counter=counter, limit=limit)


def exists_isomorphism(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
    anchor: Optional[Assignment] = None,
    counter: Optional[WorkCounter] = None,
) -> bool:
    """Whether at least one isomorphism (extending *anchor*) exists."""
    for _ in find_isomorphisms(pattern, graph, candidates, anchor, counter, limit=1):
        return True
    return False


def count_isomorphisms(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
    anchor: Optional[Assignment] = None,
) -> int:
    """The number of isomorphisms of the stratified pattern (test helper)."""
    return sum(1 for _ in find_isomorphisms(pattern, graph, candidates, anchor))
