"""Generic subgraph-isomorphism search (the paper's procedure ``Match``).

The paper observes (after [27]) that state-of-the-art subgraph-isomorphism
algorithms share one generic backtracking skeleton — ``Match`` in Figure 4 —
and differ only in how they implement candidate filtering, the choice of the
next pattern node, and the extension test.  Every engine in this library is
built on the same skeleton, implemented here as :func:`find_isomorphisms`:

* ``FilterCandidate``  →  :func:`label_candidates` (plus the engine-specific
  filters layered on top in :mod:`repro.matching.candidates`),
* ``SelectNext``       →  a connected, most-constrained-first ordering,
* ``IsExtend``         →  :func:`_consistent`, which checks every pattern edge
  between the new pair and already-matched nodes,
* ``Verify``           →  implicit: a complete assignment that passed every
  extension check is an isomorphism.

The search yields isomorphisms as dictionaries ``pattern node -> graph node``.
It can be *anchored*: fixing the query focus (or any partial assignment)
restricts the search to embeddings extending that assignment, which is how
both the quantifier verification of DMatch and the incremental step reuse the
same code path.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.errors import MatchingError

__all__ = [
    "label_candidates",
    "MatchContext",
    "find_isomorphisms",
    "exists_isomorphism",
    "count_isomorphisms",
]

NodeId = Hashable
Assignment = Dict[NodeId, NodeId]


def label_candidates(
    pattern: QuantifiedGraphPattern, graph: PropertyGraph
) -> Dict[NodeId, Set[NodeId]]:
    """The baseline candidate sets ``C(u)``: graph nodes with ``u``'s label.

    Every value is a fresh, caller-owned mutable ``set``: callers (the Enum
    oracle, the QGAR layer, :class:`MatchContext`) intersect and shrink these
    pools in place, so the copy here guarantees that even a graph whose
    ``nodes_with_label`` hands back a shared, memoised or immutable view —
    the aliasing bug class that bit ``PropertyGraph.nodes_with_label`` in
    PR 2 — never sees a mutation leak back, and that two pattern nodes with
    the same label never alias one set.
    """
    return {
        u: set(graph.nodes_with_label(pattern.node_label(u)))
        for u in pattern.nodes()
    }


def _build_adjacency(pattern: QuantifiedGraphPattern) -> Dict[NodeId, List[tuple]]:
    """Pattern adjacency as ``node -> [(neighbor, label, is_outgoing)]``."""
    adjacency: Dict[NodeId, List[tuple]] = {u: [] for u in pattern.nodes()}
    for edge in pattern.edges():
        adjacency[edge.source].append((edge.target, edge.label, True))
        adjacency[edge.target].append((edge.source, edge.label, False))
    return adjacency


def _search_order(
    pattern: QuantifiedGraphPattern,
    candidates: Dict[NodeId, Set[NodeId]],
    anchored: Set[NodeId],
    adjacency: Optional[Dict[NodeId, List[tuple]]] = None,
) -> List[NodeId]:
    """A connected matching order: anchored nodes first, then most-constrained.

    Starting from the anchored nodes (or the focus when nothing is anchored),
    repeatedly pick the unmatched pattern node adjacent to the matched region
    with the smallest candidate set.  This is the ``SelectNext`` policy shared
    by all engines.  *candidates* only needs ``len``-able values (sets, dense
    runs or sized views all work); callers that already hold the pattern
    adjacency pass it in to skip rebuilding it.
    """
    if adjacency is None:
        adjacency = _build_adjacency(pattern)
    all_nodes = list(pattern.nodes())
    order: List[NodeId] = [node for node in all_nodes if node in anchored]
    placed = set(order)
    if not order:
        start = pattern.focus if pattern.has_focus() else min(all_nodes, key=lambda u: len(candidates[u]))
        order.append(start)
        placed.add(start)
    while len(order) < len(all_nodes):
        frontier = [
            node
            for node in all_nodes
            if node not in placed
            and any(neighbor in placed for neighbor, _, _ in adjacency[node])
        ]
        if not frontier:
            # Disconnected pattern (should not happen for validated QGPs, but
            # the generic engine stays robust): fall back to any remaining node.
            frontier = [node for node in all_nodes if node not in placed]
        chosen = min(frontier, key=lambda u: (len(candidates[u]), str(u)))
        order.append(chosen)
        placed.add(chosen)
    return order


def _consistent(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    adjacency: Dict[NodeId, List[tuple]],
    assignment: Assignment,
    pattern_node: NodeId,
    graph_node: NodeId,
) -> bool:
    """``IsExtend``: can *pattern_node -> graph_node* extend *assignment*?

    Checks the node label and, for every pattern edge between *pattern_node*
    and an already-assigned pattern node, the presence of a matching graph
    edge with the same label and direction.
    """
    if graph.node_label(graph_node) != pattern.node_label(pattern_node):
        return False
    for neighbor, label, outgoing in adjacency[pattern_node]:
        other = assignment.get(neighbor)
        if other is None:
            continue
        if outgoing:
            if not graph.has_edge(graph_node, other, label):
                return False
        else:
            if not graph.has_edge(other, graph_node, label):
                return False
    return True


class MatchContext:
    """Reusable search state for anchored isomorphism enumeration.

    DMatch verifies thousands of focus candidates against the same pattern,
    graph and candidate sets; only the anchored graph node changes between
    calls.  The context therefore precomputes everything that does not depend
    on the anchor value — the pattern adjacency, the matching order and the
    candidate pools — and exposes :meth:`isomorphisms`, which performs one
    anchored enumeration without re-paying that setup cost.

    Candidate sets are captured at construction time (the indexed path caches
    dense-id mirrors of them on first use); callers must not mutate them
    afterwards.

    Parameters
    ----------
    anchored_nodes:
        The pattern nodes that :meth:`isomorphisms` will receive bindings for
        (typically just the query focus).  They are placed first in the
        matching order.
    use_index:
        Derive dynamic candidate pools by intersecting the compiled per-label
        row stores of the :class:`repro.index.GraphIndex` snapshot
        (:meth:`~repro.index.GraphIndex.compiled_rows`, immutable frozenset
        views derived from the CSR rows) instead of copying
        ``graph.predecessors/successors`` sets per probe.  The two paths
        enumerate byte-identically (same assignments, same order, same work
        counts); only the speed differs.
    plan, plan_binding:
        An optional :class:`repro.plan.CompiledPlan` for this pattern's
        fingerprint plus the pattern-node → canonical-position binding.
        When given (and ``use_index`` is on), snapshot resolution reuses the
        plan's pre-resolved row stores and ``str``-order ranks instead of
        re-deriving them — a pure setup/ordering-cost shortcut with the same
        byte-identical enumeration contract as ``use_index`` itself.
    vectorized:
        Enumerate over dense interned ids: candidate pools become sorted
        ``array('i')`` runs intersected with the merge kernels of
        :mod:`repro.plan.vectorized` against the raw CSR rows, ordered by the
        snapshot's precomputed dense rank array, decoded back to node ids
        only when a match is yielded.  Byte-identical to the frozenset path
        (same answers, same emission order, same ``WorkCounter`` fields);
        the dense state silently declines — leaving the frozenset path to
        serve — whenever identity cannot be proven (ghost or mislabeled
        candidates, non-injective ``str`` ranks, per-node candidate
        orderings, multi-node anchors).  Requires ``use_index``.
    """

    def __init__(
        self,
        pattern: QuantifiedGraphPattern,
        graph: PropertyGraph,
        candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
        candidate_order: Optional[Dict[NodeId, List[NodeId]]] = None,
        anchored_nodes: Optional[Set[NodeId]] = None,
        use_index: bool = True,
        plan=None,
        plan_binding: Optional[Dict[NodeId, int]] = None,
        vectorized: bool = False,
    ) -> None:
        if pattern.num_nodes == 0:
            raise MatchingError("cannot match an empty pattern")
        self.pattern = pattern
        self.graph = graph
        self.candidates = candidates if candidates is not None else label_candidates(pattern, graph)
        for pattern_node in pattern.nodes():
            self.candidates.setdefault(pattern_node, set())
        self.candidate_order = candidate_order
        # A CompiledPlan (repro.plan) plus the pattern-node -> canonical
        # position binding: pre-resolved row stores and str-order ranks for
        # this exact fingerprint.  Purely an interpretation-cost shortcut —
        # the enumeration below stays byte-identical with or without it.
        self._plan = plan if use_index else None
        self._plan_binding = plan_binding if plan is not None else None
        # Rank maps let the hot loop order a (small) dynamic pool without
        # scanning the full preference list of a pattern node.
        self._ranks: Dict[NodeId, Dict[NodeId, int]] = {}
        if candidate_order:
            if self._plan is not None:
                # The preference lists span full candidate pools; building the
                # rank maps per focus-candidate context would dominate the
                # locality sweep, so the plan memoises them per ordering
                # object (one ordering is computed per query).
                self._ranks = self._plan.ordering_ranks(candidate_order)
            else:
                for pattern_node, preferred in candidate_order.items():
                    self._ranks[pattern_node] = {
                        node: rank for rank, node in enumerate(preferred)
                    }
        self.anchored_nodes = set(anchored_nodes or ())
        for anchored in self.anchored_nodes:
            if anchored not in self.candidates:
                raise MatchingError(f"anchored node {anchored!r} is not a pattern node")
        if self._plan is not None:
            # The locality search builds one context per focus candidate over
            # the same pattern object; the adjacency and label map are
            # read-only and graph-independent, so the plan memoises them per
            # live pattern and every context after the first just borrows.
            self.adjacency, self._pattern_labels = self._plan.pattern_view(
                pattern,
                lambda: (
                    _build_adjacency(pattern),
                    {
                        pattern_node: pattern.node_label(pattern_node)
                        for pattern_node in pattern.nodes()
                    },
                ),
            )
        else:
            self.adjacency = _build_adjacency(pattern)
            self._pattern_labels = {
                pattern_node: pattern.node_label(pattern_node)
                for pattern_node in pattern.nodes()
            }
        self.order = _search_order(
            pattern, self.candidates, self.anchored_nodes, adjacency=self.adjacency
        )
        self.use_index = use_index
        self._vectorized = vectorized and use_index
        self._dense = None
        self._plan_resolution = None
        self._str_ranks: Optional[Dict[NodeId, int]] = None
        self._snapshot = None
        self._compiled_adjacency: Dict[NodeId, List[tuple]] = {}
        self._active_plan: Optional[tuple] = None
        if use_index:
            self._refresh_snapshot()

    def _refresh_snapshot(self) -> None:
        """(Re)compile the graph snapshot and the dense-id pattern adjacency.

        ``_compiled_adjacency`` mirrors ``adjacency`` with, per constraint,
        the compiled row store of the right direction × edge label resolved
        (see :meth:`GraphIndex.compiled_rows`) — so the per-probe loop does
        no label lookups or id encodes at all.  ``None`` entries mark edge
        labels absent from the graph (the pool is empty the moment such a
        constraint is active).
        """
        from repro.index.snapshot import GraphIndex

        self._snapshot = GraphIndex.for_graph(self.graph)
        snapshot = self._snapshot
        self._str_ranks = None
        self._plan_resolution = None
        if self._plan is not None and self._plan_from_resolution(snapshot):
            self._active_plan = self._build_active_plan(self.order)
            self._build_dense_state(snapshot)
            return
        encode_label = snapshot.edge_labels.encode
        self._compiled_adjacency = {}
        for pattern_node, constraints in self.adjacency.items():
            compiled = []
            for neighbor, label, outgoing in constraints:
                edge_label = encode_label(label)
                if edge_label is None:
                    compiled.append((neighbor, None))
                    continue
                # An outgoing pattern edge (pattern_node -> neighbor)
                # constrains the pool to predecessors of the bound neighbour,
                # i.e. the incoming CSR rows — and vice versa.
                compiled.append(
                    (neighbor, snapshot.compiled_rows(outgoing, edge_label))
                )
            self._compiled_adjacency[pattern_node] = compiled
        self._active_plan = self._build_active_plan(self.order)
        self._build_dense_state(snapshot)

    def _build_dense_state(self, snapshot) -> None:
        """Build (or decline) the dense-id enumeration state.

        Per-node candidate orderings disqualify the dense path outright —
        ``order_pool`` would consult the rank maps first, and dense pools
        only carry the ``str``-rank order.  Every other disqualifier lives in
        :func:`repro.plan.vectorized.build_dense_state`; a ``None`` simply
        leaves the frozenset path serving, byte-identically.
        """
        self._dense = None
        if not self._vectorized or self._ranks:
            return
        from repro.plan.vectorized import build_dense_state

        rank_table = None
        resolution = self._plan_resolution
        if resolution is not None and resolution.snapshot is snapshot:
            # Plan-driven contexts source the dense tables from the plan's
            # per-(graph, version) resolution — same memoised snapshot
            # arrays, threaded through the plan layer.
            _, srank, unique = resolution.dense_runs()
            rank_table = (srank, unique)
            run_cache = resolution.dense_cache()
        else:
            run_cache = None
        self._dense = build_dense_state(
            snapshot,
            self.pattern,
            self.adjacency,
            self._pattern_labels,
            self.candidates,
            self.order,
            rank_table=rank_table,
            cache=run_cache,
        )

    def _plan_from_resolution(self, snapshot) -> bool:
        """Adopt the plan's pre-resolved row stores for *snapshot*, if valid.

        Translates the pattern adjacency through the plan binding
        (pattern node -> canonical position) into the resolution's
        per-canonical-edge row-store pairs — the same ``(neighbor, rows)``
        shape the generic resolve builds, just without re-encoding labels or
        re-materialising stores.  Returns False (leaving the generic resolve
        to run) when the plan cannot serve this context: resolution pinned to
        a different snapshot, no binding shipped, or a pattern edge outside
        the canonical shape.  Either way the search behaves identically;
        only the setup cost differs.
        """
        plan = self._plan
        resolution = plan.resolution_for(self.graph)
        if resolution.snapshot is not snapshot:
            return False
        self._plan_resolution = resolution
        self._str_ranks = resolution.str_ranks
        binding = self._plan_binding
        if binding is None:
            return False
        # The translation loop is memoised on the resolution (pinned on this
        # adjacency/binding pair), so the per-focus-candidate contexts of one
        # locality sweep translate once and share the result.
        compiled_adjacency = resolution.translated_adjacency(self.adjacency, binding)
        if compiled_adjacency is None:
            return False
        self._compiled_adjacency = compiled_adjacency
        return True

    def _build_active_plan(self, order: List[NodeId]) -> tuple:
        """Per pattern node, the constraints that are *active* when it extends.

        The backtracking invariant is that the node at position ``i`` is
        extended with exactly ``order[:i]`` already assigned, so which of its
        pattern edges constrain the pool is a static property of the matching
        order — resolved here once instead of per probe.  Returns ``(plan,
        single)``: *plan* maps each pattern node to a tuple of ``(neighbor,
        row_sets)`` constraints (empty = serve the static candidate set) or
        ``None`` when an active edge label does not occur in the graph at
        all (the pool is unconditionally empty); *single* holds the lone
        constraint directly for the nodes with exactly one active constraint
        — the hot case.
        """
        plan: Dict[NodeId, Optional[tuple]] = {}
        single: Dict[NodeId, tuple] = {}
        placed: Set[NodeId] = set()
        for pattern_node in order:
            actives = []
            impossible = False
            for constraint in self._compiled_adjacency[pattern_node]:
                if constraint[0] not in placed:
                    continue
                if constraint[1] is None:
                    impossible = True
                    break
                actives.append(constraint)
            plan[pattern_node] = None if impossible else tuple(actives)
            if not impossible and len(actives) == 1:
                single[pattern_node] = actives[0]
            placed.add(pattern_node)
        return plan, single

    def isomorphisms(
        self,
        anchor: Optional[Assignment] = None,
        counter: Optional[WorkCounter] = None,
        limit: Optional[int] = None,
        probe_profile: Optional[Dict[int, int]] = None,
    ) -> Iterator[Assignment]:
        """Enumerate isomorphisms extending *anchor* (keys ⊆ ``anchored_nodes``).

        *probe_profile*, when given, is filled with per-depth extension-probe
        tallies (``order position -> probes``) — the observed-cardinality side
        of ``EXPLAIN ANALYZE``.  Profiling runs on the frozenset path (the
        dense kernels batch probes and cannot attribute them per depth), which
        enumerates byte-identically, and swaps in a separate extension closure
        so the unprofiled hot loop carries no extra conditional.
        """
        pattern, graph = self.pattern, self.graph
        adjacency, candidates = self.adjacency, self.candidates
        candidate_order = self.candidate_order
        snapshot = self._snapshot
        if snapshot is not None and snapshot.version != graph._version:
            # The graph mutated since the context was built; recompile rather
            # than answer from outdated arrays (mirrors GraphIndex.for_graph).
            # ``_version`` is read directly: the ``version`` property would
            # cost a Python frame on every enumeration call.
            self._refresh_snapshot()
            snapshot = self._snapshot
        anchor = dict(anchor or {})
        for pattern_node, graph_node in anchor.items():
            if pattern_node not in candidates:
                raise MatchingError(f"anchored node {pattern_node!r} is not a pattern node")
            if graph_node not in candidates[pattern_node]:
                return  # The anchor itself is not a viable candidate.
        if len(set(anchor.values())) != len(anchor):
            return  # Anchor violates injectivity.

        order = self.order
        if set(anchor) != self.anchored_nodes:
            # The caller anchored a different node set than the context was
            # built for: fall back to a per-call matching order.
            order = _search_order(pattern, candidates, set(anchor), adjacency=adjacency)

        dense = self._dense
        if probe_profile is not None:
            dense = None  # per-depth attribution needs the frozenset path
        if dense is not None and order is self.order and len(anchor) <= 1:
            # Dense-id path: anchor membership above already implies the
            # anchor encodes and is label-pure (dense pools are ghost-free by
            # construction), so the single-pair ``_consistent`` validation is
            # a proven tautology and the enumeration runs entirely on sorted
            # runs.  Multi-node anchors keep the frozenset path: their pairs
            # need the mutual-edge validation below.
            yield from dense.enumerate(anchor, counter, limit)
            return

        assignment: Assignment = {}
        used: Set[NodeId] = set()

        # Validate the anchored pairs against each other before searching.
        for pattern_node in order[: len(anchor)]:
            graph_node = anchor[pattern_node]
            if not _consistent(pattern, graph, adjacency, assignment, pattern_node, graph_node):
                return
            assignment[pattern_node] = graph_node
            used.add(graph_node)

        yielded = 0
        ranks = self._ranks

        # Constraint-free nodes serve their (invariant) static candidate set;
        # cache its ordered form so repeated visits at the same depth don't
        # re-sort it per partial assignment.
        static_ordered: Dict[NodeId, List[NodeId]] = {}

        str_ranks = self._str_ranks

        def order_pool(pattern_node: NodeId, pool) -> List[NodeId]:
            """Order a pool of original ids: rank first, ``str`` tie-break.

            The deterministic tie-break makes the emission order independent
            of set iteration order, so the indexed and dict-backed paths
            enumerate identically — which keeps work counts byte-identical
            even under early exit and ``limit``.  A compiled plan supplies
            the snapshot's precomputed ``str``-order rank map, replacing the
            per-element stringification with an integer lookup; nodes with
            equal ``str`` forms share a rank, so the stable sort leaves them
            exactly where ``key=str`` would — same emission order, same work
            counts.  Candidates unknown to the snapshot (legitimately
            possible in static pools) fall back to string keys.
            """
            rank = ranks.get(pattern_node)
            if str_ranks is not None:
                try:
                    if rank:
                        unranked = len(rank)
                        rank_get = rank.get
                        return sorted(
                            pool,
                            key=lambda node: (rank_get(node, unranked), str_ranks[node]),
                        )
                    return sorted(pool, key=str_ranks.__getitem__)
                except KeyError:
                    pass
            if rank:
                unranked = len(rank)
                return sorted(
                    pool, key=lambda node: (rank.get(node, unranked), str(node))
                )
            return sorted(pool, key=str)

        def ordered_static(pattern_node: NodeId) -> List[NodeId]:
            cached = static_ordered.get(pattern_node)
            if cached is None:
                cached = order_pool(pattern_node, candidates[pattern_node])
                static_ordered[pattern_node] = cached
            return cached

        if snapshot is None:

            def is_extendable(pattern_node: NodeId, graph_node: NodeId) -> bool:
                return _consistent(
                    pattern, graph, adjacency, assignment, pattern_node, graph_node
                )

            def ordered_candidates(pattern_node: NodeId) -> List[NodeId]:
                """Dict fallback: intersect copied adjacency sets, then order.

                Intersecting the adjacency lists of the matched neighbours
                keeps the pool tiny even on large graphs; the static
                candidate set is only scanned for constraint-free nodes.
                """
                pool: Optional[Set[NodeId]] = None
                for neighbor, label, outgoing in adjacency[pattern_node]:
                    other = assignment.get(neighbor)
                    if other is None:
                        continue
                    if outgoing:
                        reachable = graph.predecessors(other, label)
                    else:
                        reachable = graph.successors(other, label)
                    pool = reachable if pool is None else (pool & reachable)
                    if not pool:
                        return []
                if pool is None:
                    return ordered_static(pattern_node)
                return order_pool(pattern_node, pool & candidates[pattern_node])

        else:
            # C-level bound methods: the pool loop below runs per extension
            # probe, so even a Python-frame dict lookup per constraint counts.
            plan, plan_single = (
                self._active_plan
                if order is self.order
                else self._build_active_plan(order)
            )
            single_get = plan_single.get
            graph_label_of = graph.node_label
            pattern_labels = self._pattern_labels

            def is_extendable(pattern_node: NodeId, graph_node: NodeId) -> bool:
                """Label check only: the plan-derived pools already enforce
                every pattern edge to an assigned neighbour (the exact edges
                ``_consistent`` would re-probe with ``has_edge``), and a
                constraint-free pool has no assigned neighbours to check.
                Ghost candidates raise ``NodeNotFoundError`` here exactly as
                they do on the dict path's ``_consistent``."""
                return graph_label_of(graph_node) == pattern_labels[pattern_node]

            def ordered_candidates(pattern_node: NodeId) -> List[NodeId]:
                """Indexed path: intersect compiled CSR rows, no copies.

                The active-constraint plan already names the row stores to
                probe, so the common single-constraint case is one dict
                lookup plus one C-level ``&`` of the static candidate set
                with a shared immutable row — CPython iterates the smaller
                operand, so hub rows cost ``O(min)`` where the dict fallback
                pays ``O(|row|)`` to copy them.  With several active
                constraints, rows are intersected smallest-first.  The result
                feeds the shared ordering rule, so the enumeration visits the
                same candidates in the same order as the dict fallback.
                """
                entry = single_get(pattern_node)
                if entry is not None:
                    row = entry[1].get(assignment[entry[0]])
                    if row is None:  # empty row: the pool is already empty
                        return []
                    pool = candidates[pattern_node] & row
                    if not pool:
                        return []
                    return order_pool(pattern_node, pool)
                actives = plan[pattern_node]
                if actives is None:  # an active edge label is absent from the graph
                    return []
                if not actives:
                    # Constraint-free node: serve the static candidate set
                    # (it may legitimately contain nodes unknown to the
                    # snapshot, which the dict path would also surface here).
                    return ordered_static(pattern_node)
                rows = []
                for neighbor, row_sets in actives:
                    row = row_sets.get(assignment[neighbor])
                    if row is None:
                        return []
                    rows.append(row)
                rows.sort(key=len)
                pool = candidates[pattern_node] & rows[0]
                for row in rows[1:]:
                    if not pool:
                        return []
                    pool &= row
                if not pool:
                    return []
                return order_pool(pattern_node, pool)

        if probe_profile is None:

            def extend(position: int) -> Iterator[Assignment]:
                nonlocal yielded
                if position == len(order):
                    yielded += 1
                    yield dict(assignment)
                    return
                pattern_node = order[position]
                for graph_node in ordered_candidates(pattern_node):
                    if graph_node in used:
                        continue
                    if counter is not None:
                        counter.extensions += 1
                    if not is_extendable(pattern_node, graph_node):
                        continue
                    assignment[pattern_node] = graph_node
                    used.add(graph_node)
                    yield from extend(position + 1)
                    del assignment[pattern_node]
                    used.discard(graph_node)
                    if limit is not None and yielded >= limit:
                        return

        else:
            # EXPLAIN ANALYZE variant: identical control flow plus a
            # per-depth probe tally.  Duplicated rather than branched so the
            # production closure above stays conditional-free per probe.
            profile_get = probe_profile.get

            def extend(position: int) -> Iterator[Assignment]:
                nonlocal yielded
                if position == len(order):
                    yielded += 1
                    yield dict(assignment)
                    return
                pattern_node = order[position]
                for graph_node in ordered_candidates(pattern_node):
                    if graph_node in used:
                        continue
                    probe_profile[position] = profile_get(position, 0) + 1
                    if counter is not None:
                        counter.extensions += 1
                    if not is_extendable(pattern_node, graph_node):
                        continue
                    assignment[pattern_node] = graph_node
                    used.add(graph_node)
                    yield from extend(position + 1)
                    del assignment[pattern_node]
                    used.discard(graph_node)
                    if limit is not None and yielded >= limit:
                        return

        yield from extend(len(anchor))


def find_isomorphisms(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
    anchor: Optional[Assignment] = None,
    counter: Optional[WorkCounter] = None,
    limit: Optional[int] = None,
    candidate_order: Optional[Dict[NodeId, List[NodeId]]] = None,
    use_index: bool = True,
    vectorized: bool = False,
) -> Iterator[Assignment]:
    """Enumerate isomorphisms of the (stratified) *pattern* in *graph*.

    Quantifiers on the pattern are ignored here — this routine implements the
    purely topological notion of a match of ``Qπ`` (Section 2.1); counting is
    layered on top by the callers.  This is a convenience wrapper around
    :class:`MatchContext` for one-off enumerations; callers that anchor the
    same pattern at many different graph nodes should build the context once.

    Parameters
    ----------
    candidates:
        Optional pre-filtered candidate sets; defaults to label candidates.
    anchor:
        A partial assignment that every yielded isomorphism must extend
        (commonly ``{xo: vx}``); its pairs are validated first.
    counter:
        When given, extension attempts are tallied into it.
    limit:
        Stop after yielding this many isomorphisms.
    candidate_order:
        Optional per-pattern-node candidate orderings (e.g. the potential
        ordering of DMatch); nodes missing from a list are appended after it.
    use_index:
        Compute dynamic candidate pools from the compiled row stores of the
        graph snapshot (see :class:`MatchContext`); the dict fallback
        enumerates identically.
    vectorized:
        Enumerate over dense interned ids with the sorted-run merge kernels
        (see :class:`MatchContext`); falls back to the frozenset path —
        byte-identically — whenever the dense state declines to build.
    """
    context = MatchContext(
        pattern,
        graph,
        candidates=candidates,
        candidate_order=candidate_order,
        anchored_nodes=set(anchor or ()),
        use_index=use_index,
        vectorized=vectorized,
    )
    yield from context.isomorphisms(anchor=anchor, counter=counter, limit=limit)


def exists_isomorphism(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
    anchor: Optional[Assignment] = None,
    counter: Optional[WorkCounter] = None,
) -> bool:
    """Whether at least one isomorphism (extending *anchor*) exists."""
    for _ in find_isomorphisms(pattern, graph, candidates, anchor, counter, limit=1):
        return True
    return False


def count_isomorphisms(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    candidates: Optional[Dict[NodeId, Set[NodeId]]] = None,
    anchor: Optional[Assignment] = None,
) -> int:
    """The number of isomorphisms of the stratified pattern (test helper)."""
    return sum(1 for _ in find_isomorphisms(pattern, graph, candidates, anchor))
