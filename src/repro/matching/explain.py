"""Match explanation: witnesses and per-edge counting evidence.

``Q(xo, G)`` tells a user *which* nodes match, but applications such as social
marketing and fraud analysis also need to know *why* — which neighbours were
counted, which quantifier a near-miss failed, and by how much.  This module
extracts that evidence for a single focus candidate:

* :func:`explain_match` returns a :class:`MatchExplanation` listing, for every
  pattern edge, the counted children ``Me(vx, v, Q)``, the relevant total
  ``|Me(v)|``, the quantifier and whether it holds, plus one witness
  isomorphism when the candidate matches the positive part;
* negated edges are reported through the positified patterns, so the
  explanation also says *which* forbidden neighbour disqualified a candidate.

The evidence is computed with the same reference semantics as
:class:`~repro.matching.enumerate.EnumMatcher`, so explanations are exact (if
slower than QMatch); they are meant for interactive inspection of a handful of
candidates, not for bulk evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.graph.digraph import PropertyGraph
from repro.matching.generic import find_isomorphisms, label_candidates
from repro.patterns.qgp import PatternEdge, QuantifiedGraphPattern
from repro.utils.errors import MatchingError

__all__ = ["EdgeEvidence", "MatchExplanation", "explain_match"]

NodeId = Hashable


@dataclass
class EdgeEvidence:
    """Counting evidence for one pattern edge at one bound source node."""

    edge: PatternEdge
    bound_source: NodeId
    counted_children: Set[NodeId] = field(default_factory=set)
    total_children: int = 0
    satisfied: bool = False

    def describe(self) -> str:
        state = "OK" if self.satisfied else "FAIL"
        return (
            f"[{state}] {self.edge.source} -[{self.edge.label}]-> {self.edge.target} "
            f"[{self.edge.quantifier}] at {self.bound_source!r}: "
            f"{len(self.counted_children)} of {self.total_children} children counted"
        )


@dataclass
class MatchExplanation:
    """Everything needed to justify (or refute) one focus candidate."""

    focus_candidate: NodeId
    is_match: bool
    positive_match: bool
    witness: Optional[Dict[NodeId, NodeId]] = None
    evidence: List[EdgeEvidence] = field(default_factory=list)
    violated_negations: List[EdgeEvidence] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"candidate {self.focus_candidate!r}: "
            + ("MATCH" if self.is_match else "NO MATCH")
        ]
        if self.witness:
            bindings = ", ".join(f"{u!r}→{v!r}" for u, v in sorted(self.witness.items(), key=str))
            lines.append(f"  witness: {bindings}")
        for item in self.evidence:
            lines.append("  " + item.describe())
        for item in self.violated_negations:
            lines.append("  negation violated: " + item.describe())
        return "\n".join(lines)


def _positive_evidence(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    focus_candidate: NodeId,
) -> tuple:
    """Evidence for a positive pattern anchored at *focus_candidate*.

    Returns ``(matched, witness, evidence_list)`` following the reference
    semantics: materialise every isomorphism with the focus bound to the
    candidate, aggregate the per-edge counted children, then look for one
    assignment whose own bindings satisfy every quantifier.
    """
    focus = pattern.focus
    candidates = label_candidates(pattern, graph)
    if focus_candidate not in candidates.get(focus, ()):
        return False, None, []
    assignments = list(
        find_isomorphisms(pattern.stratified(), graph, candidates=candidates,
                          anchor={focus: focus_candidate})
    )
    edges = pattern.edges()
    counted: Dict[tuple, Set[NodeId]] = {}
    for assignment in assignments:
        for index, edge in enumerate(edges):
            counted.setdefault((index, assignment[edge.source]), set()).add(
                assignment[edge.target]
            )

    witness = None
    for assignment in assignments:
        if all(
            edge.quantifier.check(
                len(counted.get((index, assignment[edge.source]), ())),
                graph.out_degree(assignment[edge.source], edge.label),
            )
            for index, edge in enumerate(edges)
        ):
            witness = assignment
            break

    evidence: List[EdgeEvidence] = []
    reference = witness or (assignments[0] if assignments else None)
    if reference is not None:
        for index, edge in enumerate(edges):
            bound_source = reference[edge.source]
            children = counted.get((index, bound_source), set())
            total = graph.out_degree(bound_source, edge.label)
            evidence.append(
                EdgeEvidence(
                    edge=edge,
                    bound_source=bound_source,
                    counted_children=set(children),
                    total_children=total,
                    satisfied=edge.quantifier.check(len(children), total),
                )
            )
    return witness is not None, witness, evidence


def explain_match(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    focus_candidate: NodeId,
) -> MatchExplanation:
    """Explain whether (and why) *focus_candidate* is in ``Q(xo, G)``.

    The explanation covers the positive part Π(Q) — per-edge counted children
    and one witness isomorphism — and, for negative patterns, the positified
    patterns that disqualify the candidate (each with the forbidden neighbour
    that was found).
    """
    if not graph.has_node(focus_candidate):
        raise MatchingError(f"{focus_candidate!r} is not a node of the graph")
    pattern.validate()

    positive_part = pattern.pi()
    positive_match, witness, evidence = _positive_evidence(
        positive_part, graph, focus_candidate
    )

    violated: List[EdgeEvidence] = []
    if positive_match:
        for negated_edge, positified_pi in pattern.positified_pi_patterns():
            excluded, neg_witness, neg_evidence = _positive_evidence(
                positified_pi, graph, focus_candidate
            )
            if excluded:
                forbidden = next(
                    (item for item in neg_evidence if item.edge.key == negated_edge.key),
                    None,
                )
                if forbidden is None and neg_evidence:
                    forbidden = neg_evidence[0]
                if forbidden is not None:
                    violated.append(forbidden)

    is_match = positive_match and not violated
    return MatchExplanation(
        focus_candidate=focus_candidate,
        is_match=is_match,
        positive_match=positive_match,
        witness=witness if positive_match else None,
        evidence=evidence,
        violated_negations=violated,
    )
