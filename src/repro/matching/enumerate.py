"""The ``Enum`` baseline — and the library's executable semantics oracle.

``Enum`` is the baseline of the paper's experiments (Section 7): run a
conventional subgraph-isomorphism algorithm to enumerate *all* matches of the
stratified pattern first, and only then verify the counting quantifiers.  It
is deliberately unoptimised — no locality, no pruning by quantifier bounds, no
incremental handling of negated edges — which is exactly what makes it useful:

* as the **performance baseline** that QMatch/PQMatch are compared against in
  Figures 8(a)–(l); and
* as the **reference implementation of the QGP semantics** (Section 2.2) that
  the optimized engines are tested against.  The code below is a direct
  transcription of the definitions: it materialises the sets
  ``Me(vx, v, Q)`` from the full list of isomorphisms and applies the
  quantifier predicate to every candidate match ``h0``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.digraph import PropertyGraph
from repro.matching.generic import find_isomorphisms, label_candidates
from repro.matching.result import MatchResult
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.patterns.qgp import QuantifiedGraphPattern
from repro.utils.counters import WorkCounter
from repro.utils.errors import MatchingError
from repro.utils.timing import Timer

__all__ = ["EnumMatcher", "evaluate_positive_by_enumeration"]

NodeId = Hashable


def evaluate_positive_by_enumeration(
    pattern: QuantifiedGraphPattern,
    graph: PropertyGraph,
    counter: Optional[WorkCounter] = None,
    focus_restriction: Optional[Set[NodeId]] = None,
) -> Tuple[Set[NodeId], Dict[NodeId, Set[NodeId]]]:
    """Evaluate a *positive* QGP by full enumeration (the paper's semantics).

    Returns ``(answer, node_matches)`` where *answer* is ``Q(xo, G)`` and
    *node_matches* maps every pattern node ``u`` to ``Q(u, G)`` — the nodes it
    is bound to in at least one quantifier-satisfying match.

    Parameters
    ----------
    focus_restriction:
        When given, only isomorphisms whose focus binding is in this set are
        considered (used by the QGAR layer and by tests).
    """
    if not pattern.is_positive:
        raise MatchingError("evaluate_positive_by_enumeration expects a positive pattern")
    counter = counter if counter is not None else WorkCounter()
    focus = pattern.focus
    candidates = label_candidates(pattern, graph)
    if focus_restriction is not None:
        # Intersect against the iterable directly — ``& set(...)`` would
        # materialise a throwaway copy of the restriction per call.  The
        # label_candidates pool is caller-owned, so the in-place shrink is
        # safe (and alias-free, see the no-copy audit test).
        candidates[focus].intersection_update(focus_restriction)

    # Step 1: enumerate every isomorphism of the stratified pattern, grouped
    # by the binding of the query focus.  The oracle stays on the dict-backed
    # enumeration (use_index=False) — and likewise plan-free — on purpose: it
    # is the independent reference the compiled paths (the index rows of
    # PR 1/2 and now the repro.plan straight-line plans) are tested against,
    # so it must share none of their machinery.  The label_candidates pools
    # it mutates below are defensively copied, never graph-owned views.
    by_focus: Dict[NodeId, list] = {}
    for assignment in find_isomorphisms(pattern.stratified(), graph, candidates=candidates,
                                        counter=counter, use_index=False):
        by_focus.setdefault(assignment[focus], []).append(assignment)

    edges = pattern.edges()
    answer: Set[NodeId] = set()
    node_matches: Dict[NodeId, Set[NodeId]] = {u: set() for u in pattern.nodes()}

    for focus_node, assignments in by_focus.items():
        counter.verifications += 1
        # Step 2: materialise Me(vx, v, Q) for every edge e = (u, u') and every
        # node v bound to u in some isomorphism with h(xo) = vx.
        matched_children: Dict[Tuple[int, NodeId], Set[NodeId]] = {}
        for assignment in assignments:
            for index, edge in enumerate(edges):
                key = (index, assignment[edge.source])
                matched_children.setdefault(key, set()).add(assignment[edge.target])

        # Step 3: a candidate vx is an answer iff SOME isomorphism h0 with
        # h0(xo) = vx satisfies every counting quantifier at its own bindings.
        for assignment in assignments:
            satisfied = True
            for index, edge in enumerate(edges):
                counter.quantifier_checks += 1
                bound_source = assignment[edge.source]
                count = len(matched_children.get((index, bound_source), ()))
                total = len(graph.successors(bound_source, edge.label))
                if not edge.quantifier.check(count, total):
                    satisfied = False
                    break
            if satisfied:
                answer.add(focus_node)
                for pattern_node, graph_node in assignment.items():
                    node_matches[pattern_node].add(graph_node)
                # Other satisfying assignments only add to node_matches, so we
                # keep scanning; the answer itself is already decided.
    return answer, node_matches


class EnumMatcher:
    """Enumerate-then-verify evaluation of arbitrary QGPs.

    Negated edges are handled exactly as the semantics prescribes
    (Section 2.2): ``Q(xo, G) = Π(Q)(xo, G) \\ ⋃ₑ Π(Q⁺ᵉ)(xo, G)``, where each
    term is evaluated independently by full enumeration — i.e. with none of
    QMatch's caching.
    """

    name = "Enum"

    def evaluate(self, pattern: QuantifiedGraphPattern, graph: PropertyGraph) -> MatchResult:
        """Compute ``Q(xo, G)`` and return a :class:`MatchResult`."""
        pattern.validate()
        counter = WorkCounter()
        with span(
            "qmatch.enumerate", pattern=pattern.name, engine=self.name
        ), Timer() as timer:
            positive_part = pattern.pi()
            positive_answer, node_matches = evaluate_positive_by_enumeration(
                positive_part, graph, counter
            )
            answer = set(positive_answer)
            for edge, positified in pattern.positified_pi_patterns():
                excluded, _ = evaluate_positive_by_enumeration(positified, graph, counter)
                answer -= excluded
        registry = get_registry()
        if registry:
            registry.counter("match.queries").inc()
            registry.counter("match.verifications").inc(counter.verifications)
            registry.counter("match.extensions").inc(counter.extensions)
            registry.counter("match.quantifier_checks").inc(
                counter.quantifier_checks
            )
            registry.histogram("match.seconds").observe(timer.elapsed)
        return MatchResult(
            answer=answer,
            positive_answer=positive_answer,
            node_matches=node_matches,
            counter=counter,
            elapsed=timer.elapsed,
            engine=self.name,
        )

    def evaluate_answer(self, pattern: QuantifiedGraphPattern, graph: PropertyGraph) -> Set[NodeId]:
        """Convenience wrapper returning only the answer set."""
        return self.evaluate(pattern, graph).answer
