"""Result objects returned by the matching engines.

All engines — the reference :class:`~repro.matching.enumerate.EnumMatcher`,
the optimized :class:`~repro.matching.qmatch.QMatch`, and the parallel
coordinator — return a :class:`MatchResult` so that benchmarks and tests can
treat them uniformly: the *answer* is always the set of graph nodes matching
the query focus (``Q(xo, G)`` in the paper), and the work counters expose the
quantities the paper's analysis reasons about (verifications, affected-area
sizes, per-fragment work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set

from repro.utils.counters import WorkCounter

__all__ = ["MatchResult", "IncrementalStats", "FragmentResult", "ParallelMatchResult"]

NodeId = Hashable


@dataclass
class IncrementalStats:
    """Bookkeeping produced by one IncQMatch run on one positified edge.

    ``affected_area`` is the AFF set of the paper (Section 4.2): the nodes an
    incremental algorithm must re-verify in response to the pattern change.
    The optimality claim (Proposition 6) is that the number of verifications
    performed is bounded by ``|AFF|`` — tests assert exactly that.
    """

    edge: str
    affected_area: Set[NodeId] = field(default_factory=set)
    verifications: int = 0
    removed: Set[NodeId] = field(default_factory=set)
    reused_candidates: int = 0

    @property
    def aff_size(self) -> int:
        return len(self.affected_area)


@dataclass
class MatchResult:
    """The outcome of evaluating one QGP on one graph.

    Attributes
    ----------
    answer:
        ``Q(xo, G)`` — the set of graph nodes matching the query focus.
    positive_answer:
        ``Π(Q)(xo, G)`` — the answer of the positive part, before negated
        edges are subtracted (equal to ``answer`` for positive patterns).
    node_matches:
        Cached per-pattern-node match/candidate sets gathered while evaluating
        the positive part; the incremental step and the QGAR layer reuse them.
    counter:
        Aggregated work counters.
    incremental:
        One :class:`IncrementalStats` per negated edge processed.
    elapsed:
        Wall-clock seconds, when the engine measured it (0.0 otherwise).
    """

    answer: Set[NodeId] = field(default_factory=set)
    positive_answer: Set[NodeId] = field(default_factory=set)
    node_matches: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    counter: WorkCounter = field(default_factory=WorkCounter)
    incremental: List[IncrementalStats] = field(default_factory=list)
    elapsed: float = 0.0
    engine: str = ""

    def __contains__(self, node: NodeId) -> bool:
        return node in self.answer

    def __len__(self) -> int:
        return len(self.answer)

    def frozen_answer(self) -> FrozenSet[NodeId]:
        """The answer as a frozenset (handy for dictionary keys in tests)."""
        return frozenset(self.answer)


@dataclass
class FragmentResult:
    """Per-fragment outcome of a parallel run.

    ``spans`` carries the :class:`repro.obs.trace.SpanRecord` tuple a pool
    worker recorded while tracing was propagated to it — piggybacked here so
    the coordinator can ingest them into one coherent cross-process span tree.
    Empty (and cost-free) unless tracing is enabled.
    """

    fragment_id: int
    answer: Set[NodeId] = field(default_factory=set)
    counter: WorkCounter = field(default_factory=WorkCounter)
    elapsed: float = 0.0
    spans: tuple = ()


@dataclass
class ParallelMatchResult:
    """The outcome of a PQMatch run across all fragments.

    ``makespan_work`` and ``total_work`` let the simulated cluster report the
    parallel-scalability shape (speedup = total / makespan) without relying on
    noisy wall-clock measurements; ``elapsed`` is the wall-clock time of the
    actual executor that was used.
    """

    answer: Set[NodeId] = field(default_factory=set)
    fragments: List[FragmentResult] = field(default_factory=list)
    counter: WorkCounter = field(default_factory=WorkCounter)
    elapsed: float = 0.0
    partition_elapsed: float = 0.0
    engine: str = ""

    @property
    def total_work(self) -> int:
        return sum(fragment.counter.total_work() for fragment in self.fragments)

    @property
    def makespan_work(self) -> int:
        if not self.fragments:
            return 0
        return max(fragment.counter.total_work() for fragment in self.fragments)

    @property
    def work_speedup(self) -> float:
        """Ideal speedup implied by the work distribution (total / makespan)."""
        makespan = self.makespan_work
        if makespan == 0:
            return 1.0
        return self.total_work / makespan

    @property
    def work_skew(self) -> float:
        """Smallest / largest per-fragment work — the balance measure of Exp-2."""
        if not self.fragments:
            return 1.0
        works = [fragment.counter.total_work() for fragment in self.fragments]
        largest = max(works)
        if largest == 0:
            return 1.0
        return min(works) / largest

    def __contains__(self, node: NodeId) -> bool:
        return node in self.answer

    def __len__(self) -> int:
        return len(self.answer)
